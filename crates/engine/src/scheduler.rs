//! Virtual-time query scheduling: replaying an issued-query stream
//! through a multi-worker FIFO queue.
//!
//! This is the substrate for the paper's **latency constraint violation**
//! analysis (Fig 2): when a user issues queries faster than the backend
//! drains them, execution delay cascades — Q4's perceived latency includes
//! the queueing time behind Q1–Q3. The scheduler computes, for every query
//! in a trace, when it started (queue head reached + worker free) and when
//! it finished, in *virtual* time.

use ids_simclock::{SimDuration, SimTime};

use crate::backend::{Backend, QueryOutcome, ResultQuality};
use crate::cost::QueryFootprint;
use crate::error::EngineResult;
use crate::progressive::{degrade_result, ProgressiveExecutor};
use crate::query::Query;
use crate::result::{Histogram, ResultSet};

/// A query stamped with the virtual time the frontend issued it.
#[derive(Debug, Clone)]
pub struct IssuedQuery {
    /// Frontend issue timestamp.
    pub issued_at: SimTime,
    /// The query.
    pub query: Query,
    /// Caller-assigned tag (e.g. trace event index) carried through to
    /// the timing record.
    pub tag: u64,
}

impl IssuedQuery {
    /// Creates an issued query.
    pub fn new(issued_at: SimTime, query: Query, tag: u64) -> IssuedQuery {
        IssuedQuery {
            issued_at,
            query,
            tag,
        }
    }
}

/// When one query was issued, started, and finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTiming {
    /// Caller-assigned tag.
    pub tag: u64,
    /// Frontend issue time.
    pub issued_at: SimTime,
    /// Execution start (after queueing).
    pub started_at: SimTime,
    /// Execution end.
    pub finished_at: SimTime,
}

impl QueryTiming {
    /// Query-scheduling latency: time spent waiting in the queue.
    pub fn scheduling_delay(&self) -> SimDuration {
        self.started_at.saturating_since(self.issued_at)
    }

    /// Pure execution time.
    pub fn execution(&self) -> SimDuration {
        self.finished_at.saturating_since(self.started_at)
    }

    /// End-to-end latency perceived from issue to completion.
    pub fn latency(&self) -> SimDuration {
        self.finished_at.saturating_since(self.issued_at)
    }
}

/// Degraded-mode policy for [`ReplayScheduler::replay_resilient`]:
/// instead of letting latency cascade unboundedly (or aborting the whole
/// replay on a transient failure), queries that would blow their budget
/// return progressive-style partial estimates, and terminally failed
/// queries return an empty placeholder so the session continues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Per-query latency budget (issue → finish). When queueing plus
    /// execution would exceed it, execution is truncated and the result
    /// extrapolated from the fraction of data actually read. `None`
    /// disables degradation.
    pub latency_budget: Option<SimDuration>,
    /// Floor on the truncation fraction: even a hopelessly late query
    /// reads at least this share of its data, so estimates never come
    /// from nothing.
    pub min_fraction: f64,
    /// Virtual cost charged for a query whose backend failed terminally
    /// (models the timeout the frontend waits before giving up).
    pub failure_penalty: SimDuration,
    /// How an over-budget query is answered (see [`ResilienceMode`]).
    pub mode: ResilienceMode,
}

/// What an over-budget query returns under
/// [`ReplayScheduler::replay_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResilienceMode {
    /// Simulate a truncated scan: scale the exact answer down to the
    /// fraction a cut-off would have seen and extrapolate back up
    /// ([`degrade_result`]).
    Degrade,
    /// Actually spend the remaining budget: run block-sampled
    /// progressive refinement ([`ProgressiveExecutor::run_bounded`])
    /// and return the best-so-far estimate with its confidence-backed
    /// error bound. Query shapes progressive execution cannot handle
    /// (selects, joins) fall back to [`ResilienceMode::Degrade`].
    Deadline,
}

impl ResiliencePolicy {
    /// No degradation: full answers at whatever latency it takes.
    /// Terminal failures still produce placeholders rather than abort.
    pub const fn rigid() -> ResiliencePolicy {
        ResiliencePolicy {
            latency_budget: None,
            min_fraction: 1.0,
            failure_penalty: SimDuration::from_millis(100),
            mode: ResilienceMode::Degrade,
        }
    }

    /// Degrade to partial results past `budget`, reading no less than 10%
    /// of the data.
    pub const fn degrade_after(budget: SimDuration) -> ResiliencePolicy {
        ResiliencePolicy {
            latency_budget: Some(budget),
            min_fraction: 0.1,
            failure_penalty: budget,
            mode: ResilienceMode::Degrade,
        }
    }

    /// Spend the budget instead of violating it: over-budget queries are
    /// re-run as deadline-bounded progressive refinements, returning the
    /// best-so-far answer with a sound error bound.
    pub const fn deadline(budget: SimDuration) -> ResiliencePolicy {
        ResiliencePolicy {
            latency_budget: Some(budget),
            min_fraction: 0.1,
            failure_penalty: budget,
            mode: ResilienceMode::Deadline,
        }
    }
}

/// The scheduler's queueing core: `workers` equivalent execution slots
/// plus the FIFO backlog in front of them, advanced in virtual time.
///
/// [`ReplayScheduler`] drives this for single-session replays; the
/// multi-tenant serving layer (`ids-serve`) drives it directly so its
/// admission controller sees the very same queueing semantics the replay
/// experiments measure. Queries must be offered in nondecreasing
/// `ready_at` order.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    /// Earliest instant each slot is free.
    free: Vec<SimTime>,
    /// Start times of assigned queries that had to wait, oldest first.
    /// Popped lazily as the clock (the `now` of observation calls)
    /// passes them; the remainder is the queue backlog.
    pending_starts: std::collections::VecDeque<SimTime>,
}

impl WorkerPool {
    /// Creates a pool with the given number of parallel slots (clamped
    /// to at least one).
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool {
            free: vec![SimTime::ZERO; workers.max(1)],
            pending_starts: std::collections::VecDeque::new(),
        }
    }

    /// Number of execution slots.
    pub fn workers(&self) -> usize {
        self.free.len()
    }

    /// Assigns a query that becomes ready at `ready_at` and costs `cost`
    /// to the earliest-free slot, returning `(slot, started_at,
    /// finished_at)`. FIFO: the query starts at
    /// `max(ready_at, earliest slot free time)`.
    pub fn assign(&mut self, ready_at: SimTime, cost: SimDuration) -> (usize, SimTime, SimTime) {
        // The constructor clamps to ≥ 1 worker, so the fallback arm is
        // unreachable in practice; it keeps the hot path panic-free.
        let (slot, slot_free) = self
            .free
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, &t)| (i, t))
            .unwrap_or((0, SimTime::ZERO));
        let started_at = ready_at.max(slot_free);
        let finished_at = started_at + cost;
        if let Some(free) = self.free.get_mut(slot) {
            *free = finished_at;
        }
        if started_at > ready_at {
            self.pending_starts.push_back(started_at);
        }
        (slot, started_at, finished_at)
    }

    /// The instant the next assigned query would start if offered at
    /// `ready_at` — what [`assign`](Self::assign) will return as
    /// `started_at` — without committing the assignment. Callers that
    /// shrink a query's cost based on its queueing delay (degraded-mode
    /// policies) peek here first.
    pub fn next_start(&self, ready_at: SimTime) -> SimTime {
        let earliest = self.free.iter().copied().min().unwrap_or(SimTime::ZERO);
        ready_at.max(earliest)
    }

    /// Number of slots still executing at `now`.
    pub fn busy_at(&self, now: SimTime) -> usize {
        self.free.iter().filter(|&&t| t > now).count()
    }

    /// Queue backlog at `now`: assigned queries that have not yet started
    /// executing. This is the depth an admission controller bounds.
    pub fn backlog_at(&mut self, now: SimTime) -> usize {
        while self
            .pending_starts
            .front()
            .is_some_and(|&start| start <= now)
        {
            self.pending_starts.pop_front();
        }
        self.pending_starts.len()
    }

    /// The instant the last assigned query finishes (drain time), or
    /// [`SimTime::ZERO`] for an untouched pool.
    pub fn drained_at(&self) -> SimTime {
        self.free.iter().copied().max().unwrap_or(SimTime::ZERO)
    }
}

/// A FIFO queue in front of `workers` equivalent execution slots.
///
/// The paper's setup forks one OS process per concurrent query with
/// independent database connections; `workers` models that connection
/// pool size.
#[derive(Debug, Clone)]
pub struct ReplayScheduler {
    workers: usize,
}

impl ReplayScheduler {
    /// Creates a scheduler with the given number of parallel slots.
    pub fn new(workers: usize) -> ReplayScheduler {
        ReplayScheduler {
            workers: workers.max(1),
        }
    }

    /// Replays an issued-query stream, returning per-query timings.
    ///
    /// `stream` must be sorted by `issued_at`; queries execute in issue
    /// order (FIFO), each starting at
    /// `max(issued_at, earliest worker free time)`.
    pub fn replay(
        &self,
        backend: &dyn Backend,
        stream: &[IssuedQuery],
    ) -> EngineResult<Vec<QueryTiming>> {
        Ok(self
            .replay_with_outcomes(backend, stream)?
            .into_iter()
            .map(|(t, _)| t)
            .collect())
    }

    /// Like [`replay`](Self::replay) but also returns each query's outcome
    /// (result + footprint + cost), for optimizers that inspect results.
    pub fn replay_with_outcomes(
        &self,
        backend: &dyn Backend,
        stream: &[IssuedQuery],
    ) -> EngineResult<Vec<(QueryTiming, QueryOutcome)>> {
        debug_assert!(
            stream.windows(2).all(|w| w[0].issued_at <= w[1].issued_at),
            "issued-query stream must be sorted by issue time"
        );
        let telemetry = SchedulerTelemetry::new(backend.name(), self.workers);
        let mut pool = WorkerPool::new(self.workers);
        let mut out = Vec::with_capacity(stream.len());
        for iq in stream {
            // Publish virtual time so deeper layers (buffer pool) can
            // timestamp their own telemetry at query granularity.
            ids_obs::set_vnow(iq.issued_at);
            let outcome = backend.execute(&iq.query)?;
            let (slot, started_at, finished_at) = pool.assign(iq.issued_at, outcome.cost);
            let timing = QueryTiming {
                tag: iq.tag,
                issued_at: iq.issued_at,
                started_at,
                finished_at,
            };
            let busy = pool.busy_at(iq.issued_at);
            telemetry.observe(iq, &timing, &outcome, slot, busy);
            out.push((timing, outcome));
        }
        Ok(out)
    }

    /// Replays a stream with graceful degradation under `policy`.
    ///
    /// Differences from [`replay_with_outcomes`](Self::replay_with_outcomes):
    ///
    /// - a query whose queueing delay plus execution would exceed the
    ///   latency budget is truncated: its cost shrinks to fit the budget
    ///   (down to `min_fraction` of the full scan) and its result becomes
    ///   a scaled estimate marked [`ResultQuality::Partial`];
    /// - a transient backend failure (after any retries a wrapping
    ///   [`crate::backend::RetryingBackend`] already performed) yields an
    ///   empty placeholder marked [`ResultQuality::Failed`] and charges
    ///   `failure_penalty`, instead of aborting the whole replay.
    ///
    /// Non-transient errors (unknown tables, type mismatches) still
    /// propagate — those are bugs, not adversity.
    pub fn replay_resilient(
        &self,
        backend: &dyn Backend,
        stream: &[IssuedQuery],
        policy: &ResiliencePolicy,
    ) -> EngineResult<Vec<(QueryTiming, QueryOutcome)>> {
        debug_assert!(
            stream.windows(2).all(|w| w[0].issued_at <= w[1].issued_at),
            "issued-query stream must be sorted by issue time"
        );
        let telemetry = SchedulerTelemetry::new(backend.name(), self.workers);
        let reg = ids_obs::metrics();
        let degraded_ctr = reg.counter("sched.degraded");
        let failed_ctr = reg.counter("sched.failed");
        let mut pool = WorkerPool::new(self.workers);
        let mut out = Vec::with_capacity(stream.len());
        for iq in stream {
            ids_obs::set_vnow(iq.issued_at);
            let mut outcome = match backend.execute(&iq.query) {
                Ok(outcome) => outcome,
                Err(err) if err.is_transient() => {
                    failed_ctr.inc();
                    record_resilience_instant(backend.name(), "fail", iq, 0.0);
                    QueryOutcome {
                        result: placeholder_result(&iq.query),
                        footprint: QueryFootprint::default(),
                        cost: policy.failure_penalty,
                        quality: ResultQuality::Failed,
                    }
                }
                Err(err) => return Err(err),
            };
            let wait = pool.next_start(iq.issued_at).saturating_since(iq.issued_at);
            if let (Some(budget), ResultQuality::Exact) = (policy.latency_budget, outcome.quality) {
                if wait + outcome.cost > budget && !outcome.cost.is_zero() {
                    let allowed = budget.saturating_sub(wait);
                    // Deadline mode spends the remaining budget on real
                    // block-sampled refinement; shapes progressive
                    // execution rejects (selects, joins) fall back to
                    // the simulated truncation below.
                    let refined = if policy.mode == ResilienceMode::Deadline {
                        ProgressiveExecutor::new(backend.database())
                            .run_bounded(&iq.query, outcome.cost, allowed)
                            .ok()
                    } else {
                        None
                    };
                    match refined {
                        Some(r) if r.fraction < 1.0 => {
                            degraded_ctr.inc();
                            record_deadline_instant(backend.name(), iq, r.fraction, r.error_bound);
                            outcome.cost = r.elapsed;
                            outcome.result = r.estimate;
                            outcome.quality = ResultQuality::Partial {
                                fraction: r.fraction,
                                error_bound: r.error_bound,
                            };
                        }
                        // An empty table refines to the exact answer in
                        // one step: nothing to degrade.
                        Some(_) => {}
                        None => {
                            let fraction = (allowed.as_secs_f64() / outcome.cost.as_secs_f64())
                                .clamp(policy.min_fraction.clamp(f64::MIN_POSITIVE, 1.0), 1.0);
                            if fraction < 1.0 {
                                degraded_ctr.inc();
                                record_resilience_instant(backend.name(), "degrade", iq, fraction);
                                outcome.cost = outcome.cost.mul_f64(fraction);
                                outcome.result = degrade_result(outcome.result, fraction);
                                outcome.quality = ResultQuality::Partial {
                                    fraction,
                                    // The degrade round trip only rounds:
                                    // scaling down truncates at most one
                                    // row's worth per value, scaling back
                                    // up multiplies that by 1/fraction
                                    // and rounds once more.
                                    error_bound: 0.5 / fraction + 1.0,
                                };
                            }
                        }
                    }
                }
            }
            let (slot, started_at, finished_at) = pool.assign(iq.issued_at, outcome.cost);
            let timing = QueryTiming {
                tag: iq.tag,
                issued_at: iq.issued_at,
                started_at,
                finished_at,
            };
            let busy = pool.busy_at(iq.issued_at);
            telemetry.observe(iq, &timing, &outcome, slot, busy);
            out.push((timing, outcome));
        }
        Ok(out)
    }
}

/// Empty placeholder answer matching the query's result shape.
fn placeholder_result(query: &Query) -> ResultSet {
    match query {
        Query::Count { .. } => ResultSet::Count(0),
        Query::Histogram { bins, .. } => {
            ResultSet::Histogram(Histogram::zeros(bins.bucket_count()))
        }
        Query::Select(_) | Query::Join(_) => ResultSet::Rows(Vec::new()),
    }
}

/// Marks a degradation decision on the trace timeline; no-op when the
/// recorder is off.
fn record_resilience_instant(backend_name: &str, what: &str, iq: &IssuedQuery, fraction: f64) {
    let rec = ids_obs::recorder();
    if !rec.is_enabled() {
        return;
    }
    let track = rec.track(&format!("{backend_name}/resilience"));
    rec.record_instant(
        "resilience",
        what.to_string(),
        track,
        iq.issued_at,
        vec![
            ("tag", ids_obs::ArgValue::U64(iq.tag)),
            ("fraction", ids_obs::ArgValue::F64(fraction)),
        ],
    );
}

/// Marks a deadline-mode refinement on the trace timeline, carrying the
/// reported error bound alongside the covered fraction; no-op when the
/// recorder is off. A separate event name from plain degradation so
/// lakehouse queries can tell "simulated truncation" from "budget spent
/// on refinement".
fn record_deadline_instant(backend_name: &str, iq: &IssuedQuery, fraction: f64, error_bound: f64) {
    let rec = ids_obs::recorder();
    if !rec.is_enabled() {
        return;
    }
    let track = rec.track(&format!("{backend_name}/resilience"));
    rec.record_instant(
        "resilience",
        "deadline".to_string(),
        track,
        iq.issued_at,
        vec![
            ("tag", ids_obs::ArgValue::U64(iq.tag)),
            ("fraction", ids_obs::ArgValue::F64(fraction)),
            ("error_bound", ids_obs::ArgValue::F64(error_bound)),
        ],
    );
}

/// Always-on metric handles plus (when the recorder is enabled) trace
/// tracks for the replay loop. Registry lookups happen once per replay,
/// not per query, so the per-query cost is a handful of relaxed
/// `fetch_add`s — and recording spans never alters timings or outcomes.
struct SchedulerTelemetry {
    queries: std::sync::Arc<ids_obs::Counter>,
    rows_scanned: std::sync::Arc<ids_obs::Counter>,
    rows_joined: std::sync::Arc<ids_obs::Counter>,
    rows_aggregated: std::sync::Arc<ids_obs::Counter>,
    rows_output: std::sync::Arc<ids_obs::Counter>,
    wait_us: std::sync::Arc<ids_obs::Histogram>,
    exec_us: std::sync::Arc<ids_obs::Histogram>,
    latency_us: std::sync::Arc<ids_obs::Histogram>,
    queue_depth: std::sync::Arc<ids_obs::Gauge>,
    /// One trace track per worker slot; empty when the recorder is off.
    worker_tracks: Vec<ids_obs::TrackId>,
    queue_track: Option<ids_obs::TrackId>,
}

impl SchedulerTelemetry {
    fn new(backend_name: &str, workers: usize) -> SchedulerTelemetry {
        let reg = ids_obs::metrics();
        let rec = ids_obs::recorder();
        let (worker_tracks, queue_track) = if rec.is_enabled() {
            (
                (0..workers)
                    .map(|i| rec.track(&format!("{backend_name}/worker-{i}")))
                    .collect(),
                Some(rec.track(&format!("{backend_name}/queue"))),
            )
        } else {
            (Vec::new(), None)
        };
        SchedulerTelemetry {
            queries: reg.counter("sched.queries"),
            rows_scanned: reg.counter("exec.rows_scanned"),
            rows_joined: reg.counter("exec.rows_joined"),
            rows_aggregated: reg.counter("exec.rows_aggregated"),
            rows_output: reg.counter("exec.rows_output"),
            wait_us: reg.histogram("sched.wait_us"),
            exec_us: reg.histogram("sched.exec_us"),
            latency_us: reg.histogram("sched.latency_us"),
            queue_depth: reg.gauge("sched.queue_depth"),
            worker_tracks,
            queue_track,
        }
    }

    fn observe(
        &self,
        iq: &IssuedQuery,
        timing: &QueryTiming,
        outcome: &QueryOutcome,
        slot: usize,
        busy_workers: usize,
    ) {
        self.queries.inc();
        self.rows_scanned.add(outcome.footprint.rows_scanned);
        self.rows_joined
            .add(outcome.footprint.build_rows + outcome.footprint.probe_rows);
        self.rows_aggregated.add(outcome.footprint.rows_aggregated);
        self.rows_output.add(outcome.footprint.rows_output);
        self.wait_us.record(timing.scheduling_delay().as_micros());
        self.exec_us.record(timing.execution().as_micros());
        self.latency_us.record(timing.latency().as_micros());
        self.queue_depth.set(busy_workers as i64);

        let rec = ids_obs::recorder();
        if !rec.is_enabled() {
            return;
        }
        let kind = iq.query.kind();
        rec.record_span(
            "exec",
            kind,
            self.worker_tracks[slot],
            timing.started_at,
            timing.execution(),
            vec![
                ("tag", ids_obs::ArgValue::U64(timing.tag)),
                (
                    "rows_scanned",
                    ids_obs::ArgValue::U64(outcome.footprint.rows_scanned),
                ),
                (
                    "rows_output",
                    ids_obs::ArgValue::U64(outcome.footprint.rows_output),
                ),
                (
                    "pages_cold",
                    ids_obs::ArgValue::U64(outcome.footprint.pages_cold),
                ),
                (
                    "pages_hot",
                    ids_obs::ArgValue::U64(outcome.footprint.pages_hot),
                ),
            ],
        );
        let wait = timing.scheduling_delay();
        if let (Some(track), false) = (self.queue_track, wait.is_zero()) {
            rec.record_span(
                "queue",
                format!("wait:{kind}"),
                track,
                timing.issued_at,
                wait,
                vec![("tag", ids_obs::ArgValue::U64(timing.tag))],
            );
        }
        rec.record_counter("sched.queue_depth", timing.issued_at, busy_workers as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, MemBackend};
    use crate::column::ColumnBuilder;
    use crate::cost::CostParams;
    use crate::predicate::Predicate;
    use crate::table::TableBuilder;

    /// A backend whose every query costs exactly `cost_ms` of virtual time.
    fn fixed_cost_backend(cost_ms: u64, rows: usize) -> MemBackend {
        // Zero all marginal costs; put everything in startup.
        let params = CostParams {
            startup_ns: cost_ms * 1_000_000,
            page_cold_ns: 0,
            page_hot_ns: 0,
            tuple_scan_ns: 0,
            tuple_agg_ns: 0,
            join_build_ns: 0,
            join_probe_ns: 0,
            row_output_ns: 0,
            predicate_eval_ns: 0,
        };
        let backend = MemBackend::with_params(params);
        backend.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..rows).map(|i| i as f64)))
                .build()
                .unwrap(),
        );
        backend
    }

    fn stream(intervals_ms: &[u64]) -> Vec<IssuedQuery> {
        let mut t = 0;
        intervals_ms
            .iter()
            .enumerate()
            .map(|(i, &dt)| {
                t += dt;
                IssuedQuery::new(
                    SimTime::from_millis(t),
                    Query::count("t", Predicate::True),
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn fast_backend_keeps_up() {
        let backend = fixed_cost_backend(5, 10);
        let sched = ReplayScheduler::new(1);
        // Queries 20 ms apart, each costing 5 ms: no queueing.
        let timings = sched.replay(&backend, &stream(&[20, 20, 20])).unwrap();
        for t in &timings {
            assert_eq!(t.scheduling_delay(), SimDuration::ZERO);
            assert_eq!(t.latency().as_millis(), 5);
        }
    }

    #[test]
    fn slow_backend_cascades_delay() {
        let backend = fixed_cost_backend(50, 10);
        let sched = ReplayScheduler::new(1);
        // Queries 10 ms apart, each costing 50 ms: delay accumulates.
        let timings = sched.replay(&backend, &stream(&[10, 10, 10, 10])).unwrap();
        assert_eq!(timings[0].latency().as_millis(), 50);
        assert_eq!(timings[1].scheduling_delay().as_millis(), 40);
        assert_eq!(timings[1].latency().as_millis(), 90);
        assert_eq!(timings[3].latency().as_millis(), 170);
        // Latency grows monotonically — the Fig 2 cascade.
        assert!(timings.windows(2).all(|w| w[0].latency() <= w[1].latency()));
    }

    #[test]
    fn more_workers_absorb_bursts() {
        let backend = fixed_cost_backend(50, 10);
        let one = ReplayScheduler::new(1)
            .replay(&backend, &stream(&[10, 10, 10, 10]))
            .unwrap();
        let four = ReplayScheduler::new(4)
            .replay(&backend, &stream(&[10, 10, 10, 10]))
            .unwrap();
        let total_one: u64 = one.iter().map(|t| t.latency().as_millis()).sum();
        let total_four: u64 = four.iter().map(|t| t.latency().as_millis()).sum();
        assert!(total_four < total_one);
        assert!(four
            .iter()
            .all(|t| t.scheduling_delay() == SimDuration::ZERO));
    }

    #[test]
    fn outcomes_are_returned_in_issue_order() {
        let backend = fixed_cost_backend(1, 7);
        let sched = ReplayScheduler::new(2);
        let out = sched
            .replay_with_outcomes(&backend, &stream(&[1, 1, 1]))
            .unwrap();
        assert_eq!(out.len(), 3);
        for (i, (timing, outcome)) in out.iter().enumerate() {
            assert_eq!(timing.tag, i as u64);
            assert_eq!(outcome.scalar_count(), Some(7));
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let sched = ReplayScheduler::new(0);
        let backend = fixed_cost_backend(1, 1);
        assert!(sched.replay(&backend, &stream(&[1])).is_ok());
    }

    #[test]
    fn worker_pool_tracks_backlog_and_drain() {
        let ms = SimDuration::from_millis;
        let at = SimTime::from_millis;
        let mut pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.backlog_at(at(0)), 0);
        // Three queries arriving every 10 ms, each costing 50 ms: the
        // second and third wait behind the first.
        let (_, s0, f0) = pool.assign(at(0), ms(50));
        assert_eq!((s0, f0), (at(0), at(50)));
        assert_eq!(pool.next_start(at(10)), at(50));
        let (_, s1, f1) = pool.assign(at(10), ms(50));
        assert_eq!((s1, f1), (at(50), at(100)));
        let (_, s2, _) = pool.assign(at(20), ms(50));
        assert_eq!(s2, at(100));
        // At t=20 both later queries are still queued; at t=60 one
        // started, one remains; by t=100 the queue is empty.
        assert_eq!(pool.backlog_at(at(20)), 2);
        assert_eq!(pool.busy_at(at(20)), 1);
        assert_eq!(pool.backlog_at(at(60)), 1);
        assert_eq!(pool.backlog_at(at(100)), 0);
        assert_eq!(pool.drained_at(), at(150));
    }

    #[test]
    fn worker_pool_matches_replay_scheduler_timings() {
        let backend = fixed_cost_backend(50, 10);
        let stream = stream(&[10, 10, 10, 10]);
        for workers in [1, 2, 3] {
            let timings = ReplayScheduler::new(workers)
                .replay(&backend, &stream)
                .unwrap();
            let mut pool = WorkerPool::new(workers);
            for t in &timings {
                let (_, started, finished) = pool.assign(t.issued_at, SimDuration::from_millis(50));
                assert_eq!(started, t.started_at, "{workers} workers");
                assert_eq!(finished, t.finished_at, "{workers} workers");
            }
        }
    }
}
