//! Execution backends: one logical query layer, two latency regimes.

use std::collections::HashMap;
use std::sync::Arc;

use ids_simclock::SimDuration;
use parking_lot::RwLock;

use crate::buffer::{BufferPool, BufferPoolStats, EvictionPolicy};
use crate::cost::{CostModel, CostParams, LinearCostModel, QueryFootprint};
use crate::error::{EngineError, EngineResult};
use crate::exec::run_query;
use crate::page::Pager;
use crate::predicate::Predicate;
use crate::query::Query;
use crate::result::ResultSet;
use crate::table::Table;

/// A registry of tables shared by backends, schedulers, and tests.
/// Cloning yields another handle to the same registry.
#[derive(Debug, Clone, Default)]
pub struct Database {
    inner: Arc<RwLock<DbInner>>,
}

#[derive(Debug, Default)]
struct DbInner {
    tables: HashMap<Arc<str>, (u32, Table)>,
    next_id: u32,
}

impl Database {
    /// Creates an empty registry.
    pub fn new() -> Database {
        Database::default()
    }

    /// Registers (or replaces) a table under its own name and returns its
    /// stable numeric id.
    pub fn register(&self, table: Table) -> u32 {
        let mut inner = self.inner.write();
        let name: Arc<str> = Arc::from(table.name());
        if let Some(existing_id) = inner.tables.get(&name).map(|(id, _)| *id) {
            inner.tables.insert(name, (existing_id, table));
            return existing_id;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.tables.insert(name, (id, table));
        id
    }

    /// Fetches a table by name (cheap clone of column handles).
    pub fn table(&self, name: &str) -> EngineResult<Table> {
        self.inner
            .read()
            .tables
            .get(name)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// The numeric id assigned to a table.
    pub fn table_id(&self, name: &str) -> EngineResult<u32> {
        self.inner
            .read()
            .tables
            .get(name)
            .map(|(id, _)| *id)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Names of all registered tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner
            .read()
            .tables
            .keys()
            .map(|k| k.to_string())
            .collect()
    }
}

/// How trustworthy a query's answer is, for consumers that must decide
/// whether to render, annotate, or discard it.
///
/// Healthy execution always yields [`ResultQuality::Exact`]. The degraded
/// paths (latency-budget truncation in the resilient scheduler, node loss
/// in the cluster) return approximate answers instead of blocking, and
/// mark them so the frontend can badge the view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResultQuality {
    /// The full, exact answer.
    Exact,
    /// An estimate extrapolated from a fraction of the data (progressive
    /// truncation, deadline-bounded refinement, or surviving cluster
    /// partitions).
    Partial {
        /// Fraction of the data actually consumed, in `(0, 1)`.
        fraction: f64,
        /// Conservative absolute error bound: every value in the
        /// reported result is within this many rows of the exact
        /// answer. Producers must report a sound (finite, non-negative)
        /// bound; the simtest partial-bounds oracle verifies it.
        error_bound: f64,
    },
    /// Execution failed terminally; the result is a placeholder (empty)
    /// answer emitted so the session can continue.
    Failed,
}

impl ResultQuality {
    /// `true` unless the result is exact.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, ResultQuality::Exact)
    }
}

/// Result of executing one query on a backend: the answer, the work done,
/// and the *virtual* execution time.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query answer.
    pub result: ResultSet,
    /// Work counters (including page I/O for disk backends).
    pub footprint: QueryFootprint,
    /// Virtual execution time charged by the backend's cost model.
    pub cost: SimDuration,
    /// Whether the answer is exact or a degraded-mode approximation.
    pub quality: ResultQuality,
}

impl QueryOutcome {
    /// Convenience accessor mirroring `ResultSet::scalar_count`.
    pub fn scalar_count(&self) -> Option<u64> {
        self.result.scalar_count()
    }
}

/// A query execution backend with a deterministic virtual-time cost.
pub trait Backend: Send + Sync {
    /// Short backend name ("mem", "disk"), used in experiment reports.
    fn name(&self) -> &str;
    /// A handle to the backend's table registry.
    fn database(&self) -> Database;
    /// Executes a query and prices its cost.
    fn execute(&self, query: &Query) -> EngineResult<QueryOutcome>;
}

/// In-memory columnar backend — the MemSQL role in case study 2.
#[derive(Debug)]
pub struct MemBackend {
    db: Database,
    model: LinearCostModel,
}

impl Default for MemBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MemBackend {
    /// Creates a backend with the default in-memory cost calibration.
    pub fn new() -> MemBackend {
        MemBackend::with_params(CostParams::mem_default())
    }

    /// Creates a backend with explicit cost parameters.
    pub fn with_params(params: CostParams) -> MemBackend {
        MemBackend {
            db: Database::new(),
            model: LinearCostModel::new(params),
        }
    }

    /// Creates a backend over an existing registry (sharing tables with
    /// another backend, as the paper's study runs both DBMSs on one
    /// dataset).
    pub fn over(db: Database) -> MemBackend {
        Self::over_with(db, CostParams::mem_default())
    }

    /// Creates a backend over an existing registry with explicit cost
    /// parameters.
    pub fn over_with(db: Database, params: CostParams) -> MemBackend {
        MemBackend {
            db,
            model: LinearCostModel::new(params),
        }
    }
}

impl Backend for MemBackend {
    fn name(&self) -> &str {
        "mem"
    }

    fn database(&self) -> Database {
        self.db.clone()
    }

    fn execute(&self, query: &Query) -> EngineResult<QueryOutcome> {
        let (result, footprint) = run_query(&self.db, query)?;
        let cost = self.model.price(&footprint);
        Ok(QueryOutcome {
            result,
            footprint,
            cost,
            quality: ResultQuality::Exact,
        })
    }
}

/// Disk-based row-store backend — the PostgreSQL role in case study 2.
///
/// Every scan is routed through a [`BufferPool`]; cold pages are charged
/// at disk-read cost, resident pages at buffered cost.
#[derive(Debug)]
pub struct DiskBackend {
    db: Database,
    model: LinearCostModel,
    pool: BufferPool,
}

impl Default for DiskBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskBackend {
    /// Default pool capacity in pages (32 MiB at 8 KiB pages).
    pub const DEFAULT_POOL_PAGES: usize = 4_096;

    /// Creates a backend with the default disk calibration and pool.
    pub fn new() -> DiskBackend {
        DiskBackend::with_config(
            CostParams::disk_default(),
            Self::DEFAULT_POOL_PAGES,
            EvictionPolicy::Lru,
        )
    }

    /// Creates a backend with explicit cost and pool configuration.
    pub fn with_config(
        params: CostParams,
        pool_pages: usize,
        policy: EvictionPolicy,
    ) -> DiskBackend {
        DiskBackend {
            db: Database::new(),
            model: LinearCostModel::new(params),
            pool: BufferPool::new(pool_pages, policy),
        }
    }

    /// Creates a backend over an existing registry.
    pub fn over(db: Database) -> DiskBackend {
        Self::over_with(db, CostParams::disk_default())
    }

    /// Creates a backend over an existing registry with explicit cost
    /// parameters and the default pool.
    pub fn over_with(db: Database, params: CostParams) -> DiskBackend {
        DiskBackend {
            db,
            model: LinearCostModel::new(params),
            pool: BufferPool::new(Self::DEFAULT_POOL_PAGES, EvictionPolicy::Lru),
        }
    }

    /// Buffer pool statistics (the paper's cache-hit-rate metric).
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }

    /// Drops the buffer pool contents (cold restart).
    pub fn flush_pool(&self) {
        self.pool.reset();
    }

    /// Charges page touches for scanning `rows` leading rows (or the whole
    /// table for a filtered scan) and returns `(hits, misses)`.
    fn charge_scan(&self, table: &Table, rows: usize) -> EngineResult<(u64, u64)> {
        let id = self.db.table_id(table.name())?;
        let pager = Pager::new(table.rows(), table.row_disk_width());
        let pages = pager.pages_for_range(0, rows);
        Ok(self.pool.touch_range(id, pages))
    }
}

impl Backend for DiskBackend {
    fn name(&self) -> &str {
        "disk"
    }

    fn database(&self) -> Database {
        self.db.clone()
    }

    fn execute(&self, query: &Query) -> EngineResult<QueryOutcome> {
        let (result, mut footprint) = run_query(&self.db, query)?;

        // Charge page I/O for every base-table scan the query performed.
        let (mut hits, mut misses) = (0u64, 0u64);
        match query {
            Query::Select(spec) => {
                let table = self.db.table(&spec.table)?;
                // Early-terminating scans touch only the leading pages.
                let rows = match &spec.filter {
                    Predicate::True => footprint.rows_scanned as usize,
                    _ => table.rows(),
                };
                let (h, m) = self.charge_scan(&table, rows)?;
                hits += h;
                misses += m;
            }
            Query::Join(spec) => {
                let left = self.db.table(&spec.left)?;
                let right = self.db.table(&spec.right)?;
                // The paginated left side touches its slice's pages; the
                // probe side is a full scan.
                let end = match spec.limit {
                    Some(l) => (spec.offset + l).min(left.rows()),
                    None => left.rows(),
                };
                let id = self.db.table_id(left.name())?;
                let pager = Pager::new(left.rows(), left.row_disk_width());
                let (h, m) = self
                    .pool
                    .touch_range(id, pager.pages_for_range(spec.offset.min(end), end));
                hits += h;
                misses += m;
                let (h, m) = self.charge_scan(&right, right.rows())?;
                hits += h;
                misses += m;
            }
            Query::Histogram { table, .. } | Query::Count { table, .. } => {
                let table = self.db.table(table)?;
                let (h, m) = self.charge_scan(&table, table.rows())?;
                hits += h;
                misses += m;
            }
        }
        footprint.pages_hot = hits;
        footprint.pages_cold = misses;

        // Telemetry only — must not affect the outcome. Samples are
        // stamped with the virtual time published by the scheduler.
        let rec = ids_obs::recorder();
        if rec.is_enabled() {
            let now = rec.vnow();
            let stats = self.pool.stats();
            rec.record_counter("engine.buffer.hit_rate", now, stats.hit_rate());
            rec.record_counter(
                "engine.buffer.resident_pages",
                now,
                self.pool.resident() as f64,
            );
            if misses > 0 {
                let track = rec.track("engine.buffer");
                rec.record_instant(
                    "buffer",
                    "fault",
                    track,
                    now,
                    vec![
                        ("pages_cold", ids_obs::ArgValue::U64(misses)),
                        ("pages_hot", ids_obs::ArgValue::U64(hits)),
                    ],
                );
            }
        }

        let cost = self.model.price(&footprint);
        Ok(QueryOutcome {
            result,
            footprint,
            cost,
            quality: ResultQuality::Exact,
        })
    }
}

/// Exponential backoff schedule for retrying transient failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total execution attempts (1 = no retries).
    pub max_attempts: u32,
    /// Virtual-time wait before the first retry.
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff after each failed retry.
    pub factor: f64,
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            factor: 1.0,
        }
    }

    /// A sensible interactive default: 3 attempts, 5 ms doubling backoff
    /// (bounded by the ~100 ms interactivity budget the paper uses).
    pub const fn interactive() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(5),
            factor: 2.0,
        }
    }

    /// Backoff charged before retry number `retry` (1-based; zero for
    /// the first attempt).
    pub fn backoff_before(&self, retry: u32) -> SimDuration {
        if retry == 0 {
            return SimDuration::ZERO;
        }
        self.base_backoff
            .mul_f64(self.factor.powi(retry as i32 - 1))
    }
}

/// A backend decorator that retries transient failures of its inner
/// backend under a [`RetryPolicy`], charging each retry's backoff into
/// the final outcome's virtual cost.
///
/// Deterministic: the retry schedule depends only on the inner backend's
/// (deterministic) failure decisions and the policy, never on wall time.
pub struct RetryingBackend<'a> {
    inner: &'a (dyn Backend + Sync),
    policy: RetryPolicy,
    name: String,
    retries: Arc<ids_obs::Counter>,
    exhausted: Arc<ids_obs::Counter>,
}

impl<'a> RetryingBackend<'a> {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: &'a (dyn Backend + Sync), policy: RetryPolicy) -> RetryingBackend<'a> {
        let reg = ids_obs::metrics();
        RetryingBackend {
            name: format!("retry({})", inner.name()),
            inner,
            policy,
            retries: reg.counter("engine.retry.attempts"),
            exhausted: reg.counter("engine.retry.exhausted"),
        }
    }
}

impl Backend for RetryingBackend<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn database(&self) -> Database {
        self.inner.database()
    }

    fn execute(&self, query: &Query) -> EngineResult<QueryOutcome> {
        let mut waited = SimDuration::ZERO;
        let attempts = self.policy.max_attempts.max(1);
        for attempt in 0..attempts {
            waited += self.policy.backoff_before(attempt);
            match self.inner.execute(query) {
                Ok(mut outcome) => {
                    outcome.cost += waited;
                    return Ok(outcome);
                }
                Err(err) if err.is_transient() && attempt + 1 < attempts => {
                    self.retries.inc();
                }
                Err(err) => {
                    if err.is_transient() {
                        self.exhausted.inc();
                    }
                    return Err(err);
                }
            }
        }
        unreachable!("loop returns on the last attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::query::BinSpec;
    use crate::table::TableBuilder;

    fn road(n: usize) -> Table {
        TableBuilder::new("road")
            .column("x", ColumnBuilder::float((0..n).map(|i| i as f64)))
            .column("y", ColumnBuilder::float((0..n).map(|i| (i * 2) as f64)))
            .build()
            .unwrap()
    }

    #[test]
    fn database_registry() {
        let db = Database::new();
        let id = db.register(road(10));
        assert_eq!(db.table_id("road").unwrap(), id);
        assert_eq!(db.table("road").unwrap().rows(), 10);
        assert!(db.table("nope").is_err());
        // Re-registering keeps the id.
        let id2 = db.register(road(20));
        assert_eq!(id, id2);
        assert_eq!(db.table("road").unwrap().rows(), 20);
        assert_eq!(db.table_names(), vec!["road".to_string()]);
    }

    #[test]
    fn mem_and_disk_agree_on_results() {
        let mem = MemBackend::new();
        mem.database().register(road(1000));
        let disk = DiskBackend::new();
        disk.database().register(road(1000));

        let q = Query::histogram(
            "road",
            BinSpec::new("y", 0.0, 2000.0, 20),
            Predicate::between("x", 100.0, 499.0),
        );
        let a = mem.execute(&q).unwrap();
        let b = disk.execute(&q).unwrap();
        assert_eq!(a.result, b.result);
        assert!(b.cost > a.cost, "disk must be slower than mem");
    }

    #[test]
    fn disk_warms_its_buffer_pool() {
        let disk = DiskBackend::new();
        disk.database().register(road(100_000));
        let q = Query::count("road", Predicate::True);
        let cold = disk.execute(&q).unwrap();
        let warm = disk.execute(&q).unwrap();
        assert!(cold.footprint.pages_cold > 0);
        assert_eq!(warm.footprint.pages_cold, 0);
        assert!(warm.footprint.pages_hot > 0);
        assert!(warm.cost < cold.cost);
        assert!(disk.pool_stats().hit_rate() > 0.0);
        disk.flush_pool();
        let recold = disk.execute(&q).unwrap();
        assert!(recold.footprint.pages_cold > 0);
    }

    #[test]
    fn early_terminating_select_touches_few_pages() {
        let disk = DiskBackend::new();
        disk.database().register(road(100_000));
        let q = Query::select("road", vec![], Predicate::True, Some(100), 0);
        let out = disk.execute(&q).unwrap();
        let full = disk
            .execute(&Query::count("road", Predicate::True))
            .unwrap();
        assert!(
            out.footprint.pages_cold + out.footprint.pages_hot
                < full.footprint.pages_cold + full.footprint.pages_hot
        );
    }

    #[test]
    fn shared_registry_across_backends() {
        let db = Database::new();
        db.register(road(50));
        let mem = MemBackend::over(db.clone());
        let disk = DiskBackend::over(db);
        let q = Query::count("road", Predicate::True);
        assert_eq!(mem.execute(&q).unwrap().scalar_count(), Some(50));
        assert_eq!(disk.execute(&q).unwrap().scalar_count(), Some(50));
    }
}
