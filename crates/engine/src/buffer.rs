//! Buffer pool with pluggable eviction.
//!
//! The disk backend routes every page touch through this pool; hits are
//! charged at buffered-page cost, misses at cold-read cost. The paper's
//! metrics catalog names **cache hit rate** as the metric for systems that
//! prefetch or cache (Table 3), and notes that eviction-based policies
//! (LRU, FIFO) underperform predictive caching — the pool exposes both
//! eviction policies so `ids-opt`'s predictive prefetchers have a baseline
//! to beat.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use ids_obs::metrics::{metrics, Counter};
use parking_lot::Mutex;

use crate::page::{Page, PageId};

/// Eviction policy for the buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used page.
    Lru,
    /// Evict the oldest-loaded page.
    Fifo,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that required a cold read.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl BufferPoolStats {
    /// Hit rate in `[0, 1]`; zero when no requests were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct PoolInner {
    /// Resident pages.
    frames: HashMap<PageId, Page>,
    /// Recency / insertion order, front = next eviction victim.
    order: VecDeque<PageId>,
}

/// Per-pool counters, owned by the pool but *attached* to the global
/// `ids-obs` registry so global snapshots (`engine.buffer.hits` etc.)
/// sum every live pool while `BufferPool::stats()` keeps returning this
/// pool's own numbers.
#[derive(Debug)]
struct PoolCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl PoolCounters {
    fn new() -> PoolCounters {
        let c = PoolCounters {
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
        };
        let reg = metrics();
        reg.attach_counter("engine.buffer.hits", &c.hits);
        reg.attach_counter("engine.buffer.misses", &c.misses);
        reg.attach_counter("engine.buffer.evictions", &c.evictions);
        c
    }
}

/// A fixed-capacity page cache.
///
/// ```
/// use ids_engine::{BufferPool, EvictionPolicy, PageId};
///
/// let pool = BufferPool::new(2, EvictionPolicy::Lru);
/// let a = PageId { table: 0, page_no: 0 };
/// let b = PageId { table: 0, page_no: 1 };
/// let c = PageId { table: 0, page_no: 2 };
/// assert!(!pool.touch(a)); // miss
/// assert!(!pool.touch(b)); // miss
/// assert!(pool.touch(a));  // hit
/// assert!(!pool.touch(c)); // miss, evicts b (LRU)
/// assert!(!pool.touch(b)); // miss again
/// ```
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    policy: EvictionPolicy,
    inner: Mutex<PoolInner>,
    counters: PoolCounters,
}

impl Drop for BufferPool {
    /// Folds this pool's counts into the registry's owned counters so
    /// global totals survive the pool itself (the attached instances die
    /// with the `Arc`s; without this, a dropped pool's traffic would
    /// vanish from end-of-run snapshots).
    fn drop(&mut self) {
        let reg = metrics();
        reg.counter("engine.buffer.hits")
            .add(self.counters.hits.get());
        reg.counter("engine.buffer.misses")
            .add(self.counters.misses.get());
        reg.counter("engine.buffer.evictions")
            .add(self.counters.evictions.get());
    }
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: usize, policy: EvictionPolicy) -> BufferPool {
        BufferPool {
            capacity: capacity.max(1),
            policy,
            inner: Mutex::new(PoolInner {
                frames: HashMap::with_capacity(capacity),
                order: VecDeque::with_capacity(capacity),
            }),
            counters: PoolCounters::new(),
        }
    }

    /// Page capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Touches a page: returns `true` on a hit, `false` on a miss (the
    /// page is then loaded, evicting if necessary).
    pub fn touch(&self, id: PageId) -> bool {
        let mut inner = self.inner.lock();
        if inner.frames.contains_key(&id) {
            self.counters.hits.inc();
            if self.policy == EvictionPolicy::Lru {
                // Move to the back of the recency queue.
                if let Some(pos) = inner.order.iter().position(|&p| p == id) {
                    inner.order.remove(pos);
                    inner.order.push_back(id);
                }
            }
            return true;
        }
        self.counters.misses.inc();
        if inner.frames.len() >= self.capacity {
            if let Some(victim) = inner.order.pop_front() {
                inner.frames.remove(&victim);
                self.counters.evictions.inc();
            }
        }
        inner.frames.insert(id, Page::materialize(id));
        inner.order.push_back(id);
        false
    }

    /// Touches a contiguous run of pages, returning `(hits, misses)`.
    pub fn touch_range(&self, table: u32, pages: std::ops::Range<usize>) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for page_no in pages {
            let id = PageId {
                table,
                page_no: page_no as u32,
            };
            if self.touch(id) {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        (hits, misses)
    }

    /// `true` if the page is currently resident (does not count as a touch).
    pub fn contains(&self, id: PageId) -> bool {
        self.inner.lock().frames.contains_key(&id)
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Cumulative statistics for *this* pool (the global
    /// `engine.buffer.*` metrics sum all pools).
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            evictions: self.counters.evictions.get(),
        }
    }

    /// Drops all pages and zeroes the statistics.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.order.clear();
        self.counters.hits.reset();
        self.counters.misses.reset();
        self.counters.evictions.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PageId {
        PageId {
            table: 0,
            page_no: n,
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pool = BufferPool::new(2, EvictionPolicy::Lru);
        pool.touch(pid(0));
        pool.touch(pid(1));
        pool.touch(pid(0)); // 0 is now most recent
        pool.touch(pid(2)); // evicts 1
        assert!(pool.contains(pid(0)));
        assert!(!pool.contains(pid(1)));
        assert!(pool.contains(pid(2)));
    }

    #[test]
    fn fifo_evicts_oldest_insert() {
        let pool = BufferPool::new(2, EvictionPolicy::Fifo);
        pool.touch(pid(0));
        pool.touch(pid(1));
        pool.touch(pid(0)); // hit, but FIFO order unchanged
        pool.touch(pid(2)); // evicts 0 (oldest insert)
        assert!(!pool.contains(pid(0)));
        assert!(pool.contains(pid(1)));
        assert!(pool.contains(pid(2)));
    }

    #[test]
    fn stats_track_hits_misses_evictions() {
        let pool = BufferPool::new(2, EvictionPolicy::Lru);
        pool.touch(pid(0));
        pool.touch(pid(0));
        pool.touch(pid(1));
        pool.touch(pid(2));
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1);
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn touch_range_counts() {
        let pool = BufferPool::new(10, EvictionPolicy::Lru);
        let (h, m) = pool.touch_range(0, 0..4);
        assert_eq!((h, m), (0, 4));
        let (h, m) = pool.touch_range(0, 2..6);
        assert_eq!((h, m), (2, 2));
    }

    #[test]
    fn resident_never_exceeds_capacity() {
        let pool = BufferPool::new(3, EvictionPolicy::Lru);
        for i in 0..100 {
            pool.touch(pid(i));
            assert!(pool.resident() <= 3);
        }
    }

    #[test]
    fn reset_clears_everything() {
        let pool = BufferPool::new(2, EvictionPolicy::Lru);
        pool.touch(pid(0));
        pool.reset();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), BufferPoolStats::default());
    }

    #[test]
    fn hit_rate_with_no_traffic_is_zero() {
        let pool = BufferPool::new(2, EvictionPolicy::Lru);
        assert_eq!(pool.stats().hit_rate(), 0.0);
    }

    #[test]
    fn pages_from_different_tables_do_not_collide() {
        let pool = BufferPool::new(4, EvictionPolicy::Lru);
        pool.touch(PageId {
            table: 1,
            page_no: 0,
        });
        pool.touch(PageId {
            table: 2,
            page_no: 0,
        });
        assert_eq!(pool.resident(), 2);
    }
}
