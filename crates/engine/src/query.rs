//! The logical query AST.
//!
//! Covers exactly the SQL shapes issued by the paper's interactive
//! workloads (Sections 6–8):
//!
//! - **Select** — projected, filtered scan with `LIMIT`/`OFFSET`
//!   (inertial-scroll lazy loading, Q1 of case study 1);
//! - **Join** — a paginated subquery inner-joined to a dimension table
//!   (the streaming-join variant, Q2 of case study 1);
//! - **Histogram** — filtered `GROUP BY ROUND((col - min)/width)` counts
//!   (crossfiltering, case study 2);
//! - **Count** — filtered cardinality (widget result counts, case study 3).

use std::fmt;
use std::sync::Arc;

use crate::predicate::Predicate;

/// One projected output expression.
#[derive(Debug, Clone)]
pub enum Projection {
    /// A bare column reference.
    Column(Arc<str>),
    /// String concatenation of columns and literals, e.g.
    /// `title || '(' || year || ')'`.
    Concat(Vec<ConcatPart>),
}

/// A piece of a [`Projection::Concat`] expression.
#[derive(Debug, Clone)]
pub enum ConcatPart {
    /// A column whose value is stringified.
    Column(Arc<str>),
    /// A literal fragment.
    Literal(Arc<str>),
}

impl Projection {
    /// Projects a column by name.
    pub fn column(name: impl Into<Arc<str>>) -> Projection {
        Projection::Column(name.into())
    }

    /// The `title || '(' || year || ')'` pattern from the paper's Q1/Q2.
    pub fn title_with_year(title: impl Into<Arc<str>>, year: impl Into<Arc<str>>) -> Projection {
        Projection::Concat(vec![
            ConcatPart::Column(title.into()),
            ConcatPart::Literal(Arc::from("(")),
            ConcatPart::Column(year.into()),
            ConcatPart::Literal(Arc::from(")")),
        ])
    }

    /// Column names this projection reads.
    pub fn referenced_columns(&self) -> Vec<&str> {
        match self {
            Projection::Column(c) => vec![c.as_ref()],
            Projection::Concat(parts) => parts
                .iter()
                .filter_map(|p| match p {
                    ConcatPart::Column(c) => Some(c.as_ref()),
                    ConcatPart::Literal(_) => None,
                })
                .collect(),
        }
    }
}

/// A projected, filtered, paginated scan of one table.
#[derive(Debug, Clone)]
pub struct SelectSpec {
    /// Source table name.
    pub table: Arc<str>,
    /// Output expressions (empty means "all columns").
    pub projection: Vec<Projection>,
    /// Filter predicate.
    pub filter: Predicate,
    /// Maximum rows returned (`None` = unlimited).
    pub limit: Option<usize>,
    /// Rows skipped before the first returned row.
    pub offset: usize,
}

/// A paginated subquery joined to a dimension table:
/// `(SELECT key, .. FROM left LIMIT .. OFFSET ..) INNER JOIN right ON key`.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Fact-side table (paginated subquery source).
    pub left: Arc<str>,
    /// Dimension-side table.
    pub right: Arc<str>,
    /// Join key column name on the left table.
    pub left_key: Arc<str>,
    /// Join key column name on the right table.
    pub right_key: Arc<str>,
    /// Projections over the *joined* row; columns are resolved against the
    /// left table first, then the right.
    pub projection: Vec<Projection>,
    /// LIMIT applied to the left subquery.
    pub limit: Option<usize>,
    /// OFFSET applied to the left subquery.
    pub offset: usize,
}

/// Equi-width binning for histogram queries:
/// `ROUND((col - min) / width)` with `bins` buckets.
#[derive(Debug, Clone)]
pub struct BinSpec {
    /// Binned column.
    pub column: Arc<str>,
    /// Domain minimum (bin 0 starts here).
    pub min: f64,
    /// Domain maximum.
    pub max: f64,
    /// Number of bins.
    pub bins: usize,
}

impl BinSpec {
    /// Creates a bin spec over `[min, max]` with `bins` buckets.
    pub fn new(column: impl Into<Arc<str>>, min: f64, max: f64, bins: usize) -> BinSpec {
        BinSpec {
            column: column.into(),
            min,
            max,
            bins,
        }
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.max - self.min) / self.bins as f64
    }

    /// The bin index for value `x`, mirroring the paper's
    /// `ROUND((x - min) / width)` SQL — note `ROUND`, not `FLOOR`, so the
    /// result ranges over `0..=bins` and edge bins are half-width.
    /// Returns `None` for values outside `[min, max]` and for NaN —
    /// NaN compares false against both domain bounds, so without an
    /// explicit check it would slip past the guard and land in bin 0.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x.is_nan() || x < self.min || x > self.max || self.width() <= 0.0 {
            return None;
        }
        let idx = ((x - self.min) / self.width()).round();
        // Guard against float edge effects at the top boundary.
        Some((idx as usize).min(self.bins))
    }

    /// Total number of output bins (`bins + 1` because of `ROUND`).
    pub fn bucket_count(&self) -> usize {
        self.bins + 1
    }
}

/// A logical query.
#[derive(Debug, Clone)]
pub enum Query {
    /// Projected, filtered, paginated scan.
    Select(SelectSpec),
    /// Paginated subquery inner join.
    Join(JoinSpec),
    /// Filtered equi-width histogram with COUNT(*) per bin.
    Histogram {
        /// Source table name.
        table: Arc<str>,
        /// Binning of the grouped column.
        bins: BinSpec,
        /// Filter predicate.
        filter: Predicate,
    },
    /// `SELECT COUNT(*) FROM table WHERE filter`.
    Count {
        /// Source table name.
        table: Arc<str>,
        /// Filter predicate.
        filter: Predicate,
    },
}

impl Query {
    /// Short operator name ("select", "join", "histogram", "count"),
    /// used for metric names and trace span labels.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Select(_) => "select",
            Query::Join(_) => "join",
            Query::Histogram { .. } => "histogram",
            Query::Count { .. } => "count",
        }
    }

    /// Convenience constructor for a paginated select.
    pub fn select(
        table: impl Into<Arc<str>>,
        projection: Vec<Projection>,
        filter: Predicate,
        limit: Option<usize>,
        offset: usize,
    ) -> Query {
        Query::Select(SelectSpec {
            table: table.into(),
            projection,
            filter,
            limit,
            offset,
        })
    }

    /// Convenience constructor for a filtered histogram.
    pub fn histogram(table: impl Into<Arc<str>>, bins: BinSpec, filter: Predicate) -> Query {
        Query::Histogram {
            table: table.into(),
            bins,
            filter,
        }
    }

    /// Convenience constructor for a filtered count.
    pub fn count(table: impl Into<Arc<str>>, filter: Predicate) -> Query {
        Query::Count {
            table: table.into(),
            filter,
        }
    }

    /// The primary table this query scans.
    pub fn table(&self) -> &str {
        match self {
            Query::Select(s) => &s.table,
            Query::Join(j) => &j.left,
            Query::Histogram { table, .. } | Query::Count { table, .. } => table,
        }
    }

    /// The filter predicate, if this query shape carries one.
    pub fn filter(&self) -> Option<&Predicate> {
        match self {
            Query::Select(s) => Some(&s.filter),
            Query::Histogram { filter, .. } | Query::Count { filter, .. } => Some(filter),
            Query::Join(_) => None,
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Select(s) => {
                write!(f, "SELECT ... FROM {} WHERE {}", s.table, s.filter)?;
                if let Some(l) = s.limit {
                    write!(f, " LIMIT {l}")?;
                }
                if s.offset > 0 {
                    write!(f, " OFFSET {}", s.offset)?;
                }
                Ok(())
            }
            Query::Join(j) => write!(
                f,
                "SELECT ... FROM (SELECT .. FROM {} LIMIT {} OFFSET {}) JOIN {} ON {} = {}",
                j.left,
                j.limit.map_or_else(|| "ALL".into(), |l| l.to_string()),
                j.offset,
                j.right,
                j.left_key,
                j.right_key
            ),
            Query::Histogram { table, bins, filter } => write!(
                f,
                "SELECT ROUND(({} - {}) / {:.6}), COUNT(*) FROM {table} WHERE {filter} GROUP BY 1 ORDER BY 1",
                bins.column,
                bins.min,
                bins.width(),
            ),
            Query::Count { table, filter } => {
                write!(f, "SELECT COUNT(*) FROM {table} WHERE {filter}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_of_matches_round_semantics() {
        let b = BinSpec::new("y", 0.0, 20.0, 20);
        assert_eq!(b.width(), 1.0);
        assert_eq!(b.bin_of(0.0), Some(0));
        assert_eq!(b.bin_of(0.49), Some(0));
        assert_eq!(b.bin_of(0.5), Some(1)); // ROUND, not FLOOR
        assert_eq!(b.bin_of(20.0), Some(20));
        assert_eq!(b.bin_of(20.1), None);
        assert_eq!(b.bin_of(-0.1), None);
        assert_eq!(b.bucket_count(), 21);
    }

    #[test]
    fn degenerate_bins_select_nothing() {
        let b = BinSpec::new("y", 5.0, 5.0, 10);
        assert_eq!(b.bin_of(5.0), None);
    }

    #[test]
    fn projection_referenced_columns() {
        let p = Projection::title_with_year("title", "year");
        assert_eq!(p.referenced_columns(), vec!["title", "year"]);
        assert_eq!(Projection::column("x").referenced_columns(), vec!["x"]);
    }

    #[test]
    fn query_accessors() {
        let q = Query::count("t", Predicate::True);
        assert_eq!(q.table(), "t");
        assert!(q.filter().is_some());
        let j = Query::Join(JoinSpec {
            left: "l".into(),
            right: "r".into(),
            left_key: "id".into(),
            right_key: "id".into(),
            projection: vec![],
            limit: Some(10),
            offset: 100,
        });
        assert_eq!(j.table(), "l");
        assert!(j.filter().is_none());
    }

    #[test]
    fn display_shapes() {
        let q = Query::select("imdb", vec![], Predicate::True, Some(100), 200);
        assert_eq!(
            q.to_string(),
            "SELECT ... FROM imdb WHERE TRUE LIMIT 100 OFFSET 200"
        );
        let h = Query::histogram("road", BinSpec::new("y", 0.0, 20.0, 20), Predicate::True);
        assert!(h.to_string().contains("GROUP BY 1 ORDER BY 1"));
    }
}
