//! Engine error type.

use std::fmt;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised while building tables or executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Referenced table is not registered in the database.
    UnknownTable(String),
    /// Referenced column does not exist in the table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// Column lengths disagree while building a table.
    RaggedColumns {
        /// Table being built.
        table: String,
        /// Expected row count (from the first column).
        expected: usize,
        /// Offending column and its length.
        got: (String, usize),
    },
    /// A table was built with no columns.
    EmptyTable(String),
    /// Duplicate column name while building a table.
    DuplicateColumn(String),
    /// Operation applied to a column of the wrong type.
    TypeMismatch {
        /// Column involved.
        column: String,
        /// What the operation expected.
        expected: &'static str,
    },
    /// Histogram bin specification is degenerate (zero bins or width).
    InvalidBinSpec(String),
    /// SQL text failed to parse. `pos` is the byte offset into the
    /// statement where the parser gave up.
    SqlParse {
        /// Byte offset of the offending token in the input.
        pos: usize,
        /// What the parser expected or rejected.
        msg: String,
    },
    /// The scheduler rejected or dropped the query (e.g. shut down).
    SchedulerClosed,
    /// The backend failed transiently (injected fault, dropped
    /// connection); the query may succeed if retried.
    TransientFailure {
        /// What failed ("fault injection", "connection reset", ...).
        reason: String,
    },
    /// Every replica of one shard is lost, so a scatter-gather plan
    /// cannot produce an exact answer. Transient: lost nodes recover at
    /// the end of their fault window, so a retry policy may retry.
    ShardUnavailable {
        /// Shard whose replicas are all gone.
        shard: usize,
        /// Replicas the shard had.
        replicas: usize,
    },
}

impl EngineError {
    /// `true` for failures that a retry policy is allowed to retry.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            EngineError::TransientFailure { .. } | EngineError::ShardUnavailable { .. }
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            EngineError::RaggedColumns {
                table,
                expected,
                got: (name, len),
            } => write!(
                f,
                "column `{name}` in table `{table}` has {len} rows, expected {expected}"
            ),
            EngineError::EmptyTable(t) => write!(f, "table `{t}` has no columns"),
            EngineError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            EngineError::TypeMismatch { column, expected } => {
                write!(f, "column `{column}`: expected {expected}")
            }
            EngineError::InvalidBinSpec(why) => write!(f, "invalid bin spec: {why}"),
            EngineError::SqlParse { pos, msg } => {
                write!(f, "SQL parse error at byte {pos}: {msg}")
            }
            EngineError::SchedulerClosed => write!(f, "query scheduler is closed"),
            EngineError::TransientFailure { reason } => {
                write!(f, "transient backend failure: {reason}")
            }
            EngineError::ShardUnavailable { shard, replicas } => {
                write!(
                    f,
                    "shard {shard} unavailable: all {replicas} replica(s) lost"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}
