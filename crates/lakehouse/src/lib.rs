//! # ids-lakehouse — the engine dogfoods its own telemetry
//!
//! The paper's core demand is that interactive data systems be judged
//! on continuously-measured, user-visible metrics (latency-constraint
//! violations, tail latency per tenant) — which only works when the
//! telemetry itself is cheap, queryable data rather than a side channel
//! of flat snapshots. Following the telemetry-lakehouse architecture
//! (Micromegas), this crate lands `ids-obs` [`TraceEvent`]s and
//! [`MetricsSnapshot`]s in ids columnar [`Table`]s with fixed schemas,
//! so fleet telemetry is queryable with the engine's own vectorized
//! kernels: zone-map pruning on virtual-time ranges, fused filter+bin
//! over span start times, dictionary-encoded component/tenant names.
//!
//! ## Schemas
//!
//! | table                | columns |
//! |----------------------|---------|
//! | `telemetry_spans`    | `start_us` Int, `dur_us` Int, `cat` Str, `name` Str, `track` Str, `tenant` Str, `violated` Int, `cost_us` Int |
//! | `telemetry_counters` | `ts_us` Int, `name` Str, `value` Float |
//! | `telemetry_buckets`  | `name` Str, `bucket_lo` Int, `count` Int |
//!
//! All timestamps are **virtual** microseconds ([`SimTime`]), so the
//! tables — and every query over them — are byte-deterministic across
//! runs (the tenth simtest oracle replays a scenario twice and asserts
//! identical table bytes).
//!
//! ## Ingestion
//!
//! [`Lakehouse`] is a ring buffer of fixed-size row blocks
//! ([`BLOCK_ROWS`] = the engine's zone-map block size): ingestion
//! appends block-at-a-time and evicts whole blocks from the front once
//! [`Lakehouse::with_capacity_blocks`] is exceeded, bounding memory for
//! long-running fleets while keeping table construction a streaming
//! fold over blocks. [`Lakehouse::ingest_events`] folds recorder
//! events; [`Lakehouse::ingest_snapshot`] and
//! [`Lakehouse::ingest_histogram_buckets`] fold the metrics registry.
//!
//! ## Queries
//!
//! [`TelemetryQueries`] is the canned API over the spans table —
//! [`TelemetryQueries::p99_by_tenant`],
//! [`TelemetryQueries::lcv_over_window`], and
//! [`TelemetryQueries::slowest_spans`] — used by `repro --fleet` to
//! print its telemetry tables *from the lakehouse*. A row-at-a-time
//! [`reference_p99_by_tenant`] interpreter backs the differential
//! oracle.

use std::collections::VecDeque;

use ids_engine::{ColumnBuilder, EngineError, Table, TableBuilder, ZONE_BLOCK_ROWS};
use ids_obs::{ArgValue, MetricsSnapshot, TraceEvent};
use ids_simclock::SimTime;

mod queries;

pub use queries::{
    reference_p99_by_tenant, render_table, LcvPoint, SlowSpan, TelemetryQueries, TenantLatency,
    TimeWindow,
};

/// Rows per ingestion block — the engine's zone-map block size, so each
/// full block maps onto exactly one zone and time-range queries prune
/// evicted-adjacent history block-at-a-time.
pub const BLOCK_ROWS: usize = ZONE_BLOCK_ROWS;

/// Default ring capacity in blocks (1024 blocks × 1024 rows ≈ 1M rows
/// per table), plenty for a fleet sweep while still bounding a
/// long-running ingest.
pub const DEFAULT_CAPACITY_BLOCKS: usize = 1024;

/// Errors from lakehouse table construction or queries.
#[derive(Debug)]
pub enum LakehouseError {
    /// The underlying engine rejected a table or query.
    Engine(EngineError),
}

impl std::fmt::Display for LakehouseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LakehouseError::Engine(e) => write!(f, "lakehouse engine error: {e}"),
        }
    }
}

impl std::error::Error for LakehouseError {}

impl From<EngineError> for LakehouseError {
    fn from(e: EngineError) -> LakehouseError {
        LakehouseError::Engine(e)
    }
}

/// Result alias for lakehouse operations.
pub type LakehouseResult<T> = Result<T, LakehouseError>;

/// One span row (a `TraceEvent::Span` flattened onto the fixed schema).
#[derive(Debug, Clone)]
struct SpanRow {
    start_us: i64,
    dur_us: i64,
    cat: &'static str,
    name: String,
    track: String,
    tenant: String,
    violated: i64,
    cost_us: i64,
}

/// One counter sample row.
#[derive(Debug, Clone)]
struct CounterRow {
    ts_us: i64,
    name: String,
    value: f64,
}

/// One histogram bucket row.
#[derive(Debug, Clone)]
struct BucketRow {
    name: String,
    bucket_lo: i64,
    count: i64,
}

/// A bounded ring of fixed-size row blocks: appends go block-at-a-time,
/// eviction drops whole blocks from the front.
struct Ring<R> {
    cap_blocks: usize,
    blocks: VecDeque<Vec<R>>,
    evicted: u64,
}

impl<R> Ring<R> {
    fn new(cap_blocks: usize) -> Ring<R> {
        Ring {
            cap_blocks: cap_blocks.max(1),
            blocks: VecDeque::new(),
            evicted: 0,
        }
    }

    fn push(&mut self, row: R) {
        let needs_block = match self.blocks.back() {
            Some(b) => b.len() >= BLOCK_ROWS,
            None => true,
        };
        if needs_block {
            if self.blocks.len() >= self.cap_blocks {
                if let Some(old) = self.blocks.pop_front() {
                    self.evicted += old.len() as u64;
                }
            }
            self.blocks.push_back(Vec::with_capacity(BLOCK_ROWS));
        }
        if let Some(back) = self.blocks.back_mut() {
            back.push(row);
        }
    }

    fn len(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    fn iter(&self) -> impl Iterator<Item = &R> {
        self.blocks.iter().flat_map(|b| b.iter())
    }
}

/// What one [`Lakehouse::ingest_events`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Span rows appended.
    pub spans: usize,
    /// Counter-sample rows appended.
    pub counters: usize,
    /// Events with no lakehouse schema (instant markers), skipped.
    pub skipped: usize,
}

/// Ring-buffered columnar telemetry store. See the crate docs for the
/// schemas and the ingestion/eviction discipline.
pub struct Lakehouse {
    spans: Ring<SpanRow>,
    counters: Ring<CounterRow>,
    buckets: Ring<BucketRow>,
}

impl Default for Lakehouse {
    fn default() -> Lakehouse {
        Lakehouse::new()
    }
}

impl Lakehouse {
    /// A lakehouse with the default per-table capacity.
    pub fn new() -> Lakehouse {
        Lakehouse::with_capacity_blocks(DEFAULT_CAPACITY_BLOCKS)
    }

    /// A lakehouse whose per-table rings hold at most `cap_blocks`
    /// blocks of [`BLOCK_ROWS`] rows; the oldest block is evicted when
    /// a table outgrows that.
    pub fn with_capacity_blocks(cap_blocks: usize) -> Lakehouse {
        Lakehouse {
            spans: Ring::new(cap_blocks),
            counters: Ring::new(cap_blocks),
            buckets: Ring::new(cap_blocks),
        }
    }

    /// Folds recorder events into the spans and counters tables.
    /// `tracks` is the recorder's track-name table (so span rows carry
    /// the human-readable track name, dictionary-encoded). Spans whose
    /// args carry `tenant`/`violated`/`cost_us` (the serve layer's
    /// convention) land those in dedicated columns; spans without them
    /// get `tenant = "-"`, `violated = 0`, `cost_us = dur_us`.
    pub fn ingest_events(&mut self, events: &[TraceEvent], tracks: &[String]) -> IngestStats {
        let mut stats = IngestStats::default();
        for e in events {
            match e {
                TraceEvent::Span {
                    cat,
                    name,
                    track,
                    start,
                    dur,
                    args,
                } => {
                    let arg_str = |key: &str| {
                        args.iter().find_map(|(k, v)| match v {
                            ArgValue::Str(s) if *k == key => Some(s.clone()),
                            _ => None,
                        })
                    };
                    let arg_u64 = |key: &str| {
                        args.iter().find_map(|(k, v)| match v {
                            ArgValue::U64(n) if *k == key => Some(*n),
                            _ => None,
                        })
                    };
                    let dur_us = dur.as_micros() as i64;
                    self.spans.push(SpanRow {
                        start_us: start.as_micros() as i64,
                        dur_us,
                        cat,
                        name: name.clone(),
                        track: tracks
                            .get(track.0 as usize)
                            .cloned()
                            .unwrap_or_else(|| "-".to_string()),
                        tenant: arg_str("tenant").unwrap_or_else(|| "-".to_string()),
                        violated: arg_u64("violated").map_or(0, |v| (v != 0) as i64),
                        cost_us: arg_u64("cost_us").map_or(dur_us, |v| v as i64),
                    });
                    stats.spans += 1;
                }
                TraceEvent::Counter { name, ts, value } => {
                    self.counters.push(CounterRow {
                        ts_us: ts.as_micros() as i64,
                        name: (*name).to_string(),
                        value: *value,
                    });
                    stats.counters += 1;
                }
                TraceEvent::Instant { .. } => stats.skipped += 1,
            }
        }
        stats
    }

    /// Folds a metrics snapshot into the counters table as samples at
    /// virtual time `at`: counter totals under their own names, gauge
    /// levels under `<name>`, gauge high watermarks under `<name>.hwm`.
    /// (Histogram detail lands via
    /// [`ingest_histogram_buckets`](Lakehouse::ingest_histogram_buckets),
    /// which wants raw buckets rather than pre-digested quantiles.)
    pub fn ingest_snapshot(&mut self, at: SimTime, snap: &MetricsSnapshot) -> usize {
        let ts_us = at.as_micros() as i64;
        let mut rows = 0usize;
        for (name, v) in &snap.counters {
            self.counters.push(CounterRow {
                ts_us,
                name: name.clone(),
                value: *v as f64,
            });
            rows += 1;
        }
        for (name, v, hwm) in &snap.gauges {
            self.counters.push(CounterRow {
                ts_us,
                name: name.clone(),
                value: *v as f64,
            });
            self.counters.push(CounterRow {
                ts_us,
                name: format!("{name}.hwm"),
                value: *hwm as f64,
            });
            rows += 2;
        }
        rows
    }

    /// Folds raw histogram buckets (`ids_obs::metrics::Registry::
    /// histogram_buckets`) into the buckets table.
    pub fn ingest_histogram_buckets(&mut self, buckets: &[(String, Vec<(u64, u64)>)]) -> usize {
        let mut rows = 0usize;
        for (name, bs) in buckets {
            for &(lo, n) in bs {
                self.buckets.push(BucketRow {
                    name: name.clone(),
                    bucket_lo: lo as i64,
                    count: n as i64,
                });
                rows += 1;
            }
        }
        rows
    }

    /// Row counts `(spans, counters, buckets)` currently resident.
    pub fn row_counts(&self) -> (usize, usize, usize) {
        (self.spans.len(), self.counters.len(), self.buckets.len())
    }

    /// Rows evicted so far from the spans ring (oldest-first).
    pub fn evicted_span_rows(&self) -> u64 {
        self.spans.evicted
    }

    /// Builds the `telemetry_spans` table from the resident blocks.
    pub fn spans_table(&self) -> LakehouseResult<Table> {
        let mut start_us = ColumnBuilder::int([]);
        let mut dur_us = ColumnBuilder::int([]);
        let mut cat = ColumnBuilder::str::<_, &str>([]);
        let mut name = ColumnBuilder::str::<_, &str>([]);
        let mut track = ColumnBuilder::str::<_, &str>([]);
        let mut tenant = ColumnBuilder::str::<_, &str>([]);
        let mut violated = ColumnBuilder::int([]);
        let mut cost_us = ColumnBuilder::int([]);
        for r in self.spans.iter() {
            start_us.push_int(r.start_us);
            dur_us.push_int(r.dur_us);
            cat.push_str(r.cat);
            name.push_str(&r.name);
            track.push_str(&r.track);
            tenant.push_str(&r.tenant);
            violated.push_int(r.violated);
            cost_us.push_int(r.cost_us);
        }
        Ok(TableBuilder::new("telemetry_spans")
            .column("start_us", start_us)
            .column("dur_us", dur_us)
            .column("cat", cat)
            .column("name", name)
            .column("track", track)
            .column("tenant", tenant)
            .column("violated", violated)
            .column("cost_us", cost_us)
            .build()?)
    }

    /// Builds the `telemetry_counters` table from the resident blocks.
    pub fn counters_table(&self) -> LakehouseResult<Table> {
        let mut ts_us = ColumnBuilder::int([]);
        let mut name = ColumnBuilder::str::<_, &str>([]);
        let mut value = ColumnBuilder::float([]);
        for r in self.counters.iter() {
            ts_us.push_int(r.ts_us);
            name.push_str(&r.name);
            value.push_float(r.value);
        }
        Ok(TableBuilder::new("telemetry_counters")
            .column("ts_us", ts_us)
            .column("name", name)
            .column("value", value)
            .build()?)
    }

    /// Builds the `telemetry_buckets` table from the resident blocks.
    pub fn buckets_table(&self) -> LakehouseResult<Table> {
        let mut name = ColumnBuilder::str::<_, &str>([]);
        let mut bucket_lo = ColumnBuilder::int([]);
        let mut count = ColumnBuilder::int([]);
        for r in self.buckets.iter() {
            name.push_str(&r.name);
            bucket_lo.push_int(r.bucket_lo);
            count.push_int(r.count);
        }
        Ok(TableBuilder::new("telemetry_buckets")
            .column("name", name)
            .column("bucket_lo", bucket_lo)
            .column("count", count)
            .build()?)
    }

    /// The canned query API over a freshly-built spans table.
    pub fn queries(&self) -> LakehouseResult<TelemetryQueries> {
        Ok(TelemetryQueries::new(self.spans_table()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_obs::TrackId;
    use ids_simclock::SimDuration;

    fn span(tenant: &str, start: u64, dur: u64, violated: u64) -> TraceEvent {
        TraceEvent::Span {
            cat: "serve",
            name: "count".to_string(),
            track: TrackId(0),
            start: SimTime::from_micros(start),
            dur: SimDuration::from_micros(dur),
            args: vec![
                ("tenant", ArgValue::Str(tenant.to_string())),
                ("violated", ArgValue::U64(violated)),
                ("cost_us", ArgValue::U64(dur)),
            ],
        }
    }

    #[test]
    fn ingest_builds_tables_with_expected_schema() {
        let mut lake = Lakehouse::new();
        let events = vec![
            span("tenant/0", 100, 50, 0),
            span("tenant/1", 200, 2_000, 1),
            TraceEvent::Counter {
                name: "serve.admitted",
                ts: SimTime::from_micros(250),
                value: 2.0,
            },
            TraceEvent::Instant {
                cat: "opt",
                name: "drop".to_string(),
                track: TrackId(0),
                ts: SimTime::from_micros(300),
                args: vec![],
            },
        ];
        let stats = lake.ingest_events(&events, &["tenant/0".to_string()]);
        assert_eq!(
            stats,
            IngestStats {
                spans: 2,
                counters: 1,
                skipped: 1
            }
        );
        let spans = lake.spans_table().expect("spans table");
        assert_eq!(spans.rows(), 2);
        assert_eq!(spans.width(), 8);
        let counters = lake.counters_table().expect("counters table");
        assert_eq!(counters.rows(), 1);
        // Dictionary encoding: tenant column stores codes over a dict.
        let (codes, dict) = spans
            .column("tenant")
            .expect("tenant column")
            .as_str_parts()
            .expect("str column");
        assert_eq!(codes.len(), 2);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn empty_lakehouse_builds_empty_tables_and_queries() {
        let lake = Lakehouse::new();
        let spans = lake.spans_table().expect("empty spans table");
        assert_eq!(spans.rows(), 0);
        let mut q = lake.queries().expect("queries over empty table");
        assert!(q
            .p99_by_tenant(TimeWindow::all())
            .expect("empty p99")
            .is_empty());
        assert!(q.slowest_spans(5).expect("empty slowest").is_empty());
    }

    #[test]
    fn ring_evicts_whole_blocks_from_the_front() {
        let mut lake = Lakehouse::with_capacity_blocks(2);
        let total = 3 * BLOCK_ROWS + 7;
        for i in 0..total {
            let e = span("t", i as u64, 1, 0);
            lake.ingest_events(std::slice::from_ref(&e), &[]);
        }
        // Two full blocks were evicted; at most 2 blocks remain resident.
        assert_eq!(lake.evicted_span_rows(), 2 * BLOCK_ROWS as u64);
        let resident = lake.row_counts().0;
        assert!(resident <= 2 * BLOCK_ROWS);
        assert_eq!(resident as u64 + lake.evicted_span_rows(), total as u64);
        // The resident rows are the *newest* ones.
        let t = lake.spans_table().expect("table");
        let starts = t
            .column("start_us")
            .expect("start_us")
            .as_int()
            .expect("int column")
            .to_vec();
        assert_eq!(starts.first().copied(), Some((total - resident) as i64));
        assert_eq!(starts.last().copied(), Some(total as i64 - 1));
    }

    #[test]
    fn snapshot_and_buckets_ingest() {
        let mut lake = Lakehouse::new();
        let snap = MetricsSnapshot {
            counters: vec![("serve.admitted".to_string(), 12)],
            gauges: vec![("pool.depth".to_string(), 3, 9)],
            histograms: vec![],
        };
        let rows = lake.ingest_snapshot(SimTime::from_micros(1_000), &snap);
        assert_eq!(rows, 3);
        let buckets = vec![("serve.latency_us".to_string(), vec![(8u64, 2u64), (16, 1)])];
        assert_eq!(lake.ingest_histogram_buckets(&buckets), 2);
        let ct = lake.counters_table().expect("counters");
        assert_eq!(ct.rows(), 3);
        let bt = lake.buckets_table().expect("buckets");
        assert_eq!(bt.rows(), 2);
        let lows = bt
            .column("bucket_lo")
            .expect("bucket_lo")
            .as_int()
            .expect("int")
            .to_vec();
        assert_eq!(lows, vec![8, 16]);
    }

    #[test]
    fn ingestion_is_deterministic() {
        let events: Vec<TraceEvent> = (0..500)
            .map(|i| {
                span(
                    &format!("tenant/{}", i % 3),
                    i * 10,
                    5 + i % 7,
                    (i % 5 == 0) as u64,
                )
            })
            .collect();
        let tracks = vec!["w".to_string()];
        let render = |events: &[TraceEvent]| {
            let mut lake = Lakehouse::new();
            lake.ingest_events(events, &tracks);
            render_table(&lake.spans_table().expect("table"), usize::MAX)
        };
        assert_eq!(render(&events), render(&events));
    }
}
