//! Canned telemetry queries over the `telemetry_spans` table, executed
//! with the engine's vectorized kernels — plus the row-at-a-time
//! reference interpreter the differential oracle compares against, and
//! a deterministic table renderer.

use ids_engine::{kernels, BinSpec, KernelOptions, KernelStats, Predicate, SelectionVector, Table};
use ids_simclock::SimTime;

use crate::{LakehouseError, LakehouseResult};

/// An inclusive virtual-time window `[start, end]` over span starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindow {
    /// First span start included.
    pub start: SimTime,
    /// Last span start included.
    pub end: SimTime,
}

impl TimeWindow {
    /// The whole timeline.
    pub fn all() -> TimeWindow {
        TimeWindow {
            start: SimTime::ZERO,
            end: SimTime::MAX,
        }
    }

    /// The window covering `[start, end]`.
    pub fn new(start: SimTime, end: SimTime) -> TimeWindow {
        TimeWindow { start, end }
    }
}

/// Per-tenant tail latency over a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLatency {
    /// Tenant name (dictionary entry, first-seen order).
    pub tenant: String,
    /// Spans in the window.
    pub spans: usize,
    /// Spans whose latency violated the budget.
    pub violated: usize,
    /// Exact p99 span duration in virtual microseconds (`ceil(0.99 n)`
    /// rank of the sorted durations).
    pub p99_us: i64,
}

/// Latency-constraint violations in one time bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcvPoint {
    /// Bucket center in virtual microseconds (`ROUND` binning: the
    /// bucket covers `t_us ± window/2`).
    pub t_us: u64,
    /// Spans starting in the bucket.
    pub total: u64,
    /// Violating spans starting in the bucket.
    pub violations: u64,
}

impl LcvPoint {
    /// Violation fraction, 0 when the bucket is empty.
    pub fn lcv(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }
}

/// One row of the slowest-spans leaderboard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowSpan {
    /// Span name (the query kind for serve spans).
    pub name: String,
    /// Tenant name.
    pub tenant: String,
    /// Virtual start time in microseconds.
    pub start_us: i64,
    /// Virtual duration in microseconds.
    pub dur_us: i64,
}

/// The rank-`ceil(0.99 n)` element of an ascending-sorted slice (exact,
/// not bucketed — both the kernel path and the row-at-a-time reference
/// share this convention so they can be compared for equality).
fn p99_of_sorted(sorted: &[i64]) -> i64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The tenant dictionary of a spans table, in code (first-seen) order.
fn tenant_dict(spans: &Table) -> LakehouseResult<Vec<String>> {
    let col = spans.column("tenant")?;
    Ok(col
        .as_str_parts()
        .map(|(_, dict)| dict.iter().map(|s| s.to_string()).collect())
        .unwrap_or_default())
}

fn window_pred(tenant: &str, window: TimeWindow) -> Predicate {
    Predicate::and([
        Predicate::eq("tenant", tenant),
        Predicate::between(
            "start_us",
            window.start.as_micros() as f64,
            window.end.as_micros() as f64,
        ),
    ])
}

/// Canned queries over a `telemetry_spans` table (built by
/// [`Lakehouse::queries`](crate::Lakehouse::queries)). Every method runs
/// on the vectorized kernel path — selection masks, zone-map pruning on
/// the virtual-time axis, fused filter+bin — and accumulates the work
/// counters in [`kernel_stats`](TelemetryQueries::kernel_stats).
pub struct TelemetryQueries {
    spans: Table,
    opts: KernelOptions,
    stats: KernelStats,
}

impl TelemetryQueries {
    /// Wraps a spans table.
    pub fn new(spans: Table) -> TelemetryQueries {
        TelemetryQueries {
            spans,
            opts: KernelOptions::default(),
            stats: KernelStats::default(),
        }
    }

    /// The underlying spans table.
    pub fn spans(&self) -> &Table {
        &self.spans
    }

    /// Accumulated kernel work counters across all queries so far.
    pub fn kernel_stats(&self) -> KernelStats {
        self.stats
    }

    /// Exact p99 span duration per tenant over `window`, with span and
    /// violation counts. Tenants are reported in dictionary (first-seen)
    /// order; tenants with no spans in the window are omitted.
    pub fn p99_by_tenant(&mut self, window: TimeWindow) -> LakehouseResult<Vec<TenantLatency>> {
        let durs = self
            .spans
            .column("dur_us")?
            .as_int()
            .ok_or_else(type_err("dur_us"))?
            .to_vec();
        let viol = self
            .spans
            .column("violated")?
            .as_int()
            .ok_or_else(type_err("violated"))?
            .to_vec();
        let mut out = Vec::new();
        for tenant in tenant_dict(&self.spans)? {
            let pred = window_pred(&tenant, window);
            let sel: SelectionVector =
                kernels::select_vector_with(&self.spans, &pred, &self.opts, &mut self.stats)?;
            if sel.count() == 0 {
                continue;
            }
            let mut tenant_durs: Vec<i64> = Vec::with_capacity(sel.count());
            let mut violated = 0usize;
            for row in sel.iter() {
                tenant_durs.push(durs[row]);
                violated += (viol[row] != 0) as usize;
            }
            tenant_durs.sort_unstable();
            out.push(TenantLatency {
                tenant,
                spans: tenant_durs.len(),
                violated,
                p99_us: p99_of_sorted(&tenant_durs),
            });
        }
        Ok(out)
    }

    /// Latency-constraint violations over time, bucketed by
    /// `window_us`: two fused filter+bin passes over `start_us` (one
    /// masked to violating spans, one over everything), so the LCV
    /// trajectory is a pair of histograms off the raw column. Buckets
    /// use the engine's `ROUND` binning: bucket `k` is centered on
    /// `k · window_us`.
    pub fn lcv_over_window(&mut self, window_us: u64) -> LakehouseResult<Vec<LcvPoint>> {
        let window_us = window_us.max(1);
        let idx = self.spans.column_index("start_us")?;
        let col = self.spans.column_at(idx);
        let starts = col.as_int().ok_or_else(type_err("start_us"))?;
        let Some(&horizon) = starts.iter().max() else {
            return Ok(Vec::new());
        };
        let nbins = ((horizon.max(0) as u64).div_ceil(window_us) as usize).max(1);
        let bins = BinSpec::new("start_us", 0.0, (nbins as u64 * window_us) as f64, nbins);
        let zone = self.spans.zone_map_at(idx);
        let violated_sel = kernels::select_vector_with(
            &self.spans,
            &Predicate::eq("violated", 1i64),
            &self.opts,
            &mut self.stats,
        )?;
        let all_sel = SelectionVector::all(self.spans.rows());
        let violations =
            kernels::fused_filter_bin(col, zone, &violated_sel, &bins, &self.opts, &mut self.stats);
        let totals =
            kernels::fused_filter_bin(col, zone, &all_sel, &bins, &self.opts, &mut self.stats);
        Ok(totals
            .counts()
            .iter()
            .zip(violations.counts())
            .enumerate()
            .map(|(k, (&total, &violations))| LcvPoint {
                t_us: k as u64 * window_us,
                total,
                violations,
            })
            .collect())
    }

    /// The `k` slowest spans, longest first (start time, then ingestion
    /// order break ties, so the leaderboard is deterministic).
    pub fn slowest_spans(&mut self, k: usize) -> LakehouseResult<Vec<SlowSpan>> {
        let durs = self
            .spans
            .column("dur_us")?
            .as_int()
            .ok_or_else(type_err("dur_us"))?;
        let mut order: Vec<usize> = (0..durs.len()).collect();
        order.sort_by_key(|&row| (std::cmp::Reverse(durs[row]), row));
        order.truncate(k);
        let starts = self
            .spans
            .column("start_us")?
            .as_int()
            .ok_or_else(type_err("start_us"))?;
        let (name_codes, name_dict) = self
            .spans
            .column("name")?
            .as_str_parts()
            .ok_or_else(type_err("name"))?;
        let (tenant_codes, tenant_dict) = self
            .spans
            .column("tenant")?
            .as_str_parts()
            .ok_or_else(type_err("tenant"))?;
        Ok(order
            .into_iter()
            .map(|row| SlowSpan {
                name: name_dict[name_codes[row] as usize].to_string(),
                tenant: tenant_dict[tenant_codes[row] as usize].to_string(),
                start_us: starts[row],
                dur_us: durs[row],
            })
            .collect())
    }
}

/// Builds the "column has unexpected type" error lazily.
fn type_err(column: &'static str) -> impl Fn() -> LakehouseError {
    move || {
        LakehouseError::Engine(ids_engine::EngineError::TypeMismatch {
            column: column.to_string(),
            expected: "telemetry column type",
        })
    }
}

/// Row-at-a-time reference for
/// [`TelemetryQueries::p99_by_tenant`]: evaluates the same predicate
/// with [`Predicate::matches`] per row instead of the vectorized
/// kernels. The tenth simtest oracle asserts both paths agree exactly.
pub fn reference_p99_by_tenant(
    spans: &Table,
    window: TimeWindow,
) -> LakehouseResult<Vec<TenantLatency>> {
    let durs = spans
        .column("dur_us")?
        .as_int()
        .ok_or_else(type_err("dur_us"))?
        .to_vec();
    let viol = spans
        .column("violated")?
        .as_int()
        .ok_or_else(type_err("violated"))?
        .to_vec();
    let mut out = Vec::new();
    for tenant in tenant_dict(spans)? {
        let pred = window_pred(&tenant, window);
        let mut tenant_durs = Vec::new();
        let mut violated = 0usize;
        for row in 0..spans.rows() {
            if pred.matches(spans, row)? {
                tenant_durs.push(durs[row]);
                violated += (viol[row] != 0) as usize;
            }
        }
        if tenant_durs.is_empty() {
            continue;
        }
        tenant_durs.sort_unstable();
        out.push(TenantLatency {
            tenant,
            spans: tenant_durs.len(),
            violated,
            p99_us: p99_of_sorted(&tenant_durs),
        });
    }
    Ok(out)
}

/// Renders a table as deterministic TSV: a `#`-prefixed title line,
/// a header row, then at most `max_rows` data rows (floats at three
/// decimals). Used by the determinism oracle to byte-compare telemetry
/// tables across replays.
pub fn render_table(t: &Table, max_rows: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {} ({} rows)", t.name(), t.rows());
    let names: Vec<&str> = t.column_names().collect();
    let _ = writeln!(out, "{}", names.join("\t"));
    let shown = t.rows().min(max_rows);
    for row in 0..shown {
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            match t.value(row, name) {
                Ok(ids_engine::Value::Int(v)) => {
                    let _ = write!(out, "{v}");
                }
                Ok(ids_engine::Value::Float(v)) => {
                    let _ = write!(out, "{v:.3}");
                }
                Ok(ids_engine::Value::Str(s)) => out.push_str(&s),
                Err(_) => out.push('?'),
            }
        }
        out.push('\n');
    }
    if shown < t.rows() {
        let _ = writeln!(out, "… ({} more rows)", t.rows() - shown);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lakehouse;
    use ids_obs::{ArgValue, TraceEvent, TrackId};
    use ids_simclock::SimDuration;

    fn span(tenant: &str, start: u64, dur: u64, violated: u64) -> TraceEvent {
        TraceEvent::Span {
            cat: "serve",
            name: "count".to_string(),
            track: TrackId(0),
            start: SimTime::from_micros(start),
            dur: SimDuration::from_micros(dur),
            args: vec![
                ("tenant", ArgValue::Str(tenant.to_string())),
                ("violated", ArgValue::U64(violated)),
                ("cost_us", ArgValue::U64(dur)),
            ],
        }
    }

    fn sample_queries() -> TelemetryQueries {
        let mut lake = Lakehouse::new();
        let mut events = Vec::new();
        for i in 0..4000u64 {
            let tenant = format!("tenant/{}", i % 3);
            let dur = 10 + (i * 37) % 900;
            events.push(span(&tenant, i * 25, dur, (dur > 800) as u64));
        }
        lake.ingest_events(&events, &["w".to_string()]);
        lake.queries().expect("queries")
    }

    #[test]
    fn p99_matches_reference_interpreter() {
        let mut q = sample_queries();
        for window in [
            TimeWindow::all(),
            TimeWindow::new(SimTime::from_micros(10_000), SimTime::from_micros(60_000)),
            // Empty window.
            TimeWindow::new(SimTime::from_micros(1), SimTime::from_micros(2)),
        ] {
            let kernel = q.p99_by_tenant(window).expect("kernel path");
            let reference = reference_p99_by_tenant(q.spans(), window).expect("reference path");
            assert_eq!(kernel, reference);
        }
        // The time-range scans actually exercised the kernels.
        assert!(q.kernel_stats().blocks_scanned > 0);
    }

    #[test]
    fn narrow_time_windows_prune_blocks_via_zone_maps() {
        let mut q = sample_queries();
        let narrow = TimeWindow::new(SimTime::ZERO, SimTime::from_micros(100));
        q.p99_by_tenant(narrow).expect("narrow window");
        let stats = q.kernel_stats();
        assert!(
            stats.blocks_pruned > 0,
            "a narrow time range must prune blocks, got {stats:?}"
        );
    }

    #[test]
    fn lcv_counts_match_direct_binning() {
        let mut q = sample_queries();
        let points = q.lcv_over_window(10_000).expect("lcv");
        let total: u64 = points.iter().map(|p| p.total).sum();
        let violations: u64 = points.iter().map(|p| p.violations).sum();
        assert_eq!(
            total,
            q.spans().rows() as u64,
            "every span lands in a bucket"
        );
        let viol_rows = q
            .spans()
            .column("violated")
            .expect("violated")
            .as_int()
            .expect("int")
            .iter()
            .filter(|&&v| v != 0)
            .count() as u64;
        assert_eq!(violations, viol_rows);
        for p in &points {
            assert!(p.violations <= p.total);
            assert!((0.0..=1.0).contains(&p.lcv()));
        }
    }

    #[test]
    fn slowest_spans_are_sorted_and_tie_broken() {
        let mut q = sample_queries();
        let top = q.slowest_spans(10).expect("slowest");
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(
                w[0].dur_us > w[1].dur_us
                    || (w[0].dur_us == w[1].dur_us && w[0].start_us < w[1].start_us),
                "leaderboard must be sorted with deterministic ties"
            );
        }
    }

    #[test]
    fn render_table_truncates_deterministically() {
        let q = sample_queries();
        let full = render_table(q.spans(), usize::MAX);
        assert!(full.starts_with("# telemetry_spans (4000 rows)\n"));
        assert_eq!(full, render_table(q.spans(), usize::MAX));
        let short = render_table(q.spans(), 5);
        assert!(short.contains("… (3995 more rows)"));
    }

    #[test]
    fn p99_of_sorted_ranks() {
        assert_eq!(p99_of_sorted(&[]), 0);
        assert_eq!(p99_of_sorted(&[7]), 7);
        let v: Vec<i64> = (1..=100).collect();
        assert_eq!(p99_of_sorted(&v), 99);
        let v: Vec<i64> = (1..=1000).collect();
        assert_eq!(p99_of_sorted(&v), 990);
    }
}
