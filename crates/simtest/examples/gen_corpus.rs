//! Regenerates `tests/corpus/` from the named scenarios below.
//!
//! Each corpus entry is a hand-picked scenario covering one edge of the
//! simulation space. This generator verifies every entry passes all
//! oracles and round-trips through the TOML dialect before writing it,
//! so a checked-in corpus file is always a *passing* scenario — the
//! corpus suite (`tests/simtest.rs`) replays them as regression guards.
//!
//! ```text
//! cargo run -p ids-simtest --example gen_corpus
//! ```

use ids_devices::DeviceKind;
use ids_simtest::scenario::{ArrivalShape, CmpToken, FilterSpec, QuerySpec};
use ids_simtest::{check_scenario, from_toml, to_toml, Scenario, SessionShape, TableSpec};

/// The baseline everything-on-the-happy-path scenario; entries below
/// override the dimensions they stress.
fn base(seed: u64) -> Scenario {
    Scenario {
        seed,
        sessions: 2,
        tenants: 1,
        rows: 200,
        max_groups: 2,
        prefetch_rate: 0.1,
        arrival: ArrivalShape::Poisson { gap_ms: 500 },
        chaos_intensity: 0.0,
        node_loss: false,
        workers: 2,
        threads: 2,
        latency_budget_ms: 500,
        tenant_rate: 4.0,
        tenant_burst: 16.0,
        queue_limit: 8,
        pool_pages: 256,
        shape: SessionShape::Crossfilter,
        device: DeviceKind::Mouse,
        resilience_budget_ms: 0,
        abandon_ms: 400,
        adaptive_steps: 12,
        table: TableSpec {
            rows: 32,
            key_mod: 4,
            nan_every: 0,
            dim_rows: 12,
        },
        queries: vec![
            QuerySpec::Count {
                filter: FilterSpec::True,
            },
            QuerySpec::Select {
                filter: FilterSpec::VBetween { lo: 20.0, hi: 60.0 },
                limit: 8,
                offset: 4,
            },
            QuerySpec::Histogram {
                bins: 8,
                lo: 0.0,
                hi: 100.0,
                filter: FilterSpec::True,
            },
            QuerySpec::Join {
                limit: 0,
                offset: 0,
            },
        ],
    }
}

fn corpus() -> Vec<(&'static str, &'static str, Scenario)> {
    let calm_small = base(0x101);

    let mut empty_table = base(0x102);
    empty_table.shape = SessionShape::Scrolling;
    empty_table.device = DeviceKind::Trackpad;
    empty_table.table = TableSpec {
        rows: 0,
        key_mod: 1,
        nan_every: 0,
        dim_rows: 0,
    };
    empty_table.queries = vec![
        QuerySpec::Histogram {
            bins: 4,
            lo: 0.0,
            hi: 100.0,
            filter: FilterSpec::True,
        },
        QuerySpec::Count {
            filter: FilterSpec::True,
        },
        QuerySpec::Select {
            filter: FilterSpec::True,
            limit: 5,
            offset: 0,
        },
        QuerySpec::Join {
            limit: 0,
            offset: 0,
        },
    ];

    let mut nan_binning = base(0x103);
    nan_binning.shape = SessionShape::Composite;
    nan_binning.device = DeviceKind::Touch;
    nan_binning.table = TableSpec {
        rows: 48,
        key_mod: 3,
        nan_every: 1,
        dim_rows: 8,
    };
    nan_binning.queries = vec![
        QuerySpec::Histogram {
            bins: 6,
            lo: 0.0,
            hi: 90.0,
            filter: FilterSpec::True,
        },
        QuerySpec::Histogram {
            bins: 3,
            lo: 10.0,
            hi: 40.0,
            filter: FilterSpec::VBetween { lo: 0.0, hi: 50.0 },
        },
        QuerySpec::Count {
            filter: FilterSpec::NotV { lo: 20.0, hi: 30.0 },
        },
    ];

    let mut join_duplicates = base(0x104);
    join_duplicates.device = DeviceKind::LeapMotion;
    join_duplicates.table = TableSpec {
        rows: 30,
        key_mod: 1,
        nan_every: 0,
        dim_rows: 16,
    };
    join_duplicates.queries = vec![
        QuerySpec::Join {
            limit: 0,
            offset: 0,
        },
        QuerySpec::Join {
            limit: 7,
            offset: 3,
        },
        QuerySpec::Join {
            limit: 5,
            offset: 29,
        },
        QuerySpec::Count {
            filter: FilterSpec::KCmp {
                op: CmpToken::Eq,
                value: 0,
            },
        },
    ];

    let mut storm_node_loss = base(0x105);
    storm_node_loss.sessions = 4;
    storm_node_loss.tenants = 2;
    storm_node_loss.chaos_intensity = 0.8;
    storm_node_loss.node_loss = true;
    storm_node_loss.workers = 4;
    storm_node_loss.threads = 4;
    storm_node_loss.latency_budget_ms = 750;
    storm_node_loss.pool_pages = 384;
    storm_node_loss.arrival = ArrivalShape::Poisson { gap_ms: 300 };
    storm_node_loss.table = TableSpec {
        rows: 16,
        key_mod: 2,
        nan_every: 0,
        dim_rows: 6,
    };

    let mut bursts_admission = base(0x106);
    bursts_admission.shape = SessionShape::Scrolling;
    bursts_admission.device = DeviceKind::Touch;
    bursts_admission.sessions = 6;
    bursts_admission.tenants = 3;
    bursts_admission.prefetch_rate = 0.3;
    bursts_admission.arrival = ArrivalShape::Bursts {
        count: 3,
        spacing_ms: 2_000,
        width_ms: 400,
    };
    bursts_admission.tenant_rate = 1.5;
    bursts_admission.tenant_burst = 4.0;
    bursts_admission.queue_limit = 2;

    let mut block_boundary = base(0x108);
    block_boundary.table = TableSpec {
        rows: 1025,
        key_mod: 5,
        nan_every: 9,
        dim_rows: 10,
    };
    block_boundary.queries = vec![
        QuerySpec::Histogram {
            bins: 12,
            lo: 0.0,
            hi: 100.0,
            filter: FilterSpec::True,
        },
        QuerySpec::Histogram {
            bins: 5,
            lo: 20.0,
            hi: 80.0,
            filter: FilterSpec::VkAnd {
                vlo: 10.0,
                vhi: 90.0,
                klo: 1.0,
                khi: 3.0,
            },
        },
        // Inverted bounds: the all-rows-filtered edge.
        QuerySpec::Count {
            filter: FilterSpec::VBetween { lo: 70.0, hi: 30.0 },
        },
        QuerySpec::Select {
            filter: FilterSpec::KCmp {
                op: CmpToken::Ge,
                value: 3,
            },
            limit: 9,
            offset: 1020,
        },
        QuerySpec::Join {
            limit: 6,
            offset: 1019,
        },
    ];

    let mut shard_empty = base(0x109);
    shard_empty.shape = SessionShape::Composite;
    shard_empty.table = TableSpec {
        rows: 24,
        key_mod: 1, // one key value: hash-key routing leaves most shards empty
        nan_every: 0,
        dim_rows: 6,
    };
    shard_empty.queries = vec![
        QuerySpec::Count {
            filter: FilterSpec::True,
        },
        QuerySpec::Histogram {
            bins: 6,
            lo: 0.0,
            hi: 100.0,
            filter: FilterSpec::True,
        },
        QuerySpec::Histogram {
            bins: 4,
            lo: 0.0,
            hi: 60.0,
            filter: FilterSpec::KCmp {
                op: CmpToken::Eq,
                value: 0,
            },
        },
    ];

    let mut shard_skew = base(0x10a);
    shard_skew.device = DeviceKind::Touch;
    shard_skew.table = TableSpec {
        rows: 600,
        key_mod: 2,   // two key values over 16 shards: maximal hash skew
        nan_every: 3, // NaN rows pile onto range shard 0
        dim_rows: 10,
    };
    shard_skew.queries = vec![
        QuerySpec::Histogram {
            bins: 10,
            lo: 0.0,
            hi: 100.0,
            filter: FilterSpec::True,
        },
        QuerySpec::Count {
            filter: FilterSpec::VBetween { lo: 25.0, hi: 75.0 },
        },
        QuerySpec::Histogram {
            bins: 5,
            lo: -10.0,
            hi: 45.0,
            filter: FilterSpec::SEq { word: 1 },
        },
    ];

    let mut shard_overcount = base(0x10b);
    shard_overcount.shape = SessionShape::Scrolling;
    shard_overcount.table = TableSpec {
        rows: 5, // fewer rows than the oracle's widest shard count (16)
        key_mod: 3,
        nan_every: 0,
        dim_rows: 4,
    };
    shard_overcount.queries = vec![
        QuerySpec::Count {
            filter: FilterSpec::True,
        },
        QuerySpec::Histogram {
            bins: 3,
            lo: 0.0,
            hi: 100.0,
            filter: FilterSpec::True,
        },
        QuerySpec::Join {
            limit: 0,
            offset: 0,
        },
    ];

    let mut adaptive_zoom = base(0x10c);
    adaptive_zoom.shape = SessionShape::Adaptive;
    adaptive_zoom.rows = 400;
    adaptive_zoom.abandon_ms = 5_000; // patient user: the loop runs its course
    adaptive_zoom.adaptive_steps = 16;

    let mut adaptive_abandon = base(0x10d);
    adaptive_abandon.shape = SessionShape::Adaptive;
    adaptive_abandon.chaos_intensity = 0.9;
    adaptive_abandon.abandon_ms = 1; // hair-trigger user under a storm
    adaptive_abandon.adaptive_steps = 12;

    let mut mined_replay = base(0x10e);
    mined_replay.shape = SessionShape::Mined;
    mined_replay.device = DeviceKind::Trackpad;
    mined_replay.adaptive_steps = 14;

    let mut scroll_degrade = base(0x107);
    scroll_degrade.shape = SessionShape::Scrolling;
    scroll_degrade.device = DeviceKind::Trackpad;
    scroll_degrade.chaos_intensity = 0.4;
    scroll_degrade.resilience_budget_ms = 40;

    vec![
        (
            "calm-small",
            "baseline: every oracle on the happy path",
            calm_small,
        ),
        (
            "empty-table",
            "zero-row differential tables (regression: histogram type probe \
             indexed row 0 of an empty column)",
            empty_table,
        ),
        (
            "nan-binning",
            "all-NaN measure column: NaN must land in no bin and fail every range",
            nan_binning,
        ),
        (
            "join-duplicates",
            "key_mod 1 joins: duplicate keys expand to cross products under pagination",
            join_duplicates,
        ),
        (
            "storm-node-loss",
            "fault storm with mid-run node loss under a rigid resilience policy",
            storm_node_loss,
        ),
        (
            "bursts-admission",
            "rush-hour bursts against tight per-tenant admission (shed conservation)",
            bursts_admission,
        ),
        (
            "scroll-degrade",
            "scroll replay under faults with a degrade-after budget (partial answers)",
            scroll_degrade,
        ),
        (
            "shard-empty-shards",
            "single-key table: hash-key partitioning leaves most shards empty, \
             the merge must still be exact",
            shard_empty,
        ),
        (
            "shard-skewed-keys",
            "two-key table with periodic NaNs: maximal hash skew and a NaN-heavy \
             range shard 0",
            shard_skew,
        ),
        (
            "shard-count-exceeds-rows",
            "five-row table under 16 shards: more shards than rows, empty-partial \
             merges stay exact",
            shard_overcount,
        ),
        (
            "adaptive-zoom-loop",
            "patient closed-loop user on a calm backend: the content-driven \
             zoom/drill transitions fire and the loop runs to its action bound",
            adaptive_zoom,
        ),
        (
            "adaptive-abandon-under-chaos",
            "hair-trigger closed-loop user in a 0.9-intensity storm: slow \
             answers end the session through the abandon transition",
            adaptive_abandon,
        ),
        (
            "mined-interface-replay",
            "open-loop trackpad trace mined into a composite interface \
             (sliders + brush + dropdown) and replayed as a novel workload",
            mined_replay,
        ),
        (
            "block-boundary-kernels",
            "1025-row table straddling the 1024-row zone-map block: vectorized \
             kernels, pruning, and pagination at the boundary",
            block_boundary,
        ),
    ]
}

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    std::fs::create_dir_all(dir).expect("create corpus dir");
    for (name, note, scenario) in corpus() {
        let toml = to_toml(&scenario);
        let back = from_toml(&toml).expect("corpus entry round-trips");
        assert_eq!(back, scenario, "{name}: TOML round-trip identity");
        let verdict = check_scenario(&scenario);
        assert!(
            verdict.all_passed(),
            "{name}: corpus entries must pass all oracles — {}",
            verdict.summary()
        );
        let body = format!(
            "# {name} — {note}\n# regenerated by: cargo run -p ids-simtest --example gen_corpus\n{toml}"
        );
        let path = format!("{dir}/{name}.toml");
        std::fs::write(&path, body).expect("write corpus file");
        println!("wrote {path} ({})", verdict.summary());
    }
}
