//! Scenario execution: one [`Scenario`] in, one [`RunArtifacts`] out.
//!
//! Two stages mirror how the repository's experiments use the stack:
//!
//! 1. **Fleet stage** — the full `ids-serve` pipeline exactly as the
//!    core fleet experiment wires it: synthesize the offered stream,
//!    register per-tenant road tables behind one shared disk-backed
//!    buffer pool, fix per-query costs under the scenario's fault plan,
//!    then replay them through the queueing simulation twice (admission
//!    policy vs open queueing).
//! 2. **Replay stage** — a single session of the scenario's workload
//!    family replayed through the resilient scheduler over a
//!    chaos-wrapped in-memory backend, exercising retries, failure
//!    placeholders, and budget-driven degradation to `Partial` answers.
//!
//! Everything observable is folded into a canonical `digest` string —
//! the byte-level identity the determinism and thread-invariance
//! oracles compare. The digest deliberately includes every result
//! payload (hashed), every timing, and every quality tag: if any of
//! them depends on wall-clock time, host threads, or map iteration
//! order, two digests will differ.

use ids_chaos::{query_fingerprint, ChaosBackend, FaultPlan};
use ids_engine::scheduler::{IssuedQuery, QueryTiming, ReplayScheduler, ResiliencePolicy};
use ids_engine::{
    Backend, CostParams, Database, DiskBackend, EngineResult, EvictionPolicy, MemBackend,
    Predicate, Query, QueryOutcome, ResultQuality, RetryPolicy, RetryingBackend,
};
use ids_serve::{
    drive_session, measure_costs, simulate_service, synthesize_fleet, AdmissionPolicy,
    ArrivalProcess, ClosedLoopParams, FleetOutcome, FleetSpec, ServeParams,
};
use ids_shard::{partition_table, PartitionScheme, ScatterGather};
use ids_simclock::{SimDuration, SimTime};
use ids_workload::adaptive::{BehaviorConfig, BehaviorPolicy};
use ids_workload::{adaptive, composite, crossfilter, datasets, mining, scrolling};

use crate::scenario::{derive_seed, ArrivalShape, Scenario, SessionShape};

/// Ceiling on replay-stage queries per shape, so scenario cost stays
/// bounded no matter what the trace models emit.
const MAX_REPLAY_QUERIES: usize = 64;

/// One replayed query with everything the oracles need to judge it.
#[derive(Debug, Clone)]
pub struct ReplayRecord {
    /// The query as issued.
    pub query: Query,
    /// Scheduler timing (issue → start → finish).
    pub timing: QueryTiming,
    /// Backend outcome (result, cost, quality).
    pub outcome: QueryOutcome,
}

/// Everything a scenario run produced.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// Queries the fleet offered.
    pub offered: usize,
    /// Offer instants, in canonical offered order.
    pub offered_at: Vec<SimTime>,
    /// Fleet outcome under the scenario's admission policy.
    pub admission: FleetOutcome,
    /// Fleet outcome with everything admitted.
    pub baseline: FleetOutcome,
    /// Single-session resilient replay records.
    pub replay: Vec<ReplayRecord>,
    /// Canonical byte identity of the run.
    pub digest: String,
}

/// FNV-1a, the digest's payload hash.
fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn arrival_process(shape: &ArrivalShape) -> ArrivalProcess {
    match *shape {
        ArrivalShape::Poisson { gap_ms } => ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_millis(gap_ms),
        },
        ArrivalShape::Bursts {
            count,
            spacing_ms,
            width_ms,
        } => ArrivalProcess::Bursts {
            count,
            spacing: SimDuration::from_millis(spacing_ms),
            width: SimDuration::from_millis(width_ms),
        },
    }
}

/// Scales the per-tuple charges of a cost calibration — same trick as
/// the fleet experiment, keeping the latency regime stable when tables
/// shrink.
fn scale_params(mut p: CostParams, k: f64) -> CostParams {
    let mul = |ns: u64| ((ns as f64) * k).round() as u64;
    p.tuple_scan_ns = mul(p.tuple_scan_ns);
    p.tuple_agg_ns = mul(p.tuple_agg_ns);
    p.join_build_ns = mul(p.join_build_ns);
    p.join_probe_ns = mul(p.join_probe_ns);
    p.predicate_eval_ns = mul(p.predicate_eval_ns);
    p
}

fn fleet_plan(s: &Scenario, horizon: SimDuration) -> FaultPlan {
    if s.chaos_intensity <= 0.0 {
        FaultPlan::calm(s.seed)
    } else if s.node_loss {
        FaultPlan::storm_with_node_loss(s.seed, s.chaos_intensity, horizon, s.workers)
    } else {
        FaultPlan::storm(s.seed, s.chaos_intensity, horizon)
    }
}

/// Builds the replay stage's backend and issued-query stream for the
/// scenario's workload family. Shared by the pipeline and the
/// partial-bounds oracle (which re-executes queries plainly).
pub fn build_replay_env(s: &Scenario) -> (MemBackend, Vec<IssuedQuery>) {
    let backend = MemBackend::new();
    let db = backend.database();
    let mut stream = Vec::new();
    match s.shape {
        SessionShape::Crossfilter => {
            let table = "simtest_xf";
            db.register(datasets::road_network_named(table, s.seed, s.rows.min(600)));
            let ui = crossfilter::CrossfilterUi::for_table(table);
            let session = crossfilter::simulate_session(s.device, 0, s.seed, &ui);
            let mut groups = crossfilter::compile_query_groups(&ui, &session.trace);
            groups.truncate(s.max_groups.max(1));
            for g in &groups {
                for q in &g.queries {
                    stream.push(IssuedQuery::new(g.at, q.clone(), stream.len() as u64));
                }
            }
        }
        SessionShape::Scrolling => {
            let tuples = s.rows.clamp(50, 600);
            db.register(datasets::movies_sized(s.seed, tuples));
            let session = scrolling::simulate_session(0, s.seed, tuples);
            let mut fetched = 0u64;
            for (at, demand) in scrolling::demand_curve(&session) {
                if demand > fetched {
                    let q = Query::select(
                        "imdb",
                        vec![],
                        Predicate::True,
                        Some((demand - fetched) as usize),
                        fetched as usize,
                    );
                    stream.push(IssuedQuery::new(at, q, stream.len() as u64));
                    fetched = demand;
                }
            }
        }
        SessionShape::Composite => {
            db.register(datasets::listings(s.seed, s.rows.min(500)));
            let config = composite::CompositeConfig {
                min_duration: SimDuration::from_secs(90),
                request_model: None,
            };
            let session = composite::simulate_session(0, s.seed, &config);
            for step in &session.steps {
                let (sw_lat, sw_lng, ne_lat, ne_lng) = step.state.map.bounds();
                let q = Query::count(
                    "listings",
                    Predicate::and([
                        Predicate::between("lat", sw_lat, ne_lat),
                        Predicate::between("lng", sw_lng, ne_lng),
                    ]),
                );
                stream.push(IssuedQuery::new(step.at, q, stream.len() as u64));
            }
        }
        SessionShape::Adaptive => {
            // Closed loop: the behavior model reacts to each answer from
            // the calm backend under the scenario's admission/resilience
            // policies; the action stream it settles on becomes the
            // replay-stage stream (which then runs under chaos).
            let table = "simtest_adaptive";
            db.register(datasets::road_network_named(table, s.seed, s.rows.min(600)));
            let ui = crossfilter::CrossfilterUi::for_table(table);
            let policy = BehaviorPolicy::adaptive(s.seed, ui).with_config(behavior_config(s));
            let outcome = drive_session(&backend, &policy, &closed_loop_params(s));
            for a in &outcome.actions {
                let g = adaptive::compile_action(policy.ui(), a);
                for q in &g.queries {
                    stream.push(IssuedQuery::new(g.at, q.clone(), stream.len() as u64));
                }
            }
        }
        SessionShape::Mined => {
            // Mine an open-loop crossfilter trace into widget signatures,
            // graft them into a novel composite interface, and replay a
            // synthesized session of that interface.
            let table = "simtest_mined";
            db.register(datasets::road_network_named(table, s.seed, s.rows.min(600)));
            let ui = crossfilter::CrossfilterUi::for_table(table);
            let session = crossfilter::simulate_session(s.device, 0, s.seed, &ui);
            let mined = mining::mine(&mining::crossfilter_request_trace(&ui, &session.trace));
            let novel = mining::compose_novel(&mined, &ui);
            let trace = novel.synthesize(derive_seed(s.seed, 0x51ed), s.adaptive_steps.max(1));
            for (at, q) in novel.compile(&trace) {
                stream.push(IssuedQuery::new(at, q, stream.len() as u64));
            }
        }
    }
    stream.truncate(MAX_REPLAY_QUERIES);
    (backend, stream)
}

/// The behavior-model configuration a scenario pins down.
pub fn behavior_config(s: &Scenario) -> BehaviorConfig {
    BehaviorConfig {
        max_actions: s.adaptive_steps.max(1),
        abandon_after: SimDuration::from_millis(s.abandon_ms.max(1)),
        ..BehaviorConfig::default()
    }
}

/// The closed-loop service parameters a scenario pins down: the fleet
/// admission policy and the replay-stage resilience policy.
pub fn closed_loop_params(s: &Scenario) -> ClosedLoopParams {
    ClosedLoopParams {
        workers: s.workers.max(1),
        admission: AdmissionPolicy {
            tenant_rate: s.tenant_rate,
            tenant_burst: s.tenant_burst,
            queue_limit: s.queue_limit,
            prefetch_queue_limit: 0,
        },
        resilience: resilience_policy(s),
        ..ClosedLoopParams::default()
    }
}

/// The resilience policy the replay stage schedules under.
pub fn resilience_policy(s: &Scenario) -> ResiliencePolicy {
    if s.resilience_budget_ms == 0 {
        ResiliencePolicy::rigid()
    } else {
        ResiliencePolicy::degrade_after(SimDuration::from_millis(s.resilience_budget_ms))
    }
}

fn quality_token(q: &ResultQuality) -> String {
    match q {
        ResultQuality::Exact => "exact".into(),
        ResultQuality::Partial {
            fraction,
            error_bound,
        } => format!("partial:{fraction:?}:{error_bound:?}"),
        ResultQuality::Failed => "failed".into(),
    }
}

/// Runs one scenario end to end. Pure on the virtual clock: the same
/// `(scenario, threads)` always produces the same artifacts, and
/// `threads` must not change the digest at all (that is an oracle).
pub fn run_pipeline(s: &Scenario, threads: usize) -> RunArtifacts {
    // ---- Stage 1: fleet serving --------------------------------------
    let spec = FleetSpec {
        seed: s.seed,
        sessions: s.sessions,
        tenants: s.tenants.max(1),
        arrival: arrival_process(&s.arrival),
        max_groups: s.max_groups,
        prefetch_rate: s.prefetch_rate,
    };
    let offered = synthesize_fleet(&spec, threads.max(1));

    let cost_scale = datasets::road_domain::ROWS as f64 / s.rows.max(1) as f64;
    let disk = DiskBackend::with_config(
        scale_params(CostParams::disk_default(), cost_scale),
        s.pool_pages.max(1),
        EvictionPolicy::Lru,
    );
    let db = disk.database();
    for tenant in 0..s.tenants.max(1) {
        db.register(datasets::road_network_named(
            &FleetSpec::tenant_table(tenant),
            s.seed,
            s.rows,
        ));
    }

    let horizon = offered
        .last()
        .map(|q| q.at.saturating_since(SimTime::ZERO))
        .unwrap_or(SimDuration::ZERO);
    let plan = fleet_plan(s, horizon);
    let latency_budget = SimDuration::from_millis(s.latency_budget_ms);
    let costs = measure_costs(&disk, Some(&disk), &offered, &plan, latency_budget);

    let params = ServeParams {
        workers: s.workers.max(1),
        latency_budget,
        deadline: false,
        shards: 1,
    };
    let admission_policy = AdmissionPolicy {
        tenant_rate: s.tenant_rate,
        tenant_burst: s.tenant_burst,
        queue_limit: s.queue_limit,
        prefetch_queue_limit: 0,
    };
    let admission = simulate_service(&offered, &costs, &admission_policy, &plan, &params);
    let baseline = simulate_service(
        &offered,
        &costs,
        &AdmissionPolicy::unlimited(),
        &plan,
        &params,
    );

    // ---- Stage 2: single-session resilient replay --------------------
    let (mem, stream) = build_replay_env(s);
    let replay_horizon = stream
        .last()
        .map(|q| q.issued_at.saturating_since(SimTime::ZERO))
        .unwrap_or(SimDuration::ZERO);
    let replay_plan = if s.chaos_intensity > 0.0 {
        FaultPlan::storm(
            derive_seed(s.seed, 0x7e91),
            s.chaos_intensity,
            replay_horizon,
        )
    } else {
        FaultPlan::calm(s.seed)
    };
    let chaos = ChaosBackend::new(&mem, replay_plan);
    let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
    let scheduler = ReplayScheduler::new(s.workers.max(1));
    let policy = resilience_policy(s);
    let replay: Vec<ReplayRecord> = scheduler
        .replay_resilient(&retrying, &stream, &policy)
        .expect("replay streams only hit transient errors")
        .into_iter()
        .zip(&stream)
        .map(|((timing, outcome), iq)| ReplayRecord {
            query: iq.query.clone(),
            timing,
            outcome,
        })
        .collect();

    // ---- Canonical digest --------------------------------------------
    let mut digest = String::new();
    digest.push_str(&format!("offered {}\n", offered.len()));
    let mut stream_hash = 0u64;
    for q in &offered {
        stream_hash = fnv(
            stream_hash,
            format!(
                "{}|{}|{}|{:?}|{}",
                q.at.as_micros(),
                q.session,
                q.seq,
                q.lane,
                query_fingerprint(&q.query)
            )
            .as_bytes(),
        );
    }
    digest.push_str(&format!("stream {stream_hash:016x}\n"));
    let mut cost_hash = 0u64;
    for c in &costs {
        cost_hash = fnv(cost_hash, &c.as_micros().to_le_bytes());
    }
    digest.push_str(&format!("costs {cost_hash:016x}\n"));
    for (name, o) in [("admission", &admission), ("baseline", &baseline)] {
        digest.push_str(&format!(
            "{name} admitted={} interactive={} shed={:?} lcv={}/{} p50={} p95={} p99={} qps={:?} drained={} sessions={}\n",
            o.admitted,
            o.interactive_admitted,
            o.shed,
            o.lcv.violations,
            o.lcv.total,
            o.p50.as_micros(),
            o.p95.as_micros(),
            o.p99.as_micros(),
            o.admitted_qps,
            o.drained_at.as_micros(),
            o.sessions_served,
        ));
    }
    for r in &replay {
        let result_hash = fnv(0, format!("{:?}", r.outcome.result).as_bytes());
        digest.push_str(&format!(
            "replay tag={} issued={} started={} finished={} quality={} result={result_hash:016x}\n",
            r.timing.tag,
            r.timing.issued_at.as_micros(),
            r.timing.started_at.as_micros(),
            r.timing.finished_at.as_micros(),
            quality_token(&r.outcome.quality),
        ));
    }

    RunArtifacts {
        offered: offered.len(),
        offered_at: offered.iter().map(|q| q.at).collect(),
        admission,
        baseline,
        replay,
        digest,
    }
}

/// A backend whose *answers* come from a scatter-gather over `shards`
/// partitions while its *costs* (and failure/latency behavior) come from
/// the unsharded inner backend. This is the oracle-14 instrument: the
/// closed loop's feedback latencies stay shard-invariant by
/// construction, so any divergence a shard count introduces must be a
/// result divergence — and lands in the digest, where the oracle sees
/// it.
struct ShardedBackend<'a> {
    inner: &'a dyn Backend,
    gather: ScatterGather,
}

impl Backend for ShardedBackend<'_> {
    fn name(&self) -> &str {
        "sharded-adaptive"
    }

    fn database(&self) -> Database {
        self.inner.database()
    }

    fn execute(&self, query: &Query) -> EngineResult<QueryOutcome> {
        let mut out = self.inner.execute(query)?;
        // Failed placeholders keep their placeholder results; exact
        // answers are replaced by the merged sharded answer.
        if out.quality == ResultQuality::Exact {
            out.result = self.gather.execute(query)?.result;
        }
        Ok(out)
    }
}

/// Drives one closed-loop adaptive session for oracle 14: answers are
/// scatter-gathered across `shards` hash partitions with `threads`
/// gather threads, costs and faults come from the chaos-wrapped
/// unsharded backend, and the resilience mode always degrades (so
/// `Partial` answers flow through the feedback loop). Returns the
/// canonical digest — action stream, request trace, per-query timings
/// and qualities, plus the interface mined back out of the trace — that
/// must be byte-identical across replays, thread counts, and shard
/// counts.
pub fn adaptive_run(s: &Scenario, threads: usize, shards: usize) -> String {
    let rows = s.rows.clamp(50, 600);
    let table = datasets::road_network_named("simtest_adaptive", s.seed, rows);
    let parts = partition_table(&table, &PartitionScheme::HashRows, s.seed, shards.max(1))
        .expect("hash partitioning a road table cannot fail");
    let dbs: Vec<Database> = parts
        .into_iter()
        .map(|t| {
            let db = Database::new();
            db.register(t);
            db
        })
        .collect();
    let gather = ScatterGather::over(dbs).with_threads(threads.max(1));

    let mem = MemBackend::new();
    mem.database().register(table);
    // A generous horizon: the session is action-bounded, and each action
    // costs at most think time (~1.5s) plus the abandon threshold.
    let horizon =
        SimDuration::from_millis(s.adaptive_steps.max(1) as u64 * (s.abandon_ms + 2_000) + 10_000);
    let plan = if s.chaos_intensity > 0.0 {
        FaultPlan::storm(derive_seed(s.seed, 0xada), s.chaos_intensity, horizon)
    } else {
        FaultPlan::calm(s.seed)
    };
    let chaos = ChaosBackend::new(&mem, plan);
    let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
    let sharded = ShardedBackend {
        inner: &retrying,
        gather,
    };

    let ui = crossfilter::CrossfilterUi::for_table("simtest_adaptive");
    let policy = BehaviorPolicy::adaptive(s.seed, ui).with_config(behavior_config(s));
    let mut params = closed_loop_params(s);
    params.resilience = ResiliencePolicy::degrade_after(SimDuration::from_millis(
        s.resilience_budget_ms.max(s.latency_budget_ms).max(50),
    ));
    let outcome = drive_session(&sharded, &policy, &params);

    let mut digest = outcome.digest();
    digest.push_str(&mining::mine(&outcome.trace).render());
    digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::gate;
    use crate::scenario::derive_seed;

    #[test]
    fn replay_env_is_nonempty_for_every_shape() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..30u64 {
            let s = Scenario::generate(derive_seed(31, i));
            let (_, stream) = build_replay_env(&s);
            assert!(
                !stream.is_empty(),
                "shape {:?} produced no queries",
                s.shape
            );
            assert!(stream.len() <= MAX_REPLAY_QUERIES);
            assert!(
                stream.windows(2).all(|w| w[0].issued_at <= w[1].issued_at),
                "stream must be sorted"
            );
            seen.insert(s.shape.token());
        }
        assert_eq!(seen.len(), 5, "all shapes exercised");
    }

    #[test]
    fn adaptive_run_digest_is_stable() {
        let _g = gate();
        let mut s = Scenario::generate(derive_seed(43, 0));
        s.shape = crate::scenario::SessionShape::Adaptive;
        assert_eq!(adaptive_run(&s, 2, 4), adaptive_run(&s, 2, 4));
    }

    #[test]
    fn pipeline_digest_is_reproducible() {
        let _g = gate();
        let s = Scenario::generate(derive_seed(37, 1));
        let a = run_pipeline(&s, s.threads);
        let b = run_pipeline(&s, s.threads);
        assert_eq!(a.digest, b.digest);
        assert!(a.offered > 0);
    }
}
