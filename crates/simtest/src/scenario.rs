//! Scenario grammar: everything a simulation run depends on, generated
//! from a single seed and round-trippable through a small hand-rolled
//! TOML dialect (the workspace deliberately carries no TOML crate).
//!
//! A [`Scenario`] fixes the whole (workload × device × fault plan ×
//! admission policy × thread count) point in one value: the fleet shape
//! served by `ids-serve`, the single-session replay trace, the fault
//! plan intensity, the resilience/admission policies, and the small
//! differential tables the reference interpreter checks `engine::exec`
//! against. Because every downstream stage is a pure function of the
//! scenario on the virtual clock, a scenario file *is* a repro.

use ids_devices::DeviceKind;
use ids_engine::{BinSpec, CmpOp, JoinSpec, Predicate, Query, Value};
use ids_simclock::rng::SimRng;

/// String vocabulary for the differential fact table's `s` column.
pub const VOCAB: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Session arrival process, mirroring `ids_serve::ArrivalProcess` in
/// plain serializable fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Exponential inter-arrival gaps with the given mean.
    Poisson {
        /// Mean gap, milliseconds.
        gap_ms: u64,
    },
    /// Rush-hour bursts.
    Bursts {
        /// Number of bursts.
        count: usize,
        /// Start-to-start burst spacing, milliseconds.
        spacing_ms: u64,
        /// Jitter window within a burst, milliseconds.
        width_ms: u64,
    },
}

/// Which workload family drives the single-session replay stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionShape {
    /// Crossfilter slider drags compiled to histogram query groups.
    Crossfilter,
    /// Infinite-scroll feed compiled to paginated selects.
    Scrolling,
    /// Composite search-and-browse compiled to viewport counts.
    Composite,
    /// Closed-loop adaptive session: the behavior model reacts to each
    /// answer (zoom / drill / backtrack / abandon).
    Adaptive,
    /// Interface mined from a crossfilter trace and re-synthesized as a
    /// novel composite (slider + brush + dropdown) session.
    Mined,
}

impl SessionShape {
    /// Stable TOML token.
    pub fn token(self) -> &'static str {
        match self {
            SessionShape::Crossfilter => "crossfilter",
            SessionShape::Scrolling => "scrolling",
            SessionShape::Composite => "composite",
            SessionShape::Adaptive => "adaptive",
            SessionShape::Mined => "mined",
        }
    }
}

/// Shape of the small differential tables (`fact` and `dim`).
///
/// `fact` has columns `k: Int = i % key_mod`, `v: Float` (uniform in
/// `[0, 100)`, every `nan_every`-th row replaced by NaN when nonzero),
/// and `s: Str` cycling through [`VOCAB`]. `dim` has `dk: Int` drawn
/// from `[0, 2·key_mod)` — guaranteeing join hits, misses, and
/// duplicate keys — and `w: Float`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableSpec {
    /// Rows in the fact table (zero is legal: empty-table edge case).
    pub rows: usize,
    /// Modulus for the integer key column (≥ 1).
    pub key_mod: usize,
    /// Every n-th `v` value is NaN; 0 disables, 1 makes the column
    /// all-NaN (the engine's stand-in for an all-null column).
    pub nan_every: usize,
    /// Rows in the dim table (zero is legal).
    pub dim_rows: usize,
}

/// Comparison operator token for [`FilterSpec::KCmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpToken {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpToken {
    const ALL: [CmpToken; 6] = [
        CmpToken::Eq,
        CmpToken::Ne,
        CmpToken::Lt,
        CmpToken::Le,
        CmpToken::Gt,
        CmpToken::Ge,
    ];

    /// Stable TOML token.
    pub fn token(self) -> &'static str {
        match self {
            CmpToken::Eq => "eq",
            CmpToken::Ne => "ne",
            CmpToken::Lt => "lt",
            CmpToken::Le => "le",
            CmpToken::Gt => "gt",
            CmpToken::Ge => "ge",
        }
    }

    /// The engine operator this token denotes.
    pub fn op(self) -> CmpOp {
        match self {
            CmpToken::Eq => CmpOp::Eq,
            CmpToken::Ne => CmpOp::Ne,
            CmpToken::Lt => CmpOp::Lt,
            CmpToken::Le => CmpOp::Le,
            CmpToken::Gt => CmpOp::Gt,
            CmpToken::Ge => CmpOp::Ge,
        }
    }
}

/// Filter over the differential fact table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterSpec {
    /// No filter.
    True,
    /// `v BETWEEN lo AND hi`.
    VBetween {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// `k <op> value` on the integer key column.
    KCmp {
        /// Operator.
        op: CmpToken,
        /// Right-hand side.
        value: i64,
    },
    /// `s = VOCAB[word]` on the string column.
    SEq {
        /// Index into [`VOCAB`].
        word: usize,
    },
    /// `v BETWEEN vlo AND vhi AND k BETWEEN klo AND khi`.
    VkAnd {
        /// `v` lower bound.
        vlo: f64,
        /// `v` upper bound.
        vhi: f64,
        /// `k` lower bound.
        klo: f64,
        /// `k` upper bound.
        khi: f64,
    },
    /// `NOT (v BETWEEN lo AND hi)`.
    NotV {
        /// Negated range lower bound.
        lo: f64,
        /// Negated range upper bound.
        hi: f64,
    },
}

impl FilterSpec {
    /// Compiles to the engine predicate the differential oracle feeds
    /// `engine::exec`.
    pub fn predicate(&self) -> Predicate {
        match *self {
            FilterSpec::True => Predicate::True,
            FilterSpec::VBetween { lo, hi } => Predicate::between("v", lo, hi),
            FilterSpec::KCmp { op, value } => Predicate::Cmp {
                column: "k".into(),
                op: op.op(),
                value: Value::Int(value),
            },
            FilterSpec::SEq { word } => Predicate::Cmp {
                column: "s".into(),
                op: CmpOp::Eq,
                value: Value::Str(VOCAB[word % VOCAB.len()].into()),
            },
            FilterSpec::VkAnd { vlo, vhi, klo, khi } => Predicate::and([
                Predicate::between("v", vlo, vhi),
                Predicate::between("k", klo, khi),
            ]),
            FilterSpec::NotV { lo, hi } => {
                Predicate::Not(Box::new(Predicate::between("v", lo, hi)))
            }
        }
    }
}

/// One differential query against the fact (and possibly dim) table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuerySpec {
    /// `SELECT COUNT(*) FROM fact WHERE filter`.
    Count {
        /// Row filter.
        filter: FilterSpec,
    },
    /// Paginated scan: `SELECT * FROM fact WHERE filter LIMIT .. OFFSET ..`.
    Select {
        /// Row filter.
        filter: FilterSpec,
        /// Page size; 0 means unlimited.
        limit: usize,
        /// Page start within the filtered rows.
        offset: usize,
    },
    /// `SELECT bin, COUNT(*) ... GROUP BY ROUND((v - lo)/width)`.
    Histogram {
        /// Bucket count (≥ 1).
        bins: usize,
        /// Domain lower bound.
        lo: f64,
        /// Domain upper bound.
        hi: f64,
        /// Row filter.
        filter: FilterSpec,
    },
    /// `fact JOIN dim ON fact.k = dim.dk`, paginated over left rows.
    Join {
        /// Page size over matching left rows; 0 means unlimited.
        limit: usize,
        /// Page start over left rows.
        offset: usize,
    },
}

impl QuerySpec {
    /// Compiles to the engine query the differential oracle executes.
    pub fn query(&self) -> Query {
        match *self {
            QuerySpec::Count { filter } => Query::count("fact", filter.predicate()),
            QuerySpec::Select {
                filter,
                limit,
                offset,
            } => Query::select(
                "fact",
                vec![],
                filter.predicate(),
                if limit == 0 { None } else { Some(limit) },
                offset,
            ),
            QuerySpec::Histogram {
                bins,
                lo,
                hi,
                filter,
            } => Query::histogram("fact", BinSpec::new("v", lo, hi, bins), filter.predicate()),
            QuerySpec::Join { limit, offset } => Query::Join(JoinSpec {
                left: "fact".into(),
                right: "dim".into(),
                left_key: "k".into(),
                right_key: "dk".into(),
                projection: vec![],
                limit: if limit == 0 { None } else { Some(limit) },
                offset,
            }),
        }
    }
}

/// One fully-specified end-to-end simulation scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Master seed: fleet synthesis, datasets, fault plans, and the
    /// single-session trace all derive from it.
    pub seed: u64,
    /// Concurrent sessions in the serving fleet.
    pub sessions: usize,
    /// Tenants the fleet is striped across (≥ 1).
    pub tenants: usize,
    /// Rows in each tenant's road-network table.
    pub rows: usize,
    /// Cap on slider-move groups kept per fleet session.
    pub max_groups: usize,
    /// Fraction of fleet queries offered on the prefetch lane.
    pub prefetch_rate: f64,
    /// Session arrival process.
    pub arrival: ArrivalShape,
    /// Fault-plan intensity in `[0, 1]`; zero serves calm.
    pub chaos_intensity: f64,
    /// Whether the storm also takes worker nodes down mid-run.
    pub node_loss: bool,
    /// Shared engine worker slots.
    pub workers: usize,
    /// Host threads used for fleet synthesis (output-invariant).
    pub threads: usize,
    /// Per-query latency budget, milliseconds.
    pub latency_budget_ms: u64,
    /// Sustained per-tenant admission rate, queries/second.
    pub tenant_rate: f64,
    /// Per-tenant burst allowance.
    pub tenant_burst: f64,
    /// Bounded-queue depth for the admission condition.
    pub queue_limit: usize,
    /// Shared buffer-pool size, pages.
    pub pool_pages: usize,
    /// Workload family for the single-session replay stage.
    pub shape: SessionShape,
    /// Input device driving the replay session's behavioral model.
    pub device: DeviceKind,
    /// Resilience budget for the replay stage, milliseconds; 0 replays
    /// rigidly (no degraded answers).
    pub resilience_budget_ms: u64,
    /// Closed-loop abandon threshold, milliseconds: a query group
    /// slower than this reads as a slow answer to the behavior model.
    pub abandon_ms: u64,
    /// Closed-loop session length, actions.
    pub adaptive_steps: usize,
    /// Differential table shape.
    pub table: TableSpec,
    /// Differential queries checked against the reference interpreter.
    pub queries: Vec<QuerySpec>,
}

/// splitmix64 — the standard seed spreader; used to derive per-scenario
/// seeds from a master seed without consuming the scenario's own RNG.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn gen_filter(r: &mut SimRng, key_mod: usize) -> FilterSpec {
    match r.uniform_usize(0, 6) {
        0 => FilterSpec::True,
        1 => {
            let lo = r.uniform(0.0, 80.0);
            FilterSpec::VBetween {
                lo,
                hi: lo + r.uniform(0.0, 40.0),
            }
        }
        2 => FilterSpec::KCmp {
            op: CmpToken::ALL[r.uniform_usize(0, CmpToken::ALL.len())],
            value: r.uniform_usize(0, key_mod * 2) as i64,
        },
        3 => FilterSpec::SEq {
            word: r.uniform_usize(0, VOCAB.len()),
        },
        4 => {
            let vlo = r.uniform(0.0, 70.0);
            let klo = r.uniform(0.0, key_mod as f64);
            FilterSpec::VkAnd {
                vlo,
                vhi: vlo + r.uniform(5.0, 50.0),
                klo,
                khi: klo + r.uniform(0.0, key_mod as f64),
            }
        }
        _ => {
            let lo = r.uniform(10.0, 60.0);
            FilterSpec::NotV {
                lo,
                hi: lo + r.uniform(0.0, 30.0),
            }
        }
    }
}

fn gen_query(r: &mut SimRng, table: &TableSpec) -> QuerySpec {
    match r.uniform_usize(0, 4) {
        0 => QuerySpec::Count {
            filter: gen_filter(r, table.key_mod),
        },
        1 => QuerySpec::Select {
            filter: gen_filter(r, table.key_mod),
            limit: r.uniform_usize(0, 24),
            offset: r.uniform_usize(0, table.rows + 4),
        },
        2 => {
            let lo = r.uniform(-10.0, 50.0);
            QuerySpec::Histogram {
                bins: r.uniform_usize(1, 24),
                lo,
                hi: lo + r.uniform(1.0, 80.0),
                filter: gen_filter(r, table.key_mod),
            }
        }
        _ => QuerySpec::Join {
            limit: r.uniform_usize(0, 24),
            offset: r.uniform_usize(0, table.rows + 4),
        },
    }
}

impl Scenario {
    /// Generates the scenario a seed denotes. Pure: the same seed always
    /// yields the same scenario, on any host and any thread count.
    pub fn generate(seed: u64) -> Scenario {
        let mut r = SimRng::seed(seed).split("simtest/scenario");
        let key_mod = r.uniform_usize(1, 9);
        let table = TableSpec {
            rows: r.uniform_usize(0, 65),
            key_mod,
            nan_every: [0, 0, 0, 1, 2, 3][r.uniform_usize(0, 6)],
            dim_rows: r.uniform_usize(0, 25),
        };
        let n_queries = r.uniform_usize(3, 9);
        let queries = (0..n_queries).map(|_| gen_query(&mut r, &table)).collect();
        let chaos_intensity = if r.chance(0.5) {
            r.uniform(0.2, 0.9)
        } else {
            0.0
        };
        Scenario {
            seed,
            sessions: r.uniform_usize(2, 9),
            tenants: r.uniform_usize(1, 4),
            rows: 200 + r.uniform_usize(0, 9) * 100,
            max_groups: r.uniform_usize(2, 7),
            prefetch_rate: r.uniform(0.0, 0.4),
            arrival: if r.chance(0.3) {
                ArrivalShape::Bursts {
                    count: 1 + r.uniform_usize(0, 3),
                    spacing_ms: 2_000 + r.uniform_usize(0, 4) as u64 * 1_000,
                    width_ms: 200 + r.uniform_usize(0, 8) as u64 * 100,
                }
            } else {
                ArrivalShape::Poisson {
                    gap_ms: 200 + r.uniform_usize(0, 9) as u64 * 100,
                }
            },
            chaos_intensity,
            node_loss: chaos_intensity > 0.0 && r.chance(0.5),
            workers: r.uniform_usize(1, 7),
            threads: [1, 2, 4, 8][r.uniform_usize(0, 4)],
            latency_budget_ms: 250 + r.uniform_usize(0, 8) as u64 * 250,
            tenant_rate: r.uniform(1.0, 8.0),
            tenant_burst: r.uniform(4.0, 40.0),
            queue_limit: r.uniform_usize(1, 17),
            pool_pages: 256 + r.uniform_usize(0, 4) * 128,
            shape: [
                SessionShape::Crossfilter,
                SessionShape::Scrolling,
                SessionShape::Composite,
                SessionShape::Adaptive,
                SessionShape::Mined,
            ][r.uniform_usize(0, 5)],
            device: DeviceKind::ALL[r.uniform_usize(0, DeviceKind::ALL.len())],
            resilience_budget_ms: if r.chance(0.5) {
                20 + r.uniform_usize(0, 10) as u64 * 20
            } else {
                0
            },
            abandon_ms: 100 + r.uniform_usize(0, 8) as u64 * 100,
            adaptive_steps: r.uniform_usize(6, 21),
            table,
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
    }

    #[test]
    fn generation_covers_the_grammar() {
        let mut shapes = std::collections::BTreeSet::new();
        let mut stormy = 0;
        let mut empty_tables = 0;
        for seed in 0..200u64 {
            let s = Scenario::generate(derive_seed(7, seed));
            assert!(s.tenants >= 1 && s.workers >= 1 && s.table.key_mod >= 1);
            assert!(!s.queries.is_empty());
            shapes.insert(s.shape.token());
            if s.chaos_intensity > 0.0 {
                stormy += 1;
            }
            if s.table.rows == 0 {
                empty_tables += 1;
            }
        }
        assert_eq!(shapes.len(), 5, "all session shapes reachable");
        assert!(stormy > 20, "storms reachable");
        assert!(empty_tables > 0, "empty differential tables reachable");
    }

    #[test]
    fn derive_seed_spreads() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }
}
