//! Hand-rolled TOML dialect for [`Scenario`] repro files.
//!
//! The workspace vendors no TOML crate, so scenarios serialize through
//! a small writer/reader pair covering exactly the subset the grammar
//! needs: `[section]` tables, `[[query]]` arrays, and `key = value`
//! lines holding integers, floats (written with `{:?}` so they
//! round-trip bit-exactly), booleans, and quoted strings. `#` comments
//! and blank lines are ignored, which lets corpus files carry their
//! provenance inline.

use ids_devices::DeviceKind;

use crate::scenario::{
    ArrivalShape, CmpToken, FilterSpec, QuerySpec, Scenario, SessionShape, TableSpec, VOCAB,
};

/// Serializes a scenario to the repro dialect.
pub fn to_toml(s: &Scenario) -> String {
    let mut out = String::from("# ids-simtest scenario v1\n[scenario]\n");
    let mut kv = |k: &str, v: String| {
        out.push_str(k);
        out.push_str(" = ");
        out.push_str(&v);
        out.push('\n');
    };
    kv("seed", s.seed.to_string());
    kv("sessions", s.sessions.to_string());
    kv("tenants", s.tenants.to_string());
    kv("rows", s.rows.to_string());
    kv("max_groups", s.max_groups.to_string());
    kv("prefetch_rate", format!("{:?}", s.prefetch_rate));
    kv("chaos_intensity", format!("{:?}", s.chaos_intensity));
    kv("node_loss", s.node_loss.to_string());
    kv("workers", s.workers.to_string());
    kv("threads", s.threads.to_string());
    kv("latency_budget_ms", s.latency_budget_ms.to_string());
    kv("tenant_rate", format!("{:?}", s.tenant_rate));
    kv("tenant_burst", format!("{:?}", s.tenant_burst));
    kv("queue_limit", s.queue_limit.to_string());
    kv("pool_pages", s.pool_pages.to_string());
    kv("shape", format!("{:?}", s.shape.token()));
    kv("device", format!("{:?}", s.device.label()));
    kv("resilience_budget_ms", s.resilience_budget_ms.to_string());
    kv("abandon_ms", s.abandon_ms.to_string());
    kv("adaptive_steps", s.adaptive_steps.to_string());

    out.push_str("\n[arrival]\n");
    match s.arrival {
        ArrivalShape::Poisson { gap_ms } => {
            out.push_str("kind = \"poisson\"\n");
            out.push_str(&format!("gap_ms = {gap_ms}\n"));
        }
        ArrivalShape::Bursts {
            count,
            spacing_ms,
            width_ms,
        } => {
            out.push_str("kind = \"bursts\"\n");
            out.push_str(&format!("count = {count}\n"));
            out.push_str(&format!("spacing_ms = {spacing_ms}\n"));
            out.push_str(&format!("width_ms = {width_ms}\n"));
        }
    }

    out.push_str(&format!(
        "\n[table]\nrows = {}\nkey_mod = {}\nnan_every = {}\ndim_rows = {}\n",
        s.table.rows, s.table.key_mod, s.table.nan_every, s.table.dim_rows
    ));

    for q in &s.queries {
        out.push_str("\n[[query]]\n");
        match *q {
            QuerySpec::Count { filter } => {
                out.push_str("kind = \"count\"\n");
                push_filter(&mut out, &filter);
            }
            QuerySpec::Select {
                filter,
                limit,
                offset,
            } => {
                out.push_str("kind = \"select\"\n");
                out.push_str(&format!("limit = {limit}\noffset = {offset}\n"));
                push_filter(&mut out, &filter);
            }
            QuerySpec::Histogram {
                bins,
                lo,
                hi,
                filter,
            } => {
                out.push_str("kind = \"histogram\"\n");
                out.push_str(&format!(
                    "bins = {bins}\nhist_lo = {lo:?}\nhist_hi = {hi:?}\n"
                ));
                push_filter(&mut out, &filter);
            }
            QuerySpec::Join { limit, offset } => {
                out.push_str("kind = \"join\"\n");
                out.push_str(&format!("limit = {limit}\noffset = {offset}\n"));
            }
        }
    }
    out
}

fn push_filter(out: &mut String, f: &FilterSpec) {
    match *f {
        FilterSpec::True => out.push_str("filter = \"true\"\n"),
        FilterSpec::VBetween { lo, hi } => {
            out.push_str(&format!(
                "filter = \"v_between\"\nlo = {lo:?}\nhi = {hi:?}\n"
            ));
        }
        FilterSpec::KCmp { op, value } => {
            out.push_str(&format!(
                "filter = \"k_cmp\"\nop = {:?}\nvalue = {value}\n",
                op.token()
            ));
        }
        FilterSpec::SEq { word } => {
            out.push_str(&format!("filter = \"s_eq\"\nword = {word}\n"));
        }
        FilterSpec::VkAnd { vlo, vhi, klo, khi } => {
            out.push_str(&format!(
                "filter = \"vk_and\"\nvlo = {vlo:?}\nvhi = {vhi:?}\nklo = {klo:?}\nkhi = {khi:?}\n"
            ));
        }
        FilterSpec::NotV { lo, hi } => {
            out.push_str(&format!("filter = \"not_v\"\nlo = {lo:?}\nhi = {hi:?}\n"));
        }
    }
}

/// One parsed `key = value` map (a `[section]` or one `[[query]]`).
#[derive(Debug, Default, Clone)]
struct Section {
    pairs: Vec<(String, String)>,
}

impl Section {
    fn raw(&self, key: &str) -> Result<&str, String> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing key `{key}`"))
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        self.raw(key)?
            .parse()
            .map_err(|e| format!("key `{key}`: {e}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.raw(key)?
            .parse()
            .map_err(|e| format!("key `{key}`: {e}"))
    }

    /// Like [`Section::u64`] but falls back to `default` when the key is
    /// absent, so corpus files written before the key existed still parse.
    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.raw(key) {
            Ok(_) => self.u64(key),
            Err(_) => Ok(default),
        }
    }

    /// Like [`Section::usize`] but with a default for absent keys.
    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.raw(key) {
            Ok(_) => self.usize(key),
            Err(_) => Ok(default),
        }
    }

    fn i64(&self, key: &str) -> Result<i64, String> {
        self.raw(key)?
            .parse()
            .map_err(|e| format!("key `{key}`: {e}"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.raw(key)?
            .parse()
            .map_err(|e| format!("key `{key}`: {e}"))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        self.raw(key)?
            .parse()
            .map_err(|e| format!("key `{key}`: {e}"))
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        let raw = self.raw(key)?;
        raw.strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .ok_or_else(|| format!("key `{key}`: expected quoted string, got `{raw}`"))
    }
}

/// Named `[section]`s in file order plus the `[[query]]` array.
type Sections = (Vec<(String, Section)>, Vec<Section>);

fn parse_sections(text: &str) -> Result<Sections, String> {
    let mut named: Vec<(String, Section)> = Vec::new();
    let mut queries: Vec<Section> = Vec::new();
    // Index into `named` or `queries` the current lines belong to.
    let mut current: Option<(bool, usize)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[query]]" {
            queries.push(Section::default());
            current = Some((true, queries.len() - 1));
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            named.push((name.to_string(), Section::default()));
            current = Some((false, named.len() - 1));
        } else if let Some((key, value)) = line.split_once('=') {
            let (is_query, idx) =
                current.ok_or_else(|| format!("line {}: key before any section", lineno + 1))?;
            let pair = (key.trim().to_string(), value.trim().to_string());
            if is_query {
                queries[idx].pairs.push(pair);
            } else {
                named[idx].1.pairs.push(pair);
            }
        } else {
            return Err(format!("line {}: unparseable `{line}`", lineno + 1));
        }
    }
    Ok((named, queries))
}

fn parse_filter(sec: &Section) -> Result<FilterSpec, String> {
    Ok(match sec.str("filter")? {
        "true" => FilterSpec::True,
        "v_between" => FilterSpec::VBetween {
            lo: sec.f64("lo")?,
            hi: sec.f64("hi")?,
        },
        "k_cmp" => {
            let tok = sec.str("op")?;
            let op = [
                CmpToken::Eq,
                CmpToken::Ne,
                CmpToken::Lt,
                CmpToken::Le,
                CmpToken::Gt,
                CmpToken::Ge,
            ]
            .into_iter()
            .find(|c| c.token() == tok)
            .ok_or_else(|| format!("unknown cmp op `{tok}`"))?;
            FilterSpec::KCmp {
                op,
                value: sec.i64("value")?,
            }
        }
        "s_eq" => FilterSpec::SEq {
            word: sec.usize("word")? % VOCAB.len(),
        },
        "vk_and" => FilterSpec::VkAnd {
            vlo: sec.f64("vlo")?,
            vhi: sec.f64("vhi")?,
            klo: sec.f64("klo")?,
            khi: sec.f64("khi")?,
        },
        "not_v" => FilterSpec::NotV {
            lo: sec.f64("lo")?,
            hi: sec.f64("hi")?,
        },
        other => return Err(format!("unknown filter kind `{other}`")),
    })
}

/// Parses the repro dialect back into a scenario.
pub fn from_toml(text: &str) -> Result<Scenario, String> {
    let (named, query_secs) = parse_sections(text)?;
    let find = |name: &str| -> Result<&Section, String> {
        named
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| format!("missing [{name}] section"))
    };
    let sc = find("scenario")?;
    let arrival_sec = find("arrival")?;
    let table_sec = find("table")?;

    let arrival = match arrival_sec.str("kind")? {
        "poisson" => ArrivalShape::Poisson {
            gap_ms: arrival_sec.u64("gap_ms")?,
        },
        "bursts" => ArrivalShape::Bursts {
            count: arrival_sec.usize("count")?,
            spacing_ms: arrival_sec.u64("spacing_ms")?,
            width_ms: arrival_sec.u64("width_ms")?,
        },
        other => return Err(format!("unknown arrival kind `{other}`")),
    };

    let shape_tok = sc.str("shape")?;
    let shape = [
        SessionShape::Crossfilter,
        SessionShape::Scrolling,
        SessionShape::Composite,
        SessionShape::Adaptive,
        SessionShape::Mined,
    ]
    .into_iter()
    .find(|s| s.token() == shape_tok)
    .ok_or_else(|| format!("unknown session shape `{shape_tok}`"))?;

    let device_tok = sc.str("device")?;
    let device = DeviceKind::ALL
        .into_iter()
        .find(|d| d.label() == device_tok)
        .ok_or_else(|| format!("unknown device `{device_tok}`"))?;

    let mut queries = Vec::with_capacity(query_secs.len());
    for sec in &query_secs {
        queries.push(match sec.str("kind")? {
            "count" => QuerySpec::Count {
                filter: parse_filter(sec)?,
            },
            "select" => QuerySpec::Select {
                filter: parse_filter(sec)?,
                limit: sec.usize("limit")?,
                offset: sec.usize("offset")?,
            },
            "histogram" => QuerySpec::Histogram {
                bins: sec.usize("bins")?.max(1),
                lo: sec.f64("hist_lo")?,
                hi: sec.f64("hist_hi")?,
                filter: parse_filter(sec)?,
            },
            "join" => QuerySpec::Join {
                limit: sec.usize("limit")?,
                offset: sec.usize("offset")?,
            },
            other => return Err(format!("unknown query kind `{other}`")),
        });
    }
    if queries.is_empty() {
        return Err("scenario has no [[query]] entries".into());
    }

    Ok(Scenario {
        seed: sc.u64("seed")?,
        sessions: sc.usize("sessions")?,
        tenants: sc.usize("tenants")?.max(1),
        rows: sc.usize("rows")?,
        max_groups: sc.usize("max_groups")?,
        prefetch_rate: sc.f64("prefetch_rate")?,
        arrival,
        chaos_intensity: sc.f64("chaos_intensity")?,
        node_loss: sc.bool("node_loss")?,
        workers: sc.usize("workers")?.max(1),
        threads: sc.usize("threads")?.max(1),
        latency_budget_ms: sc.u64("latency_budget_ms")?,
        tenant_rate: sc.f64("tenant_rate")?,
        tenant_burst: sc.f64("tenant_burst")?,
        queue_limit: sc.usize("queue_limit")?,
        pool_pages: sc.usize("pool_pages")?.max(1),
        shape,
        device,
        resilience_budget_ms: sc.u64("resilience_budget_ms")?,
        abandon_ms: sc.u64_or("abandon_ms", 400)?,
        adaptive_steps: sc.usize_or("adaptive_steps", 12)?.max(1),
        table: TableSpec {
            rows: table_sec.usize("rows")?,
            key_mod: table_sec.usize("key_mod")?.max(1),
            nan_every: table_sec.usize("nan_every")?,
            dim_rows: table_sec.usize("dim_rows")?,
        },
        queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::derive_seed;

    #[test]
    fn round_trip_is_identity() {
        for i in 0..50u64 {
            let s = Scenario::generate(derive_seed(11, i));
            let text = to_toml(&s);
            let back = from_toml(&text).expect("round trip parses");
            assert_eq!(s, back, "round trip for scenario {i}\n{text}");
            // Serialization itself is stable too.
            assert_eq!(text, to_toml(&back));
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let s = Scenario::generate(3);
        let mut text = String::from("# repro found 2026-01-01\n\n");
        text.push_str(&to_toml(&s));
        text.push_str("\n# trailing note\n");
        assert_eq!(from_toml(&text).unwrap(), s);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(from_toml("garbage").unwrap_err().contains("line 1"));
        assert!(from_toml("[scenario]\nseed = 1\n")
            .unwrap_err()
            .contains("missing"));
    }
}
