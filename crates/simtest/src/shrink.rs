//! Greedy scenario shrinking: smaller repro, same failure.
//!
//! On an oracle failure the shrinker walks a fixed list of
//! simplifications — fewer differential queries, smaller tables, fewer
//! sessions, calmer fault plans, narrower traces — and keeps a mutation
//! only if the *same named oracle* still fails on the mutated scenario
//! (the caller encodes that in its predicate). The walk restarts from
//! the head of the list after every accepted mutation and stops at a
//! fixpoint or the check budget, whichever comes first. Every mutation
//! strictly simplifies one dimension, so termination is structural, and
//! the fixed order makes the minimized scenario a deterministic
//! function of the original — the same failure always checks in the
//! same repro file.

use crate::scenario::{ArrivalShape, Scenario};

/// Ceiling on predicate evaluations per shrink (each one is a full
/// scenario check, so this bounds shrink cost).
pub const MAX_SHRINK_CHECKS: usize = 200;

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized scenario (== the original if nothing shrank).
    pub scenario: Scenario,
    /// Predicate evaluations spent.
    pub checks: usize,
}

/// Candidate simplifications of `s`, in fixed priority order. Only
/// genuinely different scenarios are yielded.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = Vec::new();
    let mut push = |cand: Scenario| {
        if &cand != s {
            out.push(cand);
        }
    };

    // Fewer differential queries first: halves, then single drops.
    if s.queries.len() > 1 {
        let half = s.queries.len() / 2;
        let mut first = s.clone();
        first.queries.truncate(half.max(1));
        push(first);
        let mut second = s.clone();
        second.queries.drain(..half);
        push(second);
        for i in 0..s.queries.len() {
            let mut one_less = s.clone();
            one_less.queries.remove(i);
            push(one_less);
        }
    }

    // Smaller differential tables.
    for rows in [0, s.table.rows / 2] {
        let mut t = s.clone();
        t.table.rows = rows;
        push(t);
    }
    for dim_rows in [0, s.table.dim_rows / 2] {
        let mut t = s.clone();
        t.table.dim_rows = dim_rows;
        push(t);
    }
    let mut no_nan = s.clone();
    no_nan.table.nan_every = 0;
    push(no_nan);
    let mut one_key = s.clone();
    one_key.table.key_mod = 1;
    push(one_key);

    // Calmer fault plan.
    let mut calm = s.clone();
    calm.chaos_intensity = 0.0;
    calm.node_loss = false;
    push(calm);
    let mut keep_storm = s.clone();
    keep_storm.node_loss = false;
    push(keep_storm);

    // Narrower trace / smaller fleet.
    for sessions in [1, s.sessions / 2] {
        let mut f = s.clone();
        f.sessions = sessions.max(1);
        push(f);
    }
    let mut one_tenant = s.clone();
    one_tenant.tenants = 1;
    push(one_tenant);
    for groups in [1, s.max_groups / 2] {
        let mut g = s.clone();
        g.max_groups = groups.max(1);
        push(g);
    }
    for rows in [100, s.rows / 2] {
        // Only strictly smaller fleets: proposing the fixed floor when
        // already at or below it would oscillate and burn the budget.
        let rows = rows.max(50);
        if rows < s.rows {
            let mut r = s.clone();
            r.rows = rows;
            push(r);
        }
    }
    let mut steady = s.clone();
    steady.arrival = ArrivalShape::Poisson { gap_ms: 500 };
    push(steady);
    let mut no_prefetch = s.clone();
    no_prefetch.prefetch_rate = 0.0;
    push(no_prefetch);

    // Simpler machine.
    let mut one_worker = s.clone();
    one_worker.workers = 1;
    push(one_worker);
    let mut one_thread = s.clone();
    one_thread.threads = 1;
    push(one_thread);
    let mut rigid = s.clone();
    rigid.resilience_budget_ms = 0;
    push(rigid);

    out
}

/// Minimizes `original` under `still_fails` (true ⇔ the mutated
/// scenario reproduces the original failure).
///
/// The predicate is *not* called on `original` — the caller has already
/// established that it fails.
pub fn shrink(
    original: &Scenario,
    still_fails: &mut dyn FnMut(&Scenario) -> bool,
) -> ShrinkOutcome {
    let mut best = original.clone();
    let mut checks = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            if checks >= MAX_SHRINK_CHECKS {
                break 'outer;
            }
            checks += 1;
            if still_fails(&cand) {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkOutcome {
        scenario: best,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::derive_seed;

    /// A synthetic failure that only depends on chaos being on: the
    /// shrinker must strip everything else to its floor.
    #[test]
    fn shrinks_everything_irrelevant_to_the_failure() {
        let mut original = Scenario::generate(derive_seed(51, 4));
        original.chaos_intensity = 0.7;
        let out = shrink(&original, &mut |s: &Scenario| s.chaos_intensity > 0.0);
        let min = &out.scenario;
        assert!(min.chaos_intensity > 0.0, "failure condition preserved");
        assert_eq!(min.queries.len(), 1);
        assert_eq!(min.table.rows, 0);
        assert_eq!(min.table.dim_rows, 0);
        assert_eq!(min.sessions, 1);
        assert_eq!(min.tenants, 1);
        assert_eq!(min.workers, 1);
        assert_eq!(min.threads, 1);
        assert!(out.checks <= MAX_SHRINK_CHECKS);
    }

    /// Shrinking a failure that depends on a specific query keeps that
    /// query alive.
    #[test]
    fn preserves_the_failing_query() {
        let original = Scenario::generate(derive_seed(51, 7));
        let needle = *original.queries.last().expect("generated queries");
        let out = shrink(&original, &mut |s: &Scenario| s.queries.contains(&needle));
        assert!(out.scenario.queries.contains(&needle));
        assert_eq!(out.scenario.queries.len(), 1, "only the needle survives");
    }

    /// Same original + same predicate ⇒ same minimized scenario.
    #[test]
    fn shrinking_is_deterministic() {
        let original = Scenario::generate(derive_seed(51, 9));
        let mut p1 = |s: &Scenario| !s.queries.is_empty();
        let mut p2 = |s: &Scenario| !s.queries.is_empty();
        assert_eq!(
            shrink(&original, &mut p1).scenario,
            shrink(&original, &mut p2).scenario
        );
    }

    /// A predicate that rejects every mutation leaves the original.
    #[test]
    fn unshrinkable_failures_return_the_original() {
        let original = Scenario::generate(derive_seed(51, 11));
        let out = shrink(&original, &mut |_: &Scenario| false);
        assert_eq!(out.scenario, original);
    }
}
