//! # ids-simtest — deterministic simulation testing
//!
//! FoundationDB-style simulation testing for the whole repository: one
//! seed expands into a full end-to-end scenario — dataset shapes, a
//! crossfilter/scrolling/composite session trace on a device profile, a
//! fault plan, resilience and admission policies, and a synthesis
//! thread count — which runs through the real `engine`/`serve` pipeline
//! on the virtual clock and is judged by a library of invariant
//! oracles:
//!
//! - **replay-determinism** — the same seed produces a byte-identical
//!   run digest, twice;
//! - **thread-invariance** — the digest is identical across 1/2/4/8
//!   synthesis threads;
//! - **admission-conservation** — `admitted + shed == offered`;
//! - **no-wedge** — every queue drains at a finite virtual instant,
//!   even under node loss;
//! - **lcv-monotonicity** — loosening the latency budget never raises
//!   the violation count;
//! - **qif-conservation** — QIF windowing loses no timestamps;
//! - **differential** — `engine::exec` agrees exactly with a naive
//!   row-at-a-time reference interpreter on scan/filter/histogram/join;
//! - **partial-bounds** — `Partial` answers carry legal fractions and
//!   stay within the degradation round-trip's stated error bounds,
//!   `Exact` answers match a plain re-execution, `Failed` answers are
//!   empty placeholders;
//! - **obs-stability** — exported traces and metrics are byte-stable
//!   across identical runs;
//! - **lakehouse-determinism** — telemetry tables fold byte-identically
//!   and the vectorized p99-by-tenant kernel matches its reference;
//! - **progressive-anytime** — online aggregation ends exact, brackets
//!   the truth at the configured coverage, and never widens its bound;
//! - **shard-invariance** — scatter-gather over 1/4/16 partitions merges
//!   to the reference answer with byte-stable costs;
//! - **planner-equivalence** — planned execution equals the unplanned
//!   kernel path bit-for-bit, with replay- and thread-stable plan text;
//! - **adaptive-determinism** — the closed feedback loop (behavior model
//!   reacting to answers, admission shedding, deadline-bounded partials)
//!   replays byte-identically and is invariant to gather threads and
//!   shard count, including the interface mined from its own trace.
//!
//! On failure, [`shrink`] minimizes the scenario while preserving the
//! failing oracle, and the result serializes to a self-contained TOML
//! repro (see [`toml`]) suitable for check-in under `tests/corpus/`.
//!
//! The `simtest` binary in `ids-bench` drives [`explore`] with the
//! `IDS_SIMTEST_SCENARIOS`, `IDS_SIMTEST_SEED`, and
//! `IDS_SIMTEST_TIME_BUDGET` environment knobs.

#![warn(missing_docs)]

pub mod oracle;
pub mod pipeline;
pub mod reference;
pub mod scenario;
pub mod shrink;
pub mod toml;

pub use oracle::{check_scenario, gate, OracleReport, Verdict};
pub use pipeline::{adaptive_run, behavior_config, closed_loop_params, run_pipeline, RunArtifacts};
pub use reference::{differential_check, reference_execute};
pub use scenario::{derive_seed, QuerySpec, Scenario, SessionShape, TableSpec};
pub use shrink::{shrink, ShrinkOutcome};
pub use toml::{from_toml, to_toml};

use std::time::Instant;

/// One minimized failure found during exploration.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the scenario in the exploration sequence.
    pub index: usize,
    /// The scenario's seed (derive of the master seed and index).
    pub seed: u64,
    /// Name of the oracle that failed.
    pub oracle: String,
    /// Failure detail from the original (unshrunk) scenario.
    pub detail: String,
    /// The minimized scenario.
    pub minimized: Scenario,
    /// Self-contained repro file contents, ready for `tests/corpus/`.
    pub repro_toml: String,
}

/// Outcome of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Master seed the run derives everything from.
    pub master_seed: u64,
    /// Scenarios requested.
    pub requested: usize,
    /// Scenarios actually checked (fewer if the time budget expired).
    pub completed: usize,
    /// One line per checked scenario, in order.
    pub lines: Vec<String>,
    /// Minimized failures, in discovery order.
    pub failures: Vec<Failure>,
}

impl ExploreReport {
    /// `true` when every checked scenario passed every oracle.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the per-scenario verdict lines plus a footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!(
            "simtest: {}/{} scenarios checked, {} failure(s) (master seed {:#x})\n",
            self.completed,
            self.requested,
            self.failures.len(),
            self.master_seed
        ));
        out
    }
}

/// Builds the repro file for a minimized failure.
fn repro_file(
    master_seed: u64,
    index: usize,
    oracle: &str,
    detail: &str,
    min: &Scenario,
) -> String {
    let mut out = String::new();
    out.push_str("# ids-simtest minimized repro\n");
    out.push_str(&format!(
        "# found exploring master seed {master_seed:#x}, scenario index {index}\n"
    ));
    out.push_str(&format!("# oracle: {oracle}\n"));
    if let Some(first) = detail.lines().next() {
        if !first.is_empty() {
            out.push_str(&format!("# detail: {first}\n"));
        }
    }
    out.push_str(&to_toml(min));
    out
}

/// Explores `count` generated scenarios from `master_seed`, checking
/// every oracle on each and shrinking any failure to a minimized repro.
///
/// With `deadline: None` the run is a pure function of
/// `(master_seed, count)` — byte-identical lines, verdicts, and repro
/// files on every host. A deadline stops cleanly between scenarios
/// (never mid-check), so a time-boxed run is a prefix of the unlimited
/// one.
pub fn explore(master_seed: u64, count: usize, deadline: Option<Instant>) -> ExploreReport {
    let _g = gate();
    let mut report = ExploreReport {
        master_seed,
        requested: count,
        completed: 0,
        lines: Vec::new(),
        failures: Vec::new(),
    };
    for index in 0..count {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                report
                    .lines
                    .push(format!("scenario {index}: time budget expired, stopping"));
                break;
            }
        }
        let seed = derive_seed(master_seed, index as u64);
        let scenario = Scenario::generate(seed);
        let verdict = oracle::check_scenario_unlocked(&scenario);
        report.completed += 1;
        match verdict.first_failure() {
            None => {
                report.lines.push(format!(
                    "scenario {index} seed {seed:#018x}: {}",
                    verdict.summary()
                ));
            }
            Some(f) => {
                let oracle_name = f.name;
                let detail = f.detail.clone();
                report.lines.push(format!(
                    "scenario {index} seed {seed:#018x}: {}",
                    verdict.summary()
                ));
                let outcome = shrink(&scenario, &mut |cand: &Scenario| {
                    oracle::check_scenario_unlocked(cand)
                        .first_failure()
                        .map(|g| g.name)
                        == Some(oracle_name)
                });
                report.lines.push(format!(
                    "scenario {index}: shrunk in {} checks to {} queries / {} fact rows",
                    outcome.checks,
                    outcome.scenario.queries.len(),
                    outcome.scenario.table.rows
                ));
                report.failures.push(Failure {
                    index,
                    seed,
                    oracle: oracle_name.to_string(),
                    detail: detail.clone(),
                    minimized: outcome.scenario.clone(),
                    repro_toml: repro_file(
                        master_seed,
                        index,
                        oracle_name,
                        &detail,
                        &outcome.scenario,
                    ),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_is_deterministic_and_clean_on_the_default_seed() {
        let a = explore(0x1d5, 2, None);
        let b = explore(0x1d5, 2, None);
        assert_eq!(a.render(), b.render(), "exploration must be byte-stable");
        assert!(a.all_passed(), "{}", a.render());
        assert_eq!(a.completed, 2);
    }

    #[test]
    fn repro_files_round_trip() {
        let s = Scenario::generate(derive_seed(3, 3));
        let text = repro_file(3, 3, "differential", "engine != reference", &s);
        assert!(text.starts_with("# ids-simtest minimized repro"));
        assert_eq!(from_toml(&text).unwrap(), s);
    }
}
