//! The differential oracle's reference interpreter.
//!
//! A deliberately naive row-at-a-time evaluator for the scenario
//! grammar's scan/filter/histogram/join queries, computed straight off
//! plain `Vec`s — no columnar layout, no fast paths, no pagination
//! tricks. It shares *semantics* with `engine::exec` (same pagination
//! windows, same `ROUND` binning, same NaN comparison rules) but no
//! code, so a divergence between the two is a genuine engine bug rather
//! than a shared one.

use std::sync::Arc;

use ids_engine::{
    Backend, ColumnBuilder, EngineError, MemBackend, ResultSet, Table, TableBuilder, Value,
};
use ids_simclock::rng::SimRng;

use crate::scenario::{FilterSpec, QuerySpec, TableSpec, VOCAB};

/// The raw data behind the differential tables, kept as plain vectors
/// so the reference interpreter never touches engine storage.
#[derive(Debug, Clone)]
pub struct RawTables {
    /// Fact-table integer key (`i % key_mod`).
    pub k: Vec<i64>,
    /// Fact-table float measure; may contain NaN (the all-null stand-in).
    pub v: Vec<f64>,
    /// Fact-table category, cycling through [`VOCAB`].
    pub s: Vec<&'static str>,
    /// Dim-table join key, drawn from `[0, 2·key_mod)`.
    pub dk: Vec<i64>,
    /// Dim-table float payload.
    pub w: Vec<f64>,
}

/// Generates the raw differential data for `(seed, spec)`.
pub fn raw_tables(seed: u64, spec: &TableSpec) -> RawTables {
    let mut fact_rng = SimRng::seed(seed).split("simtest/table/fact");
    let mut dim_rng = SimRng::seed(seed).split("simtest/table/dim");
    let key_mod = spec.key_mod.max(1);
    let mut raw = RawTables {
        k: Vec::with_capacity(spec.rows),
        v: Vec::with_capacity(spec.rows),
        s: Vec::with_capacity(spec.rows),
        dk: Vec::with_capacity(spec.dim_rows),
        w: Vec::with_capacity(spec.dim_rows),
    };
    for i in 0..spec.rows {
        raw.k.push((i % key_mod) as i64);
        let x = fact_rng.uniform(0.0, 100.0);
        raw.v
            .push(if spec.nan_every > 0 && i % spec.nan_every == 0 {
                f64::NAN
            } else {
                x
            });
        raw.s.push(VOCAB[i % VOCAB.len()]);
    }
    for _ in 0..spec.dim_rows {
        raw.dk.push(dim_rng.uniform_usize(0, key_mod * 2) as i64);
        raw.w.push(dim_rng.uniform(0.0, 10.0));
    }
    raw
}

/// Materializes the engine-side `fact` and `dim` tables from the raw
/// data (identical values, columnar layout).
pub fn build_tables(raw: &RawTables) -> (Table, Table) {
    let mut k = ColumnBuilder::int([]);
    let mut v = ColumnBuilder::float([]);
    let mut s = ColumnBuilder::str(Vec::<&str>::new());
    for i in 0..raw.k.len() {
        k.push_int(raw.k[i]);
        v.push_float(raw.v[i]);
        s.push_str(raw.s[i]);
    }
    let fact = TableBuilder::new("fact")
        .column("k", k)
        .column("v", v)
        .column("s", s)
        .build()
        .expect("fact schema is static");
    let mut dk = ColumnBuilder::int([]);
    let mut w = ColumnBuilder::float([]);
    for i in 0..raw.dk.len() {
        dk.push_int(raw.dk[i]);
        w.push_float(raw.w[i]);
    }
    let dim = TableBuilder::new("dim")
        .column("dk", dk)
        .column("w", w)
        .build()
        .expect("dim schema is static");
    (fact, dim)
}

/// A `MemBackend` with the differential tables registered — the engine
/// side of the comparison.
pub fn diff_backend(raw: &RawTables) -> MemBackend {
    let backend = MemBackend::new();
    let (fact, dim) = build_tables(raw);
    let db = backend.database();
    db.register(fact);
    db.register(dim);
    backend
}

/// Row-at-a-time filter evaluation on the raw fact data, mirroring
/// `Predicate::matches` (NaN fails every ordered comparison and range).
fn eval_filter(f: &FilterSpec, k: i64, v: f64, s: &str) -> bool {
    match *f {
        FilterSpec::True => true,
        FilterSpec::VBetween { lo, hi } => v >= lo && v <= hi,
        FilterSpec::KCmp { op, value } => {
            let (a, b) = (k as f64, value as f64);
            match op.op() {
                ids_engine::CmpOp::Eq => a == b,
                ids_engine::CmpOp::Ne => a != b,
                ids_engine::CmpOp::Lt => a < b,
                ids_engine::CmpOp::Le => a <= b,
                ids_engine::CmpOp::Gt => a > b,
                ids_engine::CmpOp::Ge => a >= b,
            }
        }
        FilterSpec::SEq { word } => s == VOCAB[word % VOCAB.len()],
        FilterSpec::VkAnd { vlo, vhi, klo, khi } => {
            let kf = k as f64;
            v >= vlo && v <= vhi && kf >= klo && kf <= khi
        }
        FilterSpec::NotV { lo, hi } => !(v >= lo && v <= hi),
    }
}

fn fact_row(raw: &RawTables, i: usize) -> Vec<Value> {
    vec![
        Value::Int(raw.k[i]),
        Value::Float(raw.v[i]),
        Value::Str(Arc::from(raw.s[i])),
    ]
}

/// Applies the engine's pagination rule: `end = min(offset + limit, n)`
/// (or `n` without a limit), window `offset.min(end)..end`.
fn page(n: usize, limit: usize, offset: usize) -> std::ops::Range<usize> {
    let end = if limit == 0 {
        n
    } else {
        (offset + limit).min(n)
    };
    offset.min(end)..end
}

/// Recomputes a differential query's exact answer row-at-a-time.
///
/// Returns `Err` exactly when the engine rejects the query (the only
/// reachable case in the grammar is a non-positive histogram bin
/// width), so error behavior is differential-tested too.
pub fn reference_execute(raw: &RawTables, spec: &QuerySpec) -> Result<ResultSet, String> {
    match *spec {
        QuerySpec::Count { filter } => {
            let n = (0..raw.k.len())
                .filter(|&i| eval_filter(&filter, raw.k[i], raw.v[i], raw.s[i]))
                .count();
            Ok(ResultSet::Count(n as u64))
        }
        QuerySpec::Select {
            filter,
            limit,
            offset,
        } => {
            let matching: Vec<usize> = (0..raw.k.len())
                .filter(|&i| eval_filter(&filter, raw.k[i], raw.v[i], raw.s[i]))
                .collect();
            let rows = matching[page(matching.len(), limit, offset)]
                .iter()
                .map(|&i| fact_row(raw, i))
                .collect();
            Ok(ResultSet::Rows(rows))
        }
        QuerySpec::Histogram {
            bins,
            lo,
            hi,
            filter,
        } => {
            let width = (hi - lo) / bins.max(1) as f64;
            if bins == 0 || width <= 0.0 || width.is_nan() {
                return Err("invalid bin spec".into());
            }
            let mut counts = vec![0u64; bins + 1];
            for i in 0..raw.k.len() {
                if !eval_filter(&filter, raw.k[i], raw.v[i], raw.s[i]) {
                    continue;
                }
                let x = raw.v[i];
                if x.is_nan() || x < lo || x > hi {
                    continue;
                }
                let bin = (((x - lo) / width).round() as usize).min(bins);
                counts[bin] += 1;
            }
            Ok(ResultSet::Histogram(ids_engine::Histogram::from_counts(
                counts,
            )))
        }
        QuerySpec::Join { limit, offset } => {
            let mut rows = Vec::new();
            for l in page(raw.k.len(), limit, offset) {
                for r in 0..raw.dk.len() {
                    if raw.dk[r] == raw.k[l] {
                        let mut row = fact_row(raw, l);
                        row.push(Value::Int(raw.dk[r]));
                        row.push(Value::Float(raw.w[r]));
                        rows.push(row);
                    }
                }
            }
            Ok(ResultSet::Rows(rows))
        }
    }
}

/// Runs every differential query of a scenario through both the engine
/// and the reference interpreter and demands exact agreement (including
/// error agreement). Returns the first divergence, described.
pub fn differential_check(
    seed: u64,
    table: &TableSpec,
    queries: &[QuerySpec],
) -> Result<(), String> {
    let raw = raw_tables(seed, table);
    let backend = diff_backend(&raw);
    for (i, spec) in queries.iter().enumerate() {
        let engine = backend.execute(&spec.query()).map(|o| o.result);
        let reference = reference_execute(&raw, spec);
        match (&engine, &reference) {
            (Ok(e), Ok(r)) => {
                if e != r {
                    return Err(format!(
                        "query {i} {spec:?}: engine {e:?} != reference {r:?}"
                    ));
                }
            }
            (Err(e), Err(_)) => {
                // Both reject: the grammar only reaches bin-spec errors.
                if !matches!(e, EngineError::InvalidBinSpec(_)) {
                    return Err(format!(
                        "query {i} {spec:?}: engine rejected with unexpected {e}"
                    ));
                }
            }
            (Ok(e), Err(r)) => {
                return Err(format!(
                    "query {i} {spec:?}: engine accepted ({e:?}) but reference rejected ({r})"
                ));
            }
            (Err(e), Ok(_)) => {
                return Err(format!(
                    "query {i} {spec:?}: engine rejected ({e}) but reference accepted"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{derive_seed, CmpToken, Scenario};

    #[test]
    fn generated_scenarios_agree_with_the_engine() {
        for i in 0..60u64 {
            let s = Scenario::generate(derive_seed(23, i));
            differential_check(s.seed, &s.table, &s.queries)
                .unwrap_or_else(|e| panic!("scenario {i}: {e}"));
        }
    }

    #[test]
    fn empty_table_agrees() {
        let table = TableSpec {
            rows: 0,
            key_mod: 3,
            nan_every: 0,
            dim_rows: 0,
        };
        let queries = vec![
            QuerySpec::Count {
                filter: FilterSpec::True,
            },
            QuerySpec::Select {
                filter: FilterSpec::VBetween { lo: 0.0, hi: 50.0 },
                limit: 5,
                offset: 0,
            },
            QuerySpec::Histogram {
                bins: 4,
                lo: 0.0,
                hi: 100.0,
                filter: FilterSpec::True,
            },
            QuerySpec::Join {
                limit: 0,
                offset: 0,
            },
        ];
        differential_check(5, &table, &queries).unwrap();
    }

    #[test]
    fn all_nan_column_agrees_and_bins_nothing() {
        let table = TableSpec {
            rows: 40,
            key_mod: 4,
            nan_every: 1,
            dim_rows: 8,
        };
        let spec = QuerySpec::Histogram {
            bins: 8,
            lo: 0.0,
            hi: 100.0,
            filter: FilterSpec::True,
        };
        differential_check(9, &table, &[spec]).unwrap();
        let raw = raw_tables(9, &table);
        let hist = match reference_execute(&raw, &spec).unwrap() {
            ResultSet::Histogram(h) => h,
            other => panic!("expected histogram, got {other:?}"),
        };
        assert_eq!(hist.total(), 0, "an all-NaN column must bin zero rows");
    }

    #[test]
    fn duplicate_join_keys_cross_product() {
        let table = TableSpec {
            rows: 12,
            key_mod: 1, // every fact key is 0 → heavy duplication
            nan_every: 0,
            dim_rows: 10,
        };
        differential_check(
            13,
            &table,
            &[QuerySpec::Join {
                limit: 0,
                offset: 0,
            }],
        )
        .unwrap();
        let raw = raw_tables(13, &table);
        let rows = match reference_execute(
            &raw,
            &QuerySpec::Join {
                limit: 0,
                offset: 0,
            },
        )
        .unwrap()
        {
            ResultSet::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        };
        let zero_dk = raw.dk.iter().filter(|&&d| d == 0).count();
        assert_eq!(rows.len(), 12 * zero_dk, "cross product of duplicate keys");
    }

    #[test]
    fn kcmp_operators_agree() {
        let table = TableSpec {
            rows: 30,
            key_mod: 5,
            nan_every: 2,
            dim_rows: 0,
        };
        for op in [
            CmpToken::Eq,
            CmpToken::Ne,
            CmpToken::Lt,
            CmpToken::Le,
            CmpToken::Gt,
            CmpToken::Ge,
        ] {
            differential_check(
                17,
                &table,
                &[QuerySpec::Count {
                    filter: FilterSpec::KCmp { op, value: 2 },
                }],
            )
            .unwrap();
        }
    }
}
