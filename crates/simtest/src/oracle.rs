//! The invariant-oracle library: every property a healthy stack must
//! satisfy on *any* scenario, however adversarial the seed.
//!
//! Each oracle is a named pass/fail judgement with a human-readable
//! detail string; [`check_scenario`] runs them all and returns the full
//! [`Verdict`]. The shrinker re-runs the same checks on mutated
//! scenarios, keeping a mutation only if the *same named oracle* still
//! fails — so a minimized repro reproduces the original failure, not
//! some other one it stumbled into while shrinking.
//!
//! Scenario execution mutates process-global observability state (the
//! virtual-time cursor, the metrics registry), so all pipeline-running
//! entry points serialize on one process-wide gate. The gate is
//! poisoning-tolerant: a panicking test must not wedge every later
//! oracle run in the same process.

use std::sync::{Mutex, MutexGuard};

use ids_engine::progressive::{
    degrade_result, interval_coverage, is_anytime_consistent, ProgressiveExecutor,
};
use ids_engine::{Backend, ResultQuality, ResultSet};
use ids_metrics::lcv::{budget_violations, QuerySpan};
use ids_metrics::qif::qif_windows;
use ids_simclock::{SimDuration, SimTime};

use crate::pipeline::{adaptive_run, build_replay_env, run_pipeline, RunArtifacts};
use crate::reference::{
    build_tables, diff_backend, differential_check, raw_tables, reference_execute,
};
use crate::scenario::{QuerySpec, Scenario};

/// One oracle's judgement on one scenario.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Stable oracle name (shrinker identity and corpus bookkeeping).
    pub name: &'static str,
    /// Whether the invariant held.
    pub passed: bool,
    /// Failure description (empty when passed).
    pub detail: String,
}

/// All oracle judgements for one scenario.
#[derive(Debug, Clone, Default)]
pub struct Verdict {
    /// One report per oracle, in fixed order.
    pub reports: Vec<OracleReport>,
}

impl Verdict {
    fn push(&mut self, name: &'static str, passed: bool, detail: String) {
        self.reports.push(OracleReport {
            name,
            passed,
            detail: if passed { String::new() } else { detail },
        });
    }

    /// `true` when every oracle held.
    pub fn all_passed(&self) -> bool {
        self.reports.iter().all(|r| r.passed)
    }

    /// The first failing oracle, if any.
    pub fn first_failure(&self) -> Option<&OracleReport> {
        self.reports.iter().find(|r| !r.passed)
    }

    /// One-line summary: `ok (12 oracles)` or `FAIL <name>: <detail>`.
    pub fn summary(&self) -> String {
        match self.first_failure() {
            None => format!("ok ({} oracles)", self.reports.len()),
            Some(f) => format!("FAIL {}: {}", f.name, f.detail.lines().next().unwrap_or("")),
        }
    }
}

static GATE: Mutex<()> = Mutex::new(());

/// Serializes scenario execution against the process-global obs state.
pub fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs every oracle against a scenario. Acquires the global gate; use
/// [`check_scenario_unlocked`] from contexts that already hold it.
pub fn check_scenario(s: &Scenario) -> Verdict {
    let _g = gate();
    check_scenario_unlocked(s)
}

/// [`check_scenario`] without gate acquisition — for the explore loop
/// and the shrinker, which hold the gate across many checks.
pub fn check_scenario_unlocked(s: &Scenario) -> Verdict {
    let mut v = Verdict::default();
    let base = run_pipeline(s, s.threads);

    // 1. Byte-identical replay of the same seed.
    let again = run_pipeline(s, s.threads);
    v.push(
        "replay-determinism",
        base.digest == again.digest,
        diff_digests(&base.digest, &again.digest),
    );

    // 2. Output invariance across 1/2/4/8 synthesis threads.
    let mut thread_detail = String::new();
    for threads in [1usize, 2, 4, 8] {
        if threads == s.threads {
            continue;
        }
        let alt = run_pipeline(s, threads);
        if alt.digest != base.digest {
            thread_detail = format!(
                "digest differs at {threads} threads (base {}): {}",
                s.threads,
                diff_digests(&base.digest, &alt.digest)
            );
            break;
        }
    }
    v.push("thread-invariance", thread_detail.is_empty(), thread_detail);

    // 3. Admission conservation: admitted + shed == offered.
    let adm = &base.admission;
    let conserved = adm.admitted + adm.shed.total() == base.offered
        && base.baseline.admitted == base.offered
        && base.baseline.shed.total() == 0;
    v.push(
        "admission-conservation",
        conserved,
        format!(
            "admitted {} + shed {} vs offered {}; baseline admitted {} shed {}",
            adm.admitted,
            adm.shed.total(),
            base.offered,
            base.baseline.admitted,
            base.baseline.shed.total()
        ),
    );

    // 4. No-wedge liveness: every queue drains at a finite instant and
    //    every replayed query finishes after it was issued.
    let wedged_fleet =
        base.admission.drained_at == SimTime::MAX || base.baseline.drained_at == SimTime::MAX;
    let bad_timing = base.replay.iter().find(|r| {
        r.timing.finished_at < r.timing.started_at || r.timing.started_at < r.timing.issued_at
    });
    v.push(
        "no-wedge",
        !wedged_fleet && bad_timing.is_none(),
        format!(
            "fleet wedged: {wedged_fleet}; bad replay timing: {:?}",
            bad_timing.map(|r| r.timing)
        ),
    );

    // 5. LCV budget monotonicity: a looser budget can never show more
    //    violations over the same spans.
    let spans: Vec<QuerySpan> = base
        .replay
        .iter()
        .map(|r| QuerySpan {
            issued_at: r.timing.issued_at,
            finished_at: r.timing.finished_at,
        })
        .collect();
    let mut lcv_detail = String::new();
    let mut prev: Option<usize> = None;
    for ms in [50u64, 100, 200, 400, 800, 1_600, 3_200] {
        let report = budget_violations(&spans, SimDuration::from_millis(ms));
        if report.violations > report.total {
            lcv_detail = format!(
                "{ms}ms: violations {} > total {}",
                report.violations, report.total
            );
            break;
        }
        if let Some(p) = prev {
            if report.violations > p {
                lcv_detail = format!("{ms}ms: violations rose {} -> {}", p, report.violations);
                break;
            }
        }
        prev = Some(report.violations);
    }
    v.push("lcv-monotonicity", lcv_detail.is_empty(), lcv_detail);

    // 6. QIF window conservation: bucketing timestamps loses nothing.
    let mut qif_detail = String::new();
    for ms in [100u64, 1_000, 5_000] {
        let windows = qif_windows(&base.offered_at, SimDuration::from_millis(ms));
        let counted: usize = windows.iter().map(|(_, n)| n).sum();
        if counted != base.offered_at.len() {
            qif_detail = format!(
                "{ms}ms windows count {counted} != {} offered",
                base.offered_at.len()
            );
            break;
        }
    }
    v.push("qif-conservation", qif_detail.is_empty(), qif_detail);

    // 7. Differential: engine::exec vs the reference interpreter.
    let diff = differential_check(s.seed, &s.table, &s.queries);
    v.push("differential", diff.is_ok(), diff.err().unwrap_or_default());

    // 8. Replay result integrity: Exact answers match a plain
    //    re-execution; Partial answers carry a legal fraction and stay
    //    within the degradation round-trip's stated bounds; Failed
    //    answers are empty placeholders.
    let integrity = replay_integrity(s, &base);
    v.push(
        "partial-bounds",
        integrity.is_ok(),
        integrity.err().unwrap_or_default(),
    );

    // 9. Obs trace/metrics byte stability across identical runs.
    let cap_a = obs_capture(s);
    let cap_b = obs_capture(s);
    v.push(
        "obs-stability",
        cap_a.trace == cap_b.trace && cap_a.tsv == cap_b.tsv,
        format!(
            "trace stable: {}; metrics stable: {}",
            cap_a.trace == cap_b.trace,
            cap_a.tsv == cap_b.tsv
        ),
    );

    // 10. Lakehouse ingestion determinism: replaying the same scenario
    //     twice folds into byte-identical telemetry tables, and the
    //     vectorized p99-by-tenant query agrees exactly with the
    //     row-at-a-time reference interpreter over those tables.
    let lake_detail = lakehouse_determinism(&cap_a, &cap_b);
    v.push("lakehouse-determinism", lake_detail.is_empty(), lake_detail);

    // 11. Progressive anytime contract: block-sampled online aggregation
    //     of every mergeable differential query must (a) end
    //     byte-identical to the reference interpreter's exact answer,
    //     (b) bracket the true per-bin values with its confidence
    //     intervals at the configured coverage, and (c) report a
    //     never-increasing error bound across refinements.
    let prog_detail = progressive_anytime(s);
    v.push("progressive-anytime", prog_detail.is_empty(), prog_detail);

    // 12. Shard invariance: partitioning the differential fact table
    //     across 1/4/16 shards (hash-rows, hash-key, and range schemes)
    //     and scatter-gathering every mergeable query merges to the
    //     exact reference answer, with byte-identical costs and
    //     per-shard telemetry on replay.
    let shard_detail = shard_invariance(s);
    v.push("shard-invariance", shard_detail.is_empty(), shard_detail);

    // 13. Planner equivalence: every query the cost-based planner
    //     plans must execute byte-identically to the unplanned kernel
    //     path — result, footprint, and error behavior — and therefore
    //     to the reference interpreter; plan text must be replay- and
    //     thread-stable.
    let planner_detail = planner_equivalence(s);
    v.push(
        "planner-equivalence",
        planner_detail.is_empty(),
        planner_detail,
    );

    // 14. Adaptive determinism: the closed feedback loop — behavior
    //     model reacting to answers, admission shedding, deadline
    //     degradation to Partial — replays byte-identically and is
    //     invariant to gather threads (1/2/4/8) and shard count
    //     (1/4/16), including the interface mined back from its own
    //     request trace.
    let adaptive_detail = adaptive_determinism(s);
    v.push(
        "adaptive-determinism",
        adaptive_detail.is_empty(),
        adaptive_detail,
    );

    v
}

/// Oracle 14 body: drives the closed-loop adaptive session once as the
/// base leg, then demands byte-identical digests on replay, across
/// gather thread counts, and across shard counts. Feedback latencies
/// are shard-invariant by construction (costs come from the unsharded
/// backend), so any divergence here is a real nondeterminism in the
/// loop or a sharded-result divergence.
fn adaptive_determinism(s: &Scenario) -> String {
    let base = adaptive_run(s, s.threads, 4);
    let again = adaptive_run(s, s.threads, 4);
    if base != again {
        return format!(
            "closed loop not replay-stable: {}",
            diff_digests(&base, &again)
        );
    }
    for threads in [1usize, 2, 4, 8] {
        if threads == s.threads {
            continue;
        }
        let leg = adaptive_run(s, threads, 4);
        if leg != base {
            return format!(
                "closed loop diverges at {threads} gather threads (base {}): {}",
                s.threads,
                diff_digests(&base, &leg)
            );
        }
    }
    for shards in [1usize, 4, 16] {
        if shards == 4 {
            continue;
        }
        let leg = adaptive_run(s, s.threads, shards);
        if leg != base {
            return format!(
                "closed loop diverges at {shards} shards (base 4): {}",
                diff_digests(&base, &leg)
            );
        }
    }
    String::new()
}

/// Oracle 13 body: plans every differential query with the cost-based
/// planner and demands (a) planned execution equal `exec::run_query`
/// bit-for-bit — results, all footprint counters, and errors — which
/// transitively pins it to the reference interpreter through oracle 7;
/// (b) results equal the reference interpreter directly; (c) plan text
/// render byte-identically on replay and at every thread count.
fn planner_equivalence(s: &Scenario) -> String {
    let raw = raw_tables(s.seed, &s.table);
    let backend = diff_backend(&raw);
    let db = backend.database();
    for (i, spec) in s.queries.iter().enumerate() {
        let query = spec.query();
        let planned = ids_engine::plan(&db, &query).and_then(|p| p.execute(&db));
        let unplanned = ids_engine::exec::run_query(&db, &query);
        match (&planned, &unplanned) {
            (Ok(p), Ok(u)) => {
                if p.result != u.0 {
                    return format!(
                        "query {i} {spec:?}: planned result {:?} != unplanned {:?}",
                        p.result, u.0
                    );
                }
                if p.footprint != u.1 {
                    return format!(
                        "query {i} {spec:?}: planned footprint {:?} != unplanned {:?}",
                        p.footprint, u.1
                    );
                }
                if let Ok(r) = reference_execute(&raw, spec) {
                    if p.result != r {
                        return format!(
                            "query {i} {spec:?}: planned result {:?} != reference {r:?}",
                            p.result
                        );
                    }
                }
            }
            (Err(p), Err(u)) => {
                if p != u {
                    return format!("query {i} {spec:?}: planned error `{p}` != unplanned `{u}`");
                }
            }
            (Ok(_), Err(e)) => {
                return format!(
                    "query {i} {spec:?}: planner accepted but unplanned rejected ({e})"
                );
            }
            (Err(e), Ok(_)) => {
                return format!(
                    "query {i} {spec:?}: planner rejected ({e}) but unplanned accepted"
                );
            }
        }
        // Plan text replay- and thread-stability, plus threaded
        // execution identity, for plannable queries.
        if let Ok(plan) = ids_engine::plan(&db, &query) {
            let text = plan.explain();
            let again = match ids_engine::plan(&db, &query) {
                Ok(p) => p.explain(),
                Err(e) => return format!("query {i} {spec:?}: replan failed ({e})"),
            };
            if text != again {
                return format!("query {i} {spec:?}: plan text not replay-stable");
            }
            if let Ok(base) = &planned {
                for threads in [2usize, s.threads.max(1)] {
                    match plan.execute_with_threads(&db, threads) {
                        Ok(out) => {
                            if out.result != base.result || out.footprint != base.footprint {
                                return format!(
                                    "query {i} {spec:?}: {threads}-thread planned execution \
                                     diverged from single-threaded"
                                );
                            }
                        }
                        Err(e) => {
                            return format!(
                                "query {i} {spec:?}: {threads}-thread planned execution \
                                 failed ({e})"
                            );
                        }
                    }
                    if plan.explain() != text {
                        return format!(
                            "query {i} {spec:?}: plan text changed after {threads}-thread run"
                        );
                    }
                }
            }
        }
    }
    String::new()
}

/// Oracle 12 body: scatter-gathers every mergeable differential query
/// across 1/4/16 shards under each partition scheme and demands the
/// merged answer equal the reference interpreter's exact answer, with
/// the whole outcome (result, virtual costs, per-shard breakdown)
/// replaying byte-identically.
fn shard_invariance(s: &Scenario) -> String {
    use ids_shard::{partition_table, PartitionScheme, ScatterGather};
    let raw = raw_tables(s.seed, &s.table);
    let (fact, _) = build_tables(&raw);
    let schemes = [
        PartitionScheme::HashRows,
        PartitionScheme::hash_key("k"),
        PartitionScheme::range("v"),
    ];
    for (i, spec) in s.queries.iter().enumerate() {
        if !matches!(spec, QuerySpec::Count { .. } | QuerySpec::Histogram { .. }) {
            continue;
        }
        let query = spec.query();
        let reference = reference_execute(&raw, spec);
        for scheme in &schemes {
            for shards in [1usize, 4, 16] {
                let parts = match partition_table(&fact, scheme, s.seed, shards) {
                    Ok(p) => p,
                    Err(e) => {
                        return format!(
                            "query {i}: partitioning fact under {} x{shards} failed: {e}",
                            scheme.describe()
                        );
                    }
                };
                let dbs: Vec<ids_engine::Database> = parts
                    .into_iter()
                    .map(|t| {
                        let db = ids_engine::Database::new();
                        db.register(t);
                        db
                    })
                    .collect();
                let sg = ScatterGather::over(dbs).with_threads(s.threads);
                match (&reference, sg.execute(&query)) {
                    (Err(_), Err(_)) => {} // both reject (invalid bin spec)
                    (Err(e), Ok(_)) => {
                        return format!(
                            "query {i} {spec:?}: reference rejected ({e}) but \
                             scatter-gather accepted at {} x{shards}",
                            scheme.describe()
                        );
                    }
                    (Ok(_), Err(e)) => {
                        return format!(
                            "query {i} {spec:?}: reference accepted but scatter-gather \
                             rejected ({e}) at {} x{shards}",
                            scheme.describe()
                        );
                    }
                    (Ok(exact), Ok(out)) => {
                        if &out.result != exact {
                            return format!(
                                "query {i} {spec:?}: merged result diverges from the \
                                 reference at {} x{shards}",
                                scheme.describe()
                            );
                        }
                        if out.shards() != shards {
                            return format!(
                                "query {i}: {} shards executed, expected {shards}",
                                out.shards()
                            );
                        }
                        let again = sg
                            .execute(&query)
                            .expect("an accepted plan replays without error");
                        let stable = again.result == out.result
                            && again.elapsed == out.elapsed
                            && again.total_work == out.total_work
                            && again.per_shard.len() == out.per_shard.len()
                            && again.per_shard.iter().zip(&out.per_shard).all(|(a, b)| {
                                a.shard == b.shard
                                    && a.rows_scanned == b.rows_scanned
                                    && a.blocks_pruned == b.blocks_pruned
                                    && a.cost == b.cost
                            });
                        if !stable {
                            return format!(
                                "query {i} {spec:?}: shard outcome not byte-stable on \
                                 replay at {} x{shards}",
                                scheme.describe()
                            );
                        }
                    }
                }
            }
        }
    }
    String::new()
}

/// Oracle 11 body: runs the progressive executor over the scenario's
/// differential tables and checks the anytime contract against the
/// row-at-a-time reference interpreter.
fn progressive_anytime(s: &Scenario) -> String {
    const COVERAGE: f64 = 0.95;
    let raw = raw_tables(s.seed, &s.table);
    let backend = diff_backend(&raw);
    for (i, spec) in s.queries.iter().enumerate() {
        if !matches!(spec, QuerySpec::Count { .. } | QuerySpec::Histogram { .. }) {
            continue;
        }
        let executor = ProgressiveExecutor::new(backend.database())
            .with_seed(s.seed)
            .with_confidence(COVERAGE);
        let refinements = executor.run(&spec.query());
        match (reference_execute(&raw, spec), refinements) {
            (Err(_), Err(_)) => {} // both reject (invalid bin spec)
            (Err(e), Ok(_)) => {
                return format!(
                    "query {i} {spec:?}: reference rejected ({e}) but progressive accepted"
                );
            }
            (Ok(_), Err(e)) => {
                return format!(
                    "query {i} {spec:?}: reference accepted but progressive rejected ({e})"
                );
            }
            (Ok(exact), Ok(refinements)) => {
                if !is_anytime_consistent(&refinements, &exact) {
                    return format!(
                        "query {i} {spec:?}: anytime contract violated (final must equal \
                         the reference answer bit-for-bit with a monotone error bound)"
                    );
                }
                let coverage = interval_coverage(&refinements, &exact);
                if coverage < COVERAGE {
                    return format!(
                        "query {i} {spec:?}: interval coverage {coverage:.3} below {COVERAGE}"
                    );
                }
            }
        }
    }
    String::new()
}

/// Oracle 10 body: byte-compares the telemetry tables built from two
/// identical captures, then runs the kernel-vs-reference differential.
fn lakehouse_determinism(cap_a: &ObsCapture, cap_b: &ObsCapture) -> String {
    use ids_lakehouse::{reference_p99_by_tenant, render_table, Lakehouse, TimeWindow};
    let ingest = |cap: &ObsCapture| {
        let mut lake = Lakehouse::new();
        lake.ingest_events(&cap.events, &cap.tracks);
        lake
    };
    let lake_a = ingest(cap_a);
    let lake_b = ingest(cap_b);
    let tables = |lake: &Lakehouse| -> Result<(String, String), String> {
        let spans = lake.spans_table().map_err(|e| e.to_string())?;
        let counters = lake.counters_table().map_err(|e| e.to_string())?;
        Ok((
            render_table(&spans, usize::MAX),
            render_table(&counters, usize::MAX),
        ))
    };
    let (spans_a, counters_a) = match tables(&lake_a) {
        Ok(t) => t,
        Err(e) => return format!("building telemetry tables failed: {e}"),
    };
    let (spans_b, counters_b) = match tables(&lake_b) {
        Ok(t) => t,
        Err(e) => return format!("building telemetry tables failed: {e}"),
    };
    if spans_a != spans_b {
        return format!(
            "telemetry_spans diverged across replays: {}",
            diff_digests(&spans_a, &spans_b)
        );
    }
    if counters_a != counters_b {
        return format!(
            "telemetry_counters diverged across replays: {}",
            diff_digests(&counters_a, &counters_b)
        );
    }
    let mut queries = match lake_a.queries() {
        Ok(q) => q,
        Err(e) => return format!("building telemetry queries failed: {e}"),
    };
    let window = TimeWindow::all();
    let kernel = match queries.p99_by_tenant(window) {
        Ok(k) => k,
        Err(e) => return format!("kernel p99_by_tenant failed: {e}"),
    };
    let reference = match reference_p99_by_tenant(queries.spans(), window) {
        Ok(r) => r,
        Err(e) => return format!("reference p99_by_tenant failed: {e}"),
    };
    if kernel != reference {
        return format!(
            "kernel p99_by_tenant disagrees with row-at-a-time reference: \
             {kernel:?} vs {reference:?}"
        );
    }
    String::new()
}

/// First line where two digests diverge.
fn diff_digests(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("`{la}` vs `{lb}`");
        }
    }
    if a.len() != b.len() {
        return format!("lengths differ: {} vs {}", a.len(), b.len());
    }
    String::new()
}

fn replay_integrity(s: &Scenario, base: &RunArtifacts) -> Result<(), String> {
    let (plain, _) = build_replay_env(s);
    for (i, r) in base.replay.iter().enumerate() {
        let exact = plain
            .execute(&r.query)
            .map_err(|e| format!("replay {i}: plain re-execution failed: {e}"))?
            .result;
        match r.outcome.quality {
            ResultQuality::Exact => {
                if r.outcome.result != exact {
                    return Err(format!(
                        "replay {i}: Exact result diverges from plain re-execution"
                    ));
                }
            }
            ResultQuality::Partial {
                fraction,
                error_bound,
            } => {
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(format!("replay {i}: illegal fraction {fraction}"));
                }
                if !(error_bound.is_finite() && error_bound >= 0.0) {
                    return Err(format!("replay {i}: illegal error bound {error_bound}"));
                }
                let expected = degrade_result(exact.clone(), fraction);
                if r.outcome.result != expected {
                    return Err(format!(
                        "replay {i}: Partial result is not the degradation of the exact answer"
                    ));
                }
                // And the degraded estimate honors its stated bound (the
                // round-trip loses at most one rounding step per scale,
                // which is exactly what the degrade path reports).
                let bound = error_bound.min(0.5 / fraction + 1.0);
                if let (ResultSet::Count(est), ResultSet::Count(truth)) =
                    (&r.outcome.result, &exact)
                {
                    let err = (*est as f64 - *truth as f64).abs();
                    if err > bound {
                        return Err(format!(
                            "replay {i}: count estimate {est} off by {err} > bound {bound} at fraction {fraction}"
                        ));
                    }
                }
                if let (ResultSet::Histogram(est), ResultSet::Histogram(truth)) =
                    (&r.outcome.result, &exact)
                {
                    for (bin, (&e, &t)) in est.counts().iter().zip(truth.counts()).enumerate() {
                        let err = (e as f64 - t as f64).abs();
                        if err > bound {
                            return Err(format!(
                                "replay {i}: bin {bin} estimate {e} off by {err} > bound {bound}"
                            ));
                        }
                    }
                }
            }
            ResultQuality::Failed => {
                let empty = match &r.outcome.result {
                    ResultSet::Count(c) => *c == 0,
                    ResultSet::Histogram(h) => h.total() == 0,
                    ResultSet::Rows(rows) => rows.is_empty(),
                };
                if !empty {
                    return Err(format!("replay {i}: Failed result is not a placeholder"));
                }
            }
        }
    }
    Ok(())
}

/// One traced pipeline run: the exported Chrome trace JSON and metrics
/// TSV (oracle 9), plus the raw events and track names so oracle 10 can
/// fold the same capture into lakehouse tables.
struct ObsCapture {
    trace: String,
    tsv: String,
    events: Vec<ids_obs::TraceEvent>,
    tracks: Vec<String>,
}

/// Runs the pipeline with tracing enabled and captures its telemetry.
fn obs_capture(s: &Scenario) -> ObsCapture {
    ids_obs::reset_all();
    ids_obs::enable();
    let _ = run_pipeline(s, s.threads);
    let rec = ids_obs::recorder();
    let events = rec.events();
    let tracks = rec.tracks();
    let trace = ids_obs::chrome_trace_json(&events, &tracks);
    let tsv = ids_obs::metrics_tsv(&ids_obs::metrics().snapshot());
    ids_obs::disable();
    ids_obs::reset_all();
    ObsCapture {
        trace,
        tsv,
        events,
        tracks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::derive_seed;

    #[test]
    fn a_healthy_scenario_passes_every_oracle() {
        let s = Scenario::generate(derive_seed(41, 2));
        let v = check_scenario(&s);
        assert_eq!(v.reports.len(), 14);
        assert!(v.all_passed(), "{}", v.summary());
        assert!(v.summary().starts_with("ok ("));
    }

    #[test]
    fn verdict_reports_first_failure() {
        let mut v = Verdict::default();
        v.push("a", true, String::new());
        v.push("b", false, "broke\nsecond line".into());
        v.push("c", false, "also broke".into());
        assert!(!v.all_passed());
        assert_eq!(v.first_failure().unwrap().name, "b");
        assert_eq!(v.summary(), "FAIL b: broke");
    }
}
