//! Seeded fault plans: *what* goes wrong, *when*, as pure data.
//!
//! A [`FaultPlan`] is built once (from an explicit DSL or from a seed +
//! intensity) and then only *queried*: every decision — is there a spike
//! at virtual time `t`? does occurrence `k` of query `q` fail? — is a
//! pure function of the plan. Nothing in here consumes randomness at
//! query time, so fault decisions cannot depend on execution order or
//! thread interleaving, which is what makes same-seed runs bit-identical
//! even under parallel execution.

use ids_simclock::rng::SimRng;
use ids_simclock::{SimDuration, SimTime};

/// What a fault window does to queries executing inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Execution cost is multiplied by `factor` (> 1): a noisy neighbor,
    /// a compaction, a GC pause stretching every query.
    LatencySpike {
        /// Cost multiplier applied inside the window.
        factor: f64,
    },
    /// The backend is wedged: queries issued inside the window cannot
    /// finish before the window ends (the remaining stall time is added
    /// to their cost).
    Stall,
    /// The buffer pool is evicted when the window opens (cold restart of
    /// the cache mid-session).
    BufferPressure,
    /// Cluster node (or serving worker slot) `node` is unreachable for
    /// the duration of the window — the time-scoped sibling of the
    /// static [`FaultPlan::lost_nodes`] set. Serving loops shrink their
    /// worker pool while the window is open and recover when it closes:
    /// degradation, not a wedge.
    NodeLoss {
        /// Index of the lost node / worker slot.
        node: usize,
    },
}

/// A half-open window `[start, end)` of virtual time with a fault active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window opening instant.
    pub start: SimTime,
    /// First instant past the window.
    pub end: SimTime,
    /// The fault active inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// `true` when `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A complete, immutable description of every fault a run will see.
///
/// Build one with [`FaultPlan::builder`] (explicit windows) or
/// [`FaultPlan::storm`] (seed + intensity → derived windows). The same
/// seed and parameters always yield the identical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    windows: Vec<FaultWindow>,
    /// Probability that any single execution attempt fails transiently.
    failure_rate: f64,
    /// Cluster node indices considered lost for distributed execution.
    lost_nodes: Vec<usize>,
}

impl FaultPlan {
    /// A plan with no faults at all (the healthy baseline).
    pub fn calm(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            windows: Vec::new(),
            failure_rate: 0.0,
            lost_nodes: Vec::new(),
        }
    }

    /// Starts an explicit plan description.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan::calm(seed),
        }
    }

    /// Derives a full storm from `(seed, intensity)` over `[0, horizon)`.
    ///
    /// `intensity` in `[0, 1]` scales every dimension at once: window
    /// count and width, spike factor, and transient-failure rate. Window
    /// *positions* depend only on the seed — not the intensity — so
    /// storms at increasing intensities are pointwise comparable: a
    /// higher-intensity storm is strictly harsher at every instant,
    /// which is what makes LCV monotone across a fault-intensity sweep.
    pub fn storm(seed: u64, intensity: f64, horizon: SimDuration) -> FaultPlan {
        let intensity = intensity.clamp(0.0, 1.0);
        if intensity == 0.0 || horizon.is_zero() {
            return FaultPlan::calm(seed);
        }
        let mut rng = SimRng::seed(seed).split("chaos/storm");
        let mut windows = Vec::new();
        // Four spike sites and two stall sites per horizon, positions
        // fixed by the seed; width and severity grow with intensity.
        let h = horizon.as_secs_f64();
        for i in 0..4 {
            let at = SimTime::from_secs_f64(rng.uniform(0.0, h * 0.9));
            let width = SimDuration::from_secs_f64(h * 0.08 * intensity);
            windows.push(FaultWindow {
                start: at,
                end: at + width,
                kind: FaultKind::LatencySpike {
                    factor: 1.0 + (3.0 + i as f64) * intensity,
                },
            });
        }
        for _ in 0..2 {
            let at = SimTime::from_secs_f64(rng.uniform(0.0, h * 0.9));
            let width = SimDuration::from_secs_f64(h * 0.04 * intensity);
            windows.push(FaultWindow {
                start: at,
                end: at + width,
                kind: FaultKind::Stall,
            });
        }
        let at = SimTime::from_secs_f64(rng.uniform(0.0, h * 0.9));
        windows.push(FaultWindow {
            start: at,
            end: at + SimDuration::from_secs_f64(h * 0.05 * intensity),
            kind: FaultKind::BufferPressure,
        });
        windows.sort_by_key(|w| (w.start, w.end));
        FaultPlan {
            seed,
            windows,
            failure_rate: 0.15 * intensity,
            lost_nodes: Vec::new(),
        }
    }

    /// A [`storm`](Self::storm) extended with recoverable node-loss
    /// windows for a serving pool of `workers` slots.
    ///
    /// On top of the storm's spikes, stalls, and transient failures, up
    /// to half the pool (scaled by intensity, always at least one node
    /// when the storm is live) drops out for a mid-run window and comes
    /// back. Node-loss draws use an independent RNG split, so the storm
    /// windows themselves are identical to [`FaultPlan::storm`]'s at the
    /// same `(seed, intensity)` — existing storm-based fixtures are
    /// unaffected by composing loss on top.
    pub fn storm_with_node_loss(
        seed: u64,
        intensity: f64,
        horizon: SimDuration,
        workers: usize,
    ) -> FaultPlan {
        let intensity = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::storm(seed, intensity, horizon);
        if intensity == 0.0 || horizon.is_zero() || workers == 0 {
            return plan;
        }
        let mut rng = SimRng::seed(seed).split("chaos/node-loss");
        let h = horizon.as_secs_f64();
        let lost = ((workers as f64 * 0.5 * intensity).round() as usize).clamp(1, workers);
        for node in 0..lost {
            let at = SimTime::from_secs_f64(rng.uniform(h * 0.3, h * 0.7));
            plan.windows.push(FaultWindow {
                start: at,
                end: at + SimDuration::from_secs_f64(h * 0.1 * intensity),
                kind: FaultKind::NodeLoss { node },
            });
        }
        plan.windows.sort_by_key(|w| (w.start, w.end));
        plan
    }

    /// Reads `IDS_CHAOS_INTENSITY` (a float in `[0, 1]`) and builds a
    /// storm at that intensity, or at `default_intensity` when unset or
    /// unparsable. This is the CI fault-matrix toggle: the same tests run
    /// calm locally and stormy in the chaos job.
    pub fn from_env(seed: u64, horizon: SimDuration, default_intensity: f64) -> FaultPlan {
        let intensity = std::env::var("IDS_CHAOS_INTENSITY")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(default_intensity);
        FaultPlan::storm(seed, intensity, horizon)
    }

    /// The seed the plan (and its failure hash) is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All fault windows, sorted by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Per-attempt transient-failure probability.
    pub fn failure_rate(&self) -> f64 {
        self.failure_rate
    }

    /// Cluster nodes the plan declares lost.
    pub fn lost_nodes(&self) -> &[usize] {
        &self.lost_nodes
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_calm(&self) -> bool {
        self.windows.is_empty() && self.failure_rate == 0.0 && self.lost_nodes.is_empty()
    }

    /// Combined cost multiplier at `t`: the product of every latency
    /// spike whose window covers `t` (overlapping storms compound); `1.0`
    /// outside all spikes.
    pub fn cost_multiplier_at(&self, t: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.contains(t))
            .filter_map(|w| match w.kind {
                FaultKind::LatencySpike { factor } => Some(factor.max(1.0)),
                _ => None,
            })
            .product()
    }

    /// If a stall covers `t`, the instant the backend un-wedges (the end
    /// of the last overlapping stall window).
    pub fn stall_until(&self, t: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .filter(|w| w.kind == FaultKind::Stall && w.contains(t))
            .map(|w| w.end)
            .max()
    }

    /// If `t` lies in a buffer-pressure window, that window's index in
    /// [`windows`](Self::windows) — the injector flushes the pool once
    /// per window, keyed on this index.
    pub fn pressure_window_at(&self, t: SimTime) -> Option<usize> {
        self.windows
            .iter()
            .position(|w| w.kind == FaultKind::BufferPressure && w.contains(t))
    }

    /// Nodes lost at instant `t`: the union of the static
    /// [`lost_nodes`](Self::lost_nodes) set and every
    /// [`FaultKind::NodeLoss`] window covering `t`, deduplicated and
    /// sorted. A serving loop subtracts these from its worker capacity
    /// while the window is open.
    pub fn lost_nodes_at(&self, t: SimTime) -> Vec<usize> {
        let mut lost = self.lost_nodes.clone();
        for w in &self.windows {
            if let FaultKind::NodeLoss { node } = w.kind {
                if w.contains(t) {
                    lost.push(node);
                }
            }
        }
        lost.sort_unstable();
        lost.dedup();
        lost
    }

    /// Whether execution attempt `attempt` of the query with fingerprint
    /// `fingerprint` fails transiently.
    ///
    /// A pure hash decision: `hash(seed, fingerprint, attempt)` is mapped
    /// to `[0, 1)` and compared against the failure rate, so the verdict
    /// for any (query, attempt) pair is fixed at plan-build time. Retries
    /// advance `attempt` and can genuinely succeed, and raising the rate
    /// only grows the failing set (decisions are monotone in the rate).
    pub fn should_fail(&self, fingerprint: u64, attempt: u32) -> bool {
        if self.failure_rate <= 0.0 {
            return false;
        }
        let h = splitmix(self.seed ^ fingerprint ^ (u64::from(attempt) << 48));
        (h as f64 / u64::MAX as f64) < self.failure_rate
    }

    /// `true` when node `node` is declared lost.
    pub fn node_lost(&self, node: usize) -> bool {
        self.lost_nodes.contains(&node)
    }
}

/// Incremental construction of an explicit [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Adds a latency spike: costs multiply by `factor` inside the window.
    pub fn latency_spike(
        mut self,
        start: SimTime,
        width: SimDuration,
        factor: f64,
    ) -> FaultPlanBuilder {
        self.plan.windows.push(FaultWindow {
            start,
            end: start + width,
            kind: FaultKind::LatencySpike { factor },
        });
        self
    }

    /// Adds a stall: queries inside the window finish no earlier than its
    /// end.
    pub fn stall(mut self, start: SimTime, width: SimDuration) -> FaultPlanBuilder {
        self.plan.windows.push(FaultWindow {
            start,
            end: start + width,
            kind: FaultKind::Stall,
        });
        self
    }

    /// Adds a buffer-pressure window: the pool is evicted when it opens.
    pub fn buffer_pressure(mut self, start: SimTime, width: SimDuration) -> FaultPlanBuilder {
        self.plan.windows.push(FaultWindow {
            start,
            end: start + width,
            kind: FaultKind::BufferPressure,
        });
        self
    }

    /// Sets the per-attempt transient-failure probability.
    pub fn transient_failures(mut self, rate: f64) -> FaultPlanBuilder {
        self.plan.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Declares a node lost only while the window is open (the static
    /// [`lose_node`](Self::lose_node) is forever; this one recovers).
    pub fn lose_node_during(
        mut self,
        node: usize,
        start: SimTime,
        width: SimDuration,
    ) -> FaultPlanBuilder {
        self.plan.windows.push(FaultWindow {
            start,
            end: start + width,
            kind: FaultKind::NodeLoss { node },
        });
        self
    }

    /// Declares a cluster node lost.
    pub fn lose_node(mut self, node: usize) -> FaultPlanBuilder {
        if !self.plan.lost_nodes.contains(&node) {
            self.plan.lost_nodes.push(node);
            self.plan.lost_nodes.sort_unstable();
        }
        self
    }

    /// Finishes the plan (windows sorted by start time).
    pub fn build(mut self) -> FaultPlan {
        self.plan.windows.sort_by_key(|w| (w.start, w.end));
        self.plan
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a fingerprint of a query's canonical rendering. Two structurally
/// identical queries share a fingerprint; the `attempt` axis in
/// [`FaultPlan::should_fail`] separates their retries.
pub fn query_fingerprint(query: &ids_engine::Query) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in query.to_string().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn builder_windows_are_sorted_and_queried() {
        let plan = FaultPlan::builder(7)
            .stall(at(50), ms(10))
            .latency_spike(at(10), ms(20), 4.0)
            .buffer_pressure(at(100), ms(5))
            .transient_failures(0.5)
            .lose_node(2)
            .build();
        assert_eq!(plan.windows().len(), 3);
        assert!(plan.windows().windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(plan.cost_multiplier_at(at(15)), 4.0);
        assert_eq!(plan.cost_multiplier_at(at(35)), 1.0);
        assert_eq!(plan.stall_until(at(55)), Some(at(60)));
        assert_eq!(plan.stall_until(at(65)), None);
        assert!(plan.pressure_window_at(at(102)).is_some());
        assert!(plan.node_lost(2));
        assert!(!plan.node_lost(0));
        assert!(!plan.is_calm());
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::builder(1)
            .latency_spike(at(10), ms(10), 2.0)
            .build();
        assert_eq!(plan.cost_multiplier_at(at(10)), 2.0);
        assert_eq!(plan.cost_multiplier_at(at(20)), 1.0, "end is exclusive");
    }

    #[test]
    fn overlapping_spikes_compound() {
        let plan = FaultPlan::builder(1)
            .latency_spike(at(0), ms(100), 2.0)
            .latency_spike(at(50), ms(100), 3.0)
            .build();
        assert_eq!(plan.cost_multiplier_at(at(60)), 6.0);
    }

    #[test]
    fn same_seed_same_plan() {
        let h = SimDuration::from_secs(10);
        assert_eq!(FaultPlan::storm(9, 0.5, h), FaultPlan::storm(9, 0.5, h));
        assert_ne!(FaultPlan::storm(9, 0.5, h), FaultPlan::storm(10, 0.5, h));
    }

    #[test]
    fn storm_positions_are_intensity_invariant() {
        let h = SimDuration::from_secs(10);
        let mild = FaultPlan::storm(3, 0.25, h);
        let harsh = FaultPlan::storm(3, 1.0, h);
        assert_eq!(mild.windows().len(), harsh.windows().len());
        for (a, b) in mild.windows().iter().zip(harsh.windows()) {
            assert_eq!(a.start, b.start, "positions fixed by seed alone");
            assert!(b.end >= a.end, "harsher storms widen windows");
        }
        // Pointwise: the harsher storm multiplies costs at least as much
        // everywhere.
        for t in (0..10_000).step_by(37) {
            assert!(harsh.cost_multiplier_at(at(t)) >= mild.cost_multiplier_at(at(t)));
        }
        assert!(harsh.failure_rate() > mild.failure_rate());
    }

    #[test]
    fn zero_intensity_is_calm() {
        assert!(FaultPlan::storm(5, 0.0, SimDuration::from_secs(1)).is_calm());
        assert!(FaultPlan::calm(5).is_calm());
    }

    #[test]
    fn failure_decisions_are_pure_and_monotone_in_rate() {
        let mild = FaultPlan::builder(11).transient_failures(0.1).build();
        let harsh = FaultPlan::builder(11).transient_failures(0.6).build();
        let mut mild_fails = 0;
        for fp in 0..2_000u64 {
            for attempt in 0..3 {
                let m = mild.should_fail(fp, attempt);
                assert_eq!(m, mild.should_fail(fp, attempt), "pure");
                if m {
                    mild_fails += 1;
                    assert!(harsh.should_fail(fp, attempt), "monotone in rate");
                }
            }
        }
        // The empirical rate tracks the configured one.
        let rate = f64::from(mild_fails) / 6_000.0;
        assert!((rate - 0.1).abs() < 0.03, "empirical rate {rate}");
        assert!(!FaultPlan::calm(11).should_fail(42, 0));
    }

    #[test]
    fn retries_can_succeed() {
        let plan = FaultPlan::builder(13).transient_failures(0.5).build();
        // Some fingerprint that fails on attempt 0 must succeed within a
        // few retries — the hash axis is independent per attempt.
        let fp = (0..10_000u64)
            .find(|&fp| plan.should_fail(fp, 0))
            .expect("some first attempt fails");
        assert!(
            (1..8).any(|a| !plan.should_fail(fp, a)),
            "an 8-deep retry chain all failing at rate 0.5 is ~0.4%"
        );
    }

    #[test]
    fn node_loss_windows_are_scoped_in_time() {
        let plan = FaultPlan::builder(17)
            .lose_node(9)
            .lose_node_during(3, at(100), ms(50))
            .lose_node_during(1, at(120), ms(10))
            .build();
        // Static losses apply at all times; windowed ones only inside.
        assert_eq!(plan.lost_nodes_at(at(0)), vec![9]);
        assert_eq!(plan.lost_nodes_at(at(110)), vec![3, 9]);
        assert_eq!(plan.lost_nodes_at(at(125)), vec![1, 3, 9]);
        assert_eq!(plan.lost_nodes_at(at(150)), vec![9], "end is exclusive");
        // Windowed loss does not mark the node statically lost.
        assert!(!plan.node_lost(3));
        assert!(plan.node_lost(9));
    }

    #[test]
    fn storm_with_node_loss_extends_storm_without_perturbing_it() {
        let h = SimDuration::from_secs(10);
        let base = FaultPlan::storm(21, 0.6, h);
        let lossy = FaultPlan::storm_with_node_loss(21, 0.6, h, 8);
        // Every storm window survives unchanged; only NodeLoss is added.
        for w in base.windows() {
            assert!(lossy.windows().contains(w), "storm window preserved");
        }
        let loss: Vec<_> = lossy
            .windows()
            .iter()
            .filter(|w| matches!(w.kind, FaultKind::NodeLoss { .. }))
            .collect();
        assert_eq!(lossy.windows().len(), base.windows().len() + loss.len());
        assert!(!loss.is_empty(), "live storm loses at least one node");
        assert!(loss.len() <= 8, "never loses more than the pool");
        for w in &loss {
            assert!(w.start >= SimTime::from_secs_f64(10.0 * 0.3));
            assert!(w.start <= SimTime::from_secs_f64(10.0 * 0.7));
            assert!(w.end > w.start, "loss windows recover");
        }
        // Deterministic, and calm storms stay calm.
        assert_eq!(lossy, FaultPlan::storm_with_node_loss(21, 0.6, h, 8));
        assert!(FaultPlan::storm_with_node_loss(21, 0.0, h, 8).is_calm());
    }

    #[test]
    fn fingerprints_distinguish_queries() {
        use ids_engine::{Predicate, Query};
        let a = Query::count("t", Predicate::between("x", 0.0, 1.0));
        let b = Query::count("t", Predicate::between("x", 0.0, 2.0));
        assert_eq!(query_fingerprint(&a), query_fingerprint(&a));
        assert_ne!(query_fingerprint(&a), query_fingerprint(&b));
    }
}
