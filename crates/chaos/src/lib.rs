//! Deterministic fault injection for the IDS engine.
//!
//! The paper's two novel metrics — latency constraint violations and
//! query issuing frequency — only become interesting when a backend
//! *misses* its interactivity budget. This crate manufactures that
//! adversity reproducibly: a [`FaultPlan`] describes latency spikes,
//! backend stalls, transient query failures, buffer-pool pressure, and
//! cluster node loss as pure data derived from a seed, and
//! [`ChaosBackend`] applies it to any [`ids_engine::Backend`] on the
//! shared virtual clock.
//!
//! # Determinism contract
//!
//! Every fault decision is a pure function of `(plan, virtual time,
//! query fingerprint, attempt number)`. No wall clocks, no ambient
//! randomness, no dependence on thread interleaving — so a seeded run
//! replays bit-identically: same outcome vectors, same metric snapshots,
//! same trace exports. The one deliberate exception is buffer-pool
//! pressure, whose effect depends on pool state and therefore on
//! execution *order*; parallel batches that must stay order-independent
//! should use plans without pressure windows (the fault-matrix tests
//! do exactly that).
//!
//! # Example
//!
//! ```
//! use ids_chaos::{ChaosBackend, FaultPlan};
//! use ids_engine::{Backend, ColumnBuilder, MemBackend, Predicate, Query, TableBuilder};
//! use ids_simclock::{SimDuration, SimTime};
//!
//! let inner = MemBackend::new();
//! inner.database().register(
//!     TableBuilder::new("t")
//!         .column("x", ColumnBuilder::float((0..100).map(|i| i as f64)))
//!         .build()
//!         .unwrap(),
//! );
//! let plan = FaultPlan::builder(42)
//!     .latency_spike(SimTime::from_millis(100), SimDuration::from_millis(50), 4.0)
//!     .build();
//! let chaos = ChaosBackend::new(&inner, plan);
//!
//! let q = Query::count("t", Predicate::True);
//! ids_obs::set_vnow(SimTime::from_millis(10)); // outside the spike
//! let calm_cost = chaos.execute(&q).unwrap().cost;
//! ids_obs::set_vnow(SimTime::from_millis(120)); // inside the spike
//! let spiked_cost = chaos.execute(&q).unwrap().cost;
//! assert_eq!(spiked_cost, calm_cost.mul_f64(4.0));
//! ```

#![warn(missing_docs)]

mod inject;
mod plan;

pub use inject::ChaosBackend;
pub use plan::{query_fingerprint, FaultKind, FaultPlan, FaultPlanBuilder, FaultWindow};
