//! The fault injector: a [`Backend`] decorator that consults a
//! [`FaultPlan`] on every execution.
//!
//! [`ChaosBackend`] sits between a scheduler (or any other executor) and
//! the real backend. On each `execute` it reads the current *virtual*
//! time — published by the replay loops via [`ids_obs::set_vnow`] — and
//! applies whatever the plan says is active at that instant: transient
//! failures surface as [`EngineError::TransientFailure`], latency spikes
//! multiply the outcome's cost, stalls pin completion to the window end,
//! and buffer-pressure windows evict an attached disk backend's pool.
//! Every injection is counted in the metrics registry and, when the
//! recorder is on, marked as a trace instant on a `chaos` track.

use std::collections::HashMap;
use std::sync::Arc;

use ids_engine::{Backend, Database, DiskBackend, EngineError, EngineResult, Query, QueryOutcome};
use parking_lot::Mutex;

use crate::plan::{query_fingerprint, FaultPlan};

/// A backend decorator injecting the faults a [`FaultPlan`] prescribes.
///
/// Attempt counting: the injector keeps one counter per query
/// fingerprint, so re-executions of the same query (scheduler retries,
/// repeated slider positions) advance through the plan's per-attempt
/// failure decisions deterministically.
pub struct ChaosBackend<'a> {
    inner: &'a (dyn Backend + Sync),
    plan: FaultPlan,
    /// Flushed on buffer-pressure windows when attached.
    pressure_target: Option<&'a DiskBackend>,
    /// Per-fingerprint execution attempt counts.
    attempts: Mutex<HashMap<u64, u32>>,
    /// Buffer-pressure windows already triggered (flush once per window).
    triggered_pressure: Mutex<Vec<usize>>,
    name: String,
    failures: Arc<ids_obs::Counter>,
    spikes: Arc<ids_obs::Counter>,
    stalls: Arc<ids_obs::Counter>,
    stall_wait_us: Arc<ids_obs::Counter>,
    flushes: Arc<ids_obs::Counter>,
}

impl<'a> ChaosBackend<'a> {
    /// Wraps `inner`, injecting faults from `plan`.
    pub fn new(inner: &'a (dyn Backend + Sync), plan: FaultPlan) -> ChaosBackend<'a> {
        let reg = ids_obs::metrics();
        ChaosBackend {
            name: format!("chaos({})", inner.name()),
            inner,
            plan,
            pressure_target: None,
            attempts: Mutex::new(HashMap::new()),
            triggered_pressure: Mutex::new(Vec::new()),
            failures: reg.counter("chaos.failures_injected"),
            spikes: reg.counter("chaos.spiked_queries"),
            stalls: reg.counter("chaos.stalled_queries"),
            stall_wait_us: reg.counter("chaos.stall_wait_us"),
            flushes: reg.counter("chaos.pool_flushes"),
        }
    }

    /// Attaches the disk backend whose buffer pool the plan's
    /// buffer-pressure windows evict. Without a target those windows are
    /// inert (the mem backend has no pool to pressure).
    pub fn with_pressure_target(mut self, disk: &'a DiskBackend) -> ChaosBackend<'a> {
        self.pressure_target = Some(disk);
        self
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Marks an injection on the trace timeline (no-op when disabled).
    fn record_injection(&self, what: &str, at: ids_simclock::SimTime, fingerprint: u64) {
        let rec = ids_obs::recorder();
        if !rec.is_enabled() {
            return;
        }
        let track = rec.track("chaos");
        rec.record_instant(
            "chaos",
            what.to_string(),
            track,
            at,
            vec![("query", ids_obs::ArgValue::U64(fingerprint))],
        );
    }
}

impl Backend for ChaosBackend<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn database(&self) -> Database {
        self.inner.database()
    }

    fn execute(&self, query: &Query) -> EngineResult<QueryOutcome> {
        let now = ids_obs::vnow();
        let fp = query_fingerprint(query);

        // Buffer pressure first: entering a pressure window cold-starts
        // the pool before this query's scan charges page I/O.
        if let (Some(window), Some(disk)) =
            (self.plan.pressure_window_at(now), self.pressure_target)
        {
            let mut triggered = self.triggered_pressure.lock();
            if !triggered.contains(&window) {
                triggered.push(window);
                disk.flush_pool();
                self.flushes.inc();
                self.record_injection("buffer_pressure", now, fp);
            }
        }

        let attempt = {
            let mut attempts = self.attempts.lock();
            let slot = attempts.entry(fp).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        if self.plan.should_fail(fp, attempt) {
            self.failures.inc();
            self.record_injection("transient_failure", now, fp);
            return Err(EngineError::TransientFailure {
                reason: format!("injected fault (attempt {attempt})"),
            });
        }

        let mut outcome = self.inner.execute(query)?;
        let multiplier = self.plan.cost_multiplier_at(now);
        if multiplier > 1.0 {
            outcome.cost = outcome.cost.mul_f64(multiplier);
            self.spikes.inc();
            self.record_injection("latency_spike", now, fp);
        }
        if let Some(until) = self.plan.stall_until(now) {
            let extra = until.saturating_since(now);
            outcome.cost += extra;
            self.stalls.inc();
            self.stall_wait_us.add(extra.as_micros());
            self.record_injection("stall", now, fp);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::{ColumnBuilder, CostParams, MemBackend, Predicate, TableBuilder};
    use ids_simclock::{SimDuration, SimTime};

    /// `ids_obs::set_vnow` is process-global; these tests pin it, so they
    /// must not interleave.
    static VNOW_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        VNOW_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn backend(rows: usize) -> MemBackend {
        let b = MemBackend::with_params(CostParams {
            startup_ns: 10_000_000, // 10 ms per query
            page_cold_ns: 0,
            page_hot_ns: 0,
            tuple_scan_ns: 0,
            tuple_agg_ns: 0,
            join_build_ns: 0,
            join_probe_ns: 0,
            row_output_ns: 0,
            predicate_eval_ns: 0,
        });
        b.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..rows).map(|i| i as f64)))
                .build()
                .unwrap(),
        );
        b
    }

    fn q() -> Query {
        Query::count("t", Predicate::True)
    }

    #[test]
    fn calm_plan_is_transparent() {
        let _g = lock();
        let inner = backend(100);
        let chaos = ChaosBackend::new(&inner, FaultPlan::calm(1));
        ids_obs::set_vnow(SimTime::from_millis(5));
        let direct = inner.execute(&q()).unwrap();
        let wrapped = chaos.execute(&q()).unwrap();
        assert_eq!(wrapped.result, direct.result);
        assert_eq!(wrapped.cost, direct.cost);
        assert_eq!(chaos.database().table("t").unwrap().rows(), 100);
        assert!(chaos.name().starts_with("chaos("));
    }

    #[test]
    fn spike_multiplies_cost_inside_window_only() {
        let _g = lock();
        let inner = backend(100);
        let plan = FaultPlan::builder(2)
            .latency_spike(SimTime::from_millis(100), SimDuration::from_millis(50), 3.0)
            .build();
        let chaos = ChaosBackend::new(&inner, plan);
        ids_obs::set_vnow(SimTime::from_millis(10));
        let outside = chaos.execute(&q()).unwrap();
        ids_obs::set_vnow(SimTime::from_millis(120));
        let inside = chaos.execute(&q()).unwrap();
        assert_eq!(inside.cost, outside.cost.mul_f64(3.0));
        assert_eq!(
            inside.result, outside.result,
            "faults never corrupt answers"
        );
    }

    #[test]
    fn stall_pins_completion_to_window_end() {
        let _g = lock();
        let inner = backend(100);
        let plan = FaultPlan::builder(3)
            .stall(SimTime::from_millis(100), SimDuration::from_millis(200))
            .build();
        let chaos = ChaosBackend::new(&inner, plan);
        ids_obs::set_vnow(SimTime::from_millis(150));
        let stalled = chaos.execute(&q()).unwrap();
        // 10 ms of work + 150 ms left in the stall window.
        assert_eq!(stalled.cost.as_millis(), 160);
    }

    #[test]
    fn transient_failures_fire_then_clear_on_retry() {
        let _g = lock();
        let inner = backend(100);
        // Rate 1.0 on attempt parity via hash is not controllable, so use
        // rate 1.0: every attempt fails.
        let all_fail = ChaosBackend::new(
            &inner,
            FaultPlan::builder(4).transient_failures(1.0).build(),
        );
        ids_obs::set_vnow(SimTime::ZERO);
        let err = all_fail.execute(&q()).unwrap_err();
        assert!(err.is_transient());
        // At a moderate rate, retrying the same query eventually succeeds
        // because the attempt counter advances the hash axis.
        let flaky = ChaosBackend::new(
            &inner,
            FaultPlan::builder(4).transient_failures(0.6).build(),
        );
        let ok = (0..32).any(|_| flaky.execute(&q()).is_ok());
        assert!(ok, "32 attempts at rate 0.6 virtually surely succeed once");
    }

    #[test]
    fn buffer_pressure_evicts_attached_pool_once_per_window() {
        let _g = lock();
        let db = Database::new();
        db.register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..50_000).map(|i| i as f64)))
                .build()
                .unwrap(),
        );
        let disk = DiskBackend::over(db);
        let plan = FaultPlan::builder(5)
            .buffer_pressure(SimTime::from_millis(100), SimDuration::from_millis(50))
            .build();
        let chaos = ChaosBackend::new(&disk, plan).with_pressure_target(&disk);
        // Warm the pool outside the window.
        ids_obs::set_vnow(SimTime::from_millis(10));
        chaos.execute(&q()).unwrap();
        let warm = chaos.execute(&q()).unwrap();
        assert_eq!(warm.footprint.pages_cold, 0, "pool is warm");
        // Inside the window the pool is evicted: pages go cold again.
        ids_obs::set_vnow(SimTime::from_millis(120));
        let pressured = chaos.execute(&q()).unwrap();
        assert!(pressured.footprint.pages_cold > 0, "flush re-chilled pool");
        // But only once per window: the next query re-warms.
        let rewarmed = chaos.execute(&q()).unwrap();
        assert_eq!(rewarmed.footprint.pages_cold, 0);
    }

    #[test]
    fn retrying_backend_rides_through_injected_failures() {
        let _g = lock();
        use ids_engine::{ResultQuality, RetryPolicy, RetryingBackend};
        let inner = backend(100);
        let chaos = ChaosBackend::new(
            &inner,
            FaultPlan::builder(6).transient_failures(0.4).build(),
        );
        let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
        ids_obs::set_vnow(SimTime::ZERO);
        let mut successes = 0;
        for _ in 0..50 {
            if let Ok(out) = retrying.execute(&q()) {
                successes += 1;
                assert_eq!(out.scalar_count(), Some(100));
                assert_eq!(out.quality, ResultQuality::Exact);
            }
        }
        assert!(
            successes >= 45,
            "3 attempts at rate 0.4 fail ~6% of the time, got {successes}/50"
        );
    }
}
