//! Deterministic horizontal partitioning of columnar tables.
//!
//! Three schemes, all pure functions of `(scheme, seed, cell value |
//! row index, shard count)` — never of thread count, table registration
//! order, or dictionary encoding:
//!
//! - [`PartitionScheme::HashRows`] — round-robin on the row index (the
//!   synthetic-key hash partition the engine's `Cluster` facade uses);
//!   exactly balanced, the default when no key column is natural.
//! - [`PartitionScheme::HashKey`] — SplitMix64 over the canonical
//!   [`cell_key`] of one column; co-locates equal keys, so per-key
//!   aggregates shard cleanly. String keys hash their *bytes* — the
//!   dictionary code is partition-local and never leaks into routing.
//! - [`PartitionScheme::Range`] — equal-width ranges over the column's
//!   build-time min/max stats; preserves clustering, so per-shard zone
//!   maps stay tight on range predicates. NaN rows and degenerate
//!   domains route to shard 0 deterministically.
//!
//! Every scheme is **total** (each row lands on exactly one shard) and
//! the shards are **disjoint** — the property tests in
//! `tests/properties.rs` fuzz both, plus same-seed repartition
//! stability.

use std::sync::Arc;

use ids_engine::distributed::{cell_key, shard_of_hash, shard_of_row, take_table};
use ids_engine::{Column, Database, EngineError, EngineResult, Table};

/// How a table's rows are assigned to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Round-robin on row index: balanced, clustering-destroying.
    HashRows,
    /// Hash of the named column's canonical cell key: equal keys
    /// co-locate.
    HashKey(Arc<str>),
    /// Equal-width ranges of the named numeric column: clustering (and
    /// zone-map tightness) preserved.
    Range(Arc<str>),
}

impl PartitionScheme {
    /// Hash-key scheme over `column`.
    pub fn hash_key(column: impl Into<Arc<str>>) -> PartitionScheme {
        PartitionScheme::HashKey(column.into())
    }

    /// Range scheme over `column`.
    pub fn range(column: impl Into<Arc<str>>) -> PartitionScheme {
        PartitionScheme::Range(column.into())
    }

    /// Short label for reports and span args.
    pub fn describe(&self) -> String {
        match self {
            PartitionScheme::HashRows => "hash-rows".to_string(),
            PartitionScheme::HashKey(c) => format!("hash-key({c})"),
            PartitionScheme::Range(c) => format!("range({c})"),
        }
    }
}

/// Per-shard row selections for one table: `out[s]` holds the source
/// row indices (ascending) that land on shard `s`. Total and disjoint
/// by construction.
pub fn shard_assignments(
    table: &Table,
    scheme: &PartitionScheme,
    seed: u64,
    shards: usize,
) -> EngineResult<Vec<Vec<usize>>> {
    let shards = shards.max(1);
    let mut selections: Vec<Vec<usize>> = vec![Vec::new(); shards];
    match scheme {
        PartitionScheme::HashRows => {
            for row in 0..table.rows() {
                selections[shard_of_row(row, shards)].push(row);
            }
        }
        PartitionScheme::HashKey(column) => {
            let col = table.column(column)?;
            for row in 0..table.rows() {
                selections[shard_of_hash(seed, cell_key(col, row), shards)].push(row);
            }
        }
        PartitionScheme::Range(column) => {
            let col = table.column(column)?;
            if matches!(col, Column::Str { .. }) {
                return Err(EngineError::TypeMismatch {
                    column: column.to_string(),
                    expected: "a numeric column for range partitioning",
                });
            }
            let stats = table.stats().column(column);
            let (min, max) = stats.and_then(|s| s.min.zip(s.max)).unwrap_or((0.0, 0.0));
            let width = (max - min) / shards as f64;
            for row in 0..table.rows() {
                let shard = match col.f64_at(row) {
                    // NaN (the engine's null) and degenerate domains
                    // route to shard 0 — deterministic, never dropped.
                    Some(x) if !x.is_nan() && width > 0.0 => {
                        (((x - min) / width) as usize).min(shards - 1)
                    }
                    _ => 0,
                };
                selections[shard].push(row);
            }
        }
    }
    Ok(selections)
}

/// Partitions one table into `shards` shard tables (same name and
/// schema; per-shard stats and lazy zone maps are rebuilt from the
/// shard's own rows, so range predicates prune per shard).
pub fn partition_table(
    table: &Table,
    scheme: &PartitionScheme,
    seed: u64,
    shards: usize,
) -> EngineResult<Vec<Table>> {
    shard_assignments(table, scheme, seed, shards)?
        .iter()
        .map(|rows| take_table(table, rows))
        .collect()
}

/// Partitions every table of `db` under one scheme, returning one
/// database per shard. Tables are processed in sorted-name order so
/// shard-local table ids are reproducible.
pub fn partition_database(
    db: &Database,
    scheme: &PartitionScheme,
    seed: u64,
    shards: usize,
) -> EngineResult<Vec<Database>> {
    let shards = shards.max(1);
    let out: Vec<Database> = (0..shards).map(|_| Database::new()).collect();
    let mut names = db.table_names();
    names.sort();
    for name in names {
        let table = db.table(&name)?;
        for (shard, part) in partition_table(&table, scheme, seed, shards)?
            .into_iter()
            .enumerate()
        {
            out[shard].register(part);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::{ColumnBuilder, TableBuilder};

    fn table(rows: usize) -> Table {
        TableBuilder::new("t")
            .column("k", ColumnBuilder::int((0..rows).map(|i| (i % 7) as i64)))
            .column("v", ColumnBuilder::float((0..rows).map(|i| i as f64)))
            .column(
                "s",
                ColumnBuilder::str((0..rows).map(|i| if i % 2 == 0 { "a" } else { "b" })),
            )
            .build()
            .unwrap()
    }

    fn assert_total_and_disjoint(selections: &[Vec<usize>], rows: usize) {
        let mut seen = vec![false; rows];
        for sel in selections {
            for &row in sel {
                assert!(!seen[row], "row {row} assigned twice");
                seen[row] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every row must land on a shard");
    }

    #[test]
    fn all_schemes_are_total_and_disjoint() {
        let t = table(1_000);
        for scheme in [
            PartitionScheme::HashRows,
            PartitionScheme::hash_key("k"),
            PartitionScheme::hash_key("s"),
            PartitionScheme::range("v"),
        ] {
            for shards in [1usize, 4, 16] {
                let sel = shard_assignments(&t, &scheme, 42, shards).unwrap();
                assert_eq!(sel.len(), shards);
                assert_total_and_disjoint(&sel, 1_000);
            }
        }
    }

    #[test]
    fn hash_key_colocates_equal_keys() {
        let t = table(700);
        let sel = shard_assignments(&t, &PartitionScheme::hash_key("k"), 7, 4).unwrap();
        let col = t.column("k").unwrap();
        for (shard, rows) in sel.iter().enumerate() {
            for &row in rows {
                let key = col.as_int().unwrap()[row];
                // Every row with this key value must be on this shard.
                let home = sel
                    .iter()
                    .position(|s| s.iter().any(|&r| col.as_int().unwrap()[r] == key))
                    .unwrap();
                assert_eq!(home, shard, "key {key} split across shards");
            }
        }
    }

    #[test]
    fn range_preserves_clustering() {
        let t = table(1_024);
        let sel = shard_assignments(&t, &PartitionScheme::range("v"), 0, 4).unwrap();
        // v is the row index: shard s must hold a contiguous run.
        for rows in &sel {
            assert!(rows.windows(2).all(|w| w[1] == w[0] + 1));
        }
        assert_eq!(sel[0][0], 0);
        assert_eq!(*sel[3].last().unwrap(), 1_023);
    }

    #[test]
    fn range_routes_nan_to_shard_zero() {
        let t = TableBuilder::new("n")
            .column(
                "v",
                ColumnBuilder::float([f64::NAN, 5.0, f64::NAN, 9.0, 1.0]),
            )
            .build()
            .unwrap();
        let sel = shard_assignments(&t, &PartitionScheme::range("v"), 0, 2).unwrap();
        assert_total_and_disjoint(&sel, 5);
        assert!(sel[0].contains(&0) && sel[0].contains(&2), "NaN → shard 0");
    }

    #[test]
    fn range_on_strings_is_a_type_error() {
        let t = table(10);
        let err = shard_assignments(&t, &PartitionScheme::range("s"), 0, 2).unwrap_err();
        assert!(matches!(err, EngineError::TypeMismatch { .. }));
    }

    #[test]
    fn more_shards_than_rows_leaves_empty_shards() {
        let t = table(3);
        for scheme in [
            PartitionScheme::HashRows,
            PartitionScheme::hash_key("k"),
            PartitionScheme::range("v"),
        ] {
            let parts = partition_table(&t, &scheme, 1, 16).unwrap();
            assert_eq!(parts.len(), 16);
            assert_eq!(parts.iter().map(Table::rows).sum::<usize>(), 3);
            assert!(parts.iter().any(|p| p.rows() == 0));
            // Empty shard tables keep the schema.
            for p in &parts {
                assert_eq!(p.width(), 3);
            }
        }
    }

    #[test]
    fn same_seed_repartition_is_stable() {
        let t = table(500);
        let scheme = PartitionScheme::hash_key("v");
        let a = shard_assignments(&t, &scheme, 99, 8).unwrap();
        let b = shard_assignments(&t, &scheme, 99, 8).unwrap();
        assert_eq!(a, b);
        let c = shard_assignments(&t, &scheme, 100, 8).unwrap();
        assert_ne!(a, c, "a different seed reshuffles hash-key routing");
    }
}
