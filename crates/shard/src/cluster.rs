//! Replicated sharded cluster: availability routing on top of the
//! scatter-gather executor.
//!
//! Replication here is an *availability* property, not extra bytes:
//! every replica of a shard shares one partition image (this is a
//! simulator), striped across nodes exactly as the engine's
//! [`replica_node`] layout describes — nodes `0..shards` hold copy 0,
//! `shards..2*shards` copy 1, and so on. A query stays **exact** under
//! any node-loss pattern that leaves each shard one survivor; when
//! every replica of a shard is lost the plan fails with the typed
//! [`EngineError::ShardUnavailable`](ids_engine::EngineError) instead
//! of extrapolating an estimate from the survivors.

use ids_engine::distributed::{replica_node, surviving_replica, ClusterParams};
use ids_engine::{CostParams, Database, EngineError, EngineResult, Query};

use crate::partition::{partition_database, PartitionScheme};
use crate::plan::{ScatterGather, ShardOutcome};

/// A sharded, replicated fleet database.
#[derive(Debug)]
pub struct ShardedCluster {
    executor: ScatterGather,
    scheme: PartitionScheme,
    seed: u64,
    replicas: usize,
}

impl ShardedCluster {
    /// Partitions `db` under `scheme` into `shards` single-replica
    /// shards.
    pub fn partition(
        db: &Database,
        scheme: PartitionScheme,
        seed: u64,
        shards: usize,
    ) -> EngineResult<ShardedCluster> {
        let parts = partition_database(db, &scheme, seed, shards)?;
        Ok(ShardedCluster {
            executor: ScatterGather::over(parts),
            scheme,
            seed,
            replicas: 1,
        })
    }

    /// Adds `replicas` copies of every shard (striped node layout).
    pub fn with_replicas(mut self, replicas: usize) -> ShardedCluster {
        self.replicas = replicas.max(1);
        self
    }

    /// Replaces the per-node cost calibration.
    pub fn with_costs(mut self, costs: CostParams) -> ShardedCluster {
        self.executor = self.executor.with_costs(costs);
        self
    }

    /// Replaces the coordination cost model.
    pub fn with_params(mut self, params: ClusterParams) -> ShardedCluster {
        self.executor = self.executor.with_params(params);
        self
    }

    /// Runs shards on up to `threads` worker threads (wall-clock only;
    /// results and virtual costs are thread-count invariant).
    pub fn with_threads(mut self, threads: usize) -> ShardedCluster {
        self.executor = self.executor.with_threads(threads);
        self
    }

    /// The partition scheme in force.
    pub fn scheme(&self) -> &PartitionScheme {
        &self.scheme
    }

    /// The partitioning seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.executor.shards()
    }

    /// Replicas per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total nodes (`shards × replicas`).
    pub fn nodes(&self) -> usize {
        self.shards() * self.replicas
    }

    /// The scatter-gather executor (and through it the shard
    /// databases).
    pub fn executor(&self) -> &ScatterGather {
        &self.executor
    }

    /// Executes `query` with every node healthy.
    pub fn execute(&self, query: &Query) -> EngineResult<ShardOutcome> {
        self.executor.execute(query)
    }

    /// Executes with the nodes in `lost` excluded. Routing is
    /// deterministic — each shard answers from its lowest-numbered
    /// surviving replica — and the result is exact whenever every shard
    /// keeps one survivor. Otherwise: typed
    /// [`ShardUnavailable`](EngineError::ShardUnavailable), which
    /// `is_transient()` since lost nodes recover at the end of their
    /// fault window.
    pub fn execute_excluding(&self, query: &Query, lost: &[usize]) -> EngineResult<ShardOutcome> {
        let shards = self.shards();
        for shard in 0..shards {
            if surviving_replica(shard, shards, self.replicas, lost).is_none() {
                return Err(EngineError::ShardUnavailable {
                    shard,
                    replicas: self.replicas,
                });
            }
        }
        self.executor.execute(query)
    }

    /// The nodes hosting `shard`, lowest replica first.
    pub fn nodes_of_shard(&self, shard: usize) -> Vec<usize> {
        (0..self.replicas)
            .map(|r| replica_node(shard, self.shards(), r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::exec::run_query;
    use ids_engine::{ColumnBuilder, Predicate, TableBuilder};

    fn db(rows: usize) -> Database {
        let db = Database::new();
        db.register(
            TableBuilder::new("t")
                .column("k", ColumnBuilder::int((0..rows).map(|i| (i % 13) as i64)))
                .column("v", ColumnBuilder::float((0..rows).map(|i| i as f64)))
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn exact_under_partial_node_loss() {
        let source = db(8_000);
        let cluster = ShardedCluster::partition(&source, PartitionScheme::hash_key("k"), 3, 4)
            .unwrap()
            .with_replicas(2);
        assert_eq!(cluster.nodes(), 8);
        let q = Query::count("t", Predicate::True);
        let (expected, _) = run_query(&source, &q).unwrap();
        // Lose one copy of shards 0 and 3: still exact.
        let out = cluster.execute_excluding(&q, &[0, 7]).unwrap();
        assert_eq!(out.result, expected);
    }

    #[test]
    fn losing_all_replicas_is_typed_and_transient() {
        let source = db(1_000);
        let cluster = ShardedCluster::partition(&source, PartitionScheme::HashRows, 0, 4)
            .unwrap()
            .with_replicas(2);
        // Shard 1 lives on nodes 1 and 5.
        assert_eq!(cluster.nodes_of_shard(1), vec![1, 5]);
        let err = cluster
            .execute_excluding(&Query::count("t", Predicate::True), &[1, 5])
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::ShardUnavailable {
                shard: 1,
                replicas: 2
            }
        );
        assert!(err.is_transient());
    }
}
