//! Sharded progressive refinement: online aggregation across a shard
//! set with explicit, summed error bounds.
//!
//! Each shard runs the engine's [`ProgressiveExecutor`] over its own
//! block permutation (seed `splitmix64(seed ^ shard)`, so shards sample
//! independently but deterministically). The per-shard refinement
//! sequences are then merged **stepwise** in fixed shard order:
//!
//! - estimates merge like any partial aggregate
//!   ([`merge_partials`]): COUNT sums, histograms sum bin-wise;
//! - deterministic error bounds **sum** — each shard's estimate is off
//!   by at most its own bound, so the merged estimate is off by at most
//!   the total;
//! - confidence intervals sum endpoint-wise (a conservative union
//!   bound — the merged interval contains the truth whenever every
//!   per-shard interval does);
//! - elapsed virtual time is the *slowest* shard plus the coordination
//!   term, matching the exact scatter-gather cost model;
//! - covered fraction is the rows-weighted mean across shards.
//!
//! Shards quantize fractions to whole zone-map blocks, so their
//! sequences can differ in length (an empty shard emits a single exact
//! step). Shorter sequences are padded by repeating their final — exact
//! — refinement, which keeps every merged step sound. The final merged
//! step is byte-identical to the exact scatter-gather answer.

use ids_engine::distributed::{merge_partials, splitmix64, ClusterParams};
use ids_engine::progressive::{ConfidenceInterval, ProgressiveExecutor, Refinement};
use ids_engine::{Database, EngineResult, Query};
use ids_simclock::SimDuration;

/// Progressive executor over a shard set.
#[derive(Debug)]
pub struct ShardedProgressive {
    shards: Vec<Database>,
    seed: u64,
    schedule: Option<Vec<f64>>,
    confidence: Option<f64>,
    params: ClusterParams,
}

impl ShardedProgressive {
    /// Executor over `shards` databases with the engine's default
    /// schedule and confidence.
    pub fn over(shards: Vec<Database>) -> ShardedProgressive {
        ShardedProgressive {
            shards,
            seed: 0,
            schedule: None,
            confidence: None,
            params: ClusterParams::default_cluster(),
        }
    }

    /// Base seed; shard `s` permutes its blocks with
    /// `splitmix64(seed ^ s)`.
    pub fn with_seed(mut self, seed: u64) -> ShardedProgressive {
        self.seed = seed;
        self
    }

    /// Overrides the refinement schedule on every shard.
    pub fn with_schedule(mut self, schedule: Vec<f64>) -> ShardedProgressive {
        self.schedule = Some(schedule);
        self
    }

    /// Overrides the confidence-interval coverage target.
    pub fn with_confidence(mut self, confidence: f64) -> ShardedProgressive {
        self.confidence = Some(confidence);
        self
    }

    /// Replaces the coordination cost model.
    pub fn with_params(mut self, params: ClusterParams) -> ShardedProgressive {
        self.params = params;
        self
    }

    /// Runs `query` progressively on every shard and merges the
    /// refinement sequences stepwise.
    pub fn run(&self, query: &Query) -> EngineResult<Vec<Refinement>> {
        let mut per_shard: Vec<Vec<Refinement>> = Vec::with_capacity(self.shards.len());
        let mut shard_rows: Vec<f64> = Vec::with_capacity(self.shards.len());
        for (shard, db) in self.shards.iter().enumerate() {
            let mut exec = ProgressiveExecutor::new(db.clone())
                .with_seed(splitmix64(self.seed ^ shard as u64));
            if let Some(schedule) = &self.schedule {
                exec = exec.with_schedule(schedule.clone());
            }
            if let Some(confidence) = self.confidence {
                exec = exec.with_confidence(confidence);
            }
            per_shard.push(exec.run(query)?);
            shard_rows.push(db.table(query.table())?.rows() as f64);
        }
        Ok(self.merge(per_shard, &shard_rows))
    }

    /// Stepwise merge in fixed shard order, padding shorter sequences
    /// with their final (exact) refinement.
    fn merge(&self, per_shard: Vec<Vec<Refinement>>, shard_rows: &[f64]) -> Vec<Refinement> {
        let steps = per_shard.iter().map(Vec::len).max().unwrap_or(0);
        let total_rows: f64 = shard_rows.iter().sum();
        let mut out = Vec::with_capacity(steps);
        for step in 0..steps {
            let mut estimate = None;
            let mut intervals: Vec<ConfidenceInterval> = Vec::new();
            let mut error_bound = 0.0;
            let mut slowest = SimDuration::ZERO;
            let mut covered_rows = 0.0;
            let mut merge_groups = 0u64;
            for (shard, seq) in per_shard.iter().enumerate() {
                let r = &seq[step.min(seq.len() - 1)];
                merge_groups += r.estimate.len() as u64;
                estimate = Some(match estimate.take() {
                    None => r.estimate.clone(),
                    Some(acc) => merge_partials(acc, r.estimate.clone())
                        .expect("shards answer one query, so partial shapes match"),
                });
                if intervals.is_empty() {
                    intervals = r.intervals.clone();
                } else {
                    for (acc, iv) in intervals.iter_mut().zip(&r.intervals) {
                        acc.lo += iv.lo;
                        acc.hi += iv.hi;
                    }
                }
                error_bound += r.error_bound;
                slowest = slowest.max(r.elapsed);
                covered_rows += r.fraction * shard_rows[shard];
            }
            let Some(estimate) = estimate else { break };
            let coordination = self.params.coordination(per_shard.len(), merge_groups);
            out.push(Refinement {
                fraction: if total_rows > 0.0 {
                    covered_rows / total_rows
                } else {
                    1.0
                },
                estimate,
                intervals,
                error_bound,
                elapsed: slowest + coordination,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_database, PartitionScheme};
    use crate::plan::ScatterGather;
    use ids_engine::progressive::{interval_coverage, is_anytime_consistent};
    use ids_engine::{BinSpec, ColumnBuilder, Predicate, TableBuilder};
    use ids_simclock::rng::SimRng;

    fn db(rows: usize) -> Database {
        let mut values: Vec<f64> = (0..rows).map(|i| (i % 400) as f64).collect();
        SimRng::seed(5).shuffle(&mut values);
        let db = Database::new();
        db.register(
            TableBuilder::new("pts")
                .column("x", ColumnBuilder::float(values))
                .build()
                .unwrap(),
        );
        db
    }

    fn query() -> Query {
        Query::histogram(
            "pts",
            BinSpec::new("x", 0.0, 400.0, 8),
            Predicate::between("x", 40.0, 360.0),
        )
    }

    #[test]
    fn final_step_matches_exact_scatter_gather() {
        let source = db(40_000);
        for shards in [1usize, 4, 16] {
            let parts = partition_database(&source, &PartitionScheme::HashRows, 0, shards).unwrap();
            let exact = ScatterGather::over(parts.clone())
                .execute(&query())
                .unwrap();
            let refinements = ShardedProgressive::over(parts)
                .with_seed(9)
                .run(&query())
                .unwrap();
            assert!(
                is_anytime_consistent(&refinements, &exact.result),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn merged_intervals_bracket_truth() {
        let source = db(80_000);
        let parts = partition_database(&source, &PartitionScheme::HashRows, 0, 4).unwrap();
        let exact = ScatterGather::over(parts.clone())
            .execute(&query())
            .unwrap();
        let refinements = ShardedProgressive::over(parts).run(&query()).unwrap();
        let coverage = interval_coverage(&refinements, &exact.result);
        assert!(coverage >= 0.95, "coverage {coverage}");
    }

    #[test]
    fn empty_shards_pad_cleanly() {
        // 3 rows over 8 shards: most shards are empty and emit a single
        // exact step; padding must keep every merged step sound.
        let source = db(3);
        let parts = partition_database(&source, &PartitionScheme::HashRows, 0, 8).unwrap();
        let q = Query::count("pts", Predicate::True);
        let exact = ScatterGather::over(parts.clone()).execute(&q).unwrap();
        let refinements = ShardedProgressive::over(parts).run(&q).unwrap();
        assert!(is_anytime_consistent(&refinements, &exact.result));
        assert_eq!(refinements.last().unwrap().estimate.scalar_count(), Some(3));
    }

    #[test]
    fn empty_table_is_a_single_exact_step() {
        let source = Database::new();
        source.register(
            TableBuilder::new("pts")
                .column("x", ColumnBuilder::float(Vec::<f64>::new()))
                .build()
                .unwrap(),
        );
        let parts = partition_database(&source, &PartitionScheme::HashRows, 0, 4).unwrap();
        let q = Query::count("pts", Predicate::True);
        let refinements = ShardedProgressive::over(parts).run(&q).unwrap();
        assert_eq!(refinements.len(), 1);
        assert_eq!(refinements[0].fraction, 1.0);
        assert_eq!(refinements[0].error_bound, 0.0);
        assert_eq!(refinements[0].estimate.scalar_count(), Some(0));
    }

    #[test]
    fn error_bounds_sum_and_shrink() {
        let source = db(64_000);
        let parts = partition_database(&source, &PartitionScheme::HashRows, 0, 4).unwrap();
        let refinements = ShardedProgressive::over(parts).run(&query()).unwrap();
        assert!(refinements.len() > 2);
        for w in refinements.windows(2) {
            assert!(w[0].error_bound >= w[1].error_bound);
            assert!(w[0].elapsed <= w[1].elapsed);
        }
        assert_eq!(refinements.last().unwrap().error_bound, 0.0);
    }
}
