//! Sharded scatter-gather execution for million-session fleets.
//!
//! The paper's scalability guideline (§3.2) says an interactive backend
//! must hold its latency distribution as sessions and rows grow — and
//! the only lever past a single node is horizontal partitioning. This
//! crate is that lever, built on the engine's canonical shard-plan
//! primitives (`ids_engine::distributed`) so a row lands on the same
//! shard no matter which layer asked:
//!
//! - [`partition`] — deterministic hash-rows / hash-key / range
//!   partitioning of columnar tables, each shard with its own rebuilt
//!   stats and zone maps ([`PartitionScheme`], [`partition_database`]).
//! - [`plan`] — the scatter-gather executor ([`ScatterGather`]): fused
//!   kernels run per shard on a bounded worker pool, partials merge in
//!   fixed shard order, per-shard obs spans feed the telemetry
//!   lakehouse ("p99 by shard").
//! - [`cluster`] — replicated routing ([`ShardedCluster`]): exact
//!   answers while every shard keeps one surviving replica, typed
//!   `ShardUnavailable` when one does not.
//! - [`progressive`] — sharded online aggregation
//!   ([`ShardedProgressive`]): per-shard block-sampled refinement with
//!   summed error bounds, final step byte-identical to the exact plan.
//!
//! Determinism discipline, everywhere: shard assignment is a pure
//! function of `(scheme, seed, value, shards)`; worker threads decide
//! only *when* a shard runs; merges happen in fixed shard order. A
//! scenario therefore renders byte-identical results, metrics, and
//! telemetry at 1, 4, or 16 shards and any thread count — which is
//! exactly what the simtest `shard-invariance` oracle replays.

#![warn(missing_docs)]

pub mod cluster;
pub mod partition;
pub mod plan;
pub mod progressive;

pub use cluster::ShardedCluster;
pub use partition::{partition_database, partition_table, shard_assignments, PartitionScheme};
pub use plan::{ScatterGather, ShardExecution, ShardOutcome};
pub use progressive::ShardedProgressive;
