//! Deterministic scatter-gather execution over a set of shard
//! databases.
//!
//! The executor scatters one mergeable query (COUNT or histogram — the
//! shapes the engine's fused filter+bin / filter+probe kernels serve)
//! to every shard, runs the shards on a bounded worker pool, and
//! gathers the partials **in fixed shard order**. Worker threads only
//! decide *when* a shard runs, never *what* it contributes or *where*
//! its partial sits in the merge — each shard writes into its own
//! pre-assigned slot — so the merged result, the virtual costs, and the
//! recorded telemetry are byte-identical at any thread count.
//!
//! Virtual time: each shard's compute cost is priced by the engine's
//! [`LinearCostModel`] on that shard's real footprint; plan latency is
//! the *slowest* shard plus the coordination term
//! ([`ClusterParams::coordination`]) that does not parallelize. That is
//! exactly the shape the paper's scalability guideline predicts: near
//! linear to ~8 shards, then coordination-bound.

use ids_engine::distributed::{merge_partials, require_mergeable, ClusterParams};
use ids_engine::exec::run_query;
use ids_engine::{
    CostModel, CostParams, Database, EngineError, EngineResult, LinearCostModel, Query,
    QueryFootprint, ResultSet,
};
use ids_simclock::SimDuration;

/// One shard-local execution: a partial result plus its footprint.
type ShardPartial = EngineResult<(ResultSet, QueryFootprint)>;
/// The per-shard runner [`ScatterGather::scatter_with`] fans out.
type ShardRunner<'a> = &'a (dyn Fn(&Database, &Query) -> ShardPartial + Sync);

/// One shard's contribution to a scatter-gather plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardExecution {
    /// Shard index (also its merge position).
    pub shard: usize,
    /// Rows scanned on this shard.
    pub rows_scanned: u64,
    /// Zone-map blocks this shard pruned without touching data.
    pub blocks_pruned: u64,
    /// Virtual compute cost of this shard's partial.
    pub cost: SimDuration,
}

/// Outcome of one scatter-gather execution.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Merged result — byte-identical to single-table execution.
    pub result: ResultSet,
    /// Virtual latency: slowest shard + coordination.
    pub elapsed: SimDuration,
    /// Sum of every shard's compute plus coordination (the throughput
    /// denominator).
    pub total_work: SimDuration,
    /// Per-shard breakdown, in shard order.
    pub per_shard: Vec<ShardExecution>,
}

impl ShardOutcome {
    /// Number of shards that executed.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }
}

/// Scatter-gather executor over pre-partitioned shard databases.
#[derive(Debug)]
pub struct ScatterGather {
    shards: Vec<Database>,
    model: LinearCostModel,
    params: ClusterParams,
    threads: usize,
}

impl ScatterGather {
    /// Executor over `shards` databases with disk-calibrated node costs
    /// and the default coordination model.
    pub fn over(shards: Vec<Database>) -> ScatterGather {
        ScatterGather {
            shards,
            model: LinearCostModel::new(CostParams::disk_default()),
            params: ClusterParams::default_cluster(),
            threads: 1,
        }
    }

    /// Replaces the per-node cost calibration.
    pub fn with_costs(mut self, costs: CostParams) -> ScatterGather {
        self.model = LinearCostModel::new(costs);
        self
    }

    /// Replaces the coordination cost model.
    pub fn with_params(mut self, params: ClusterParams) -> ScatterGather {
        self.params = params;
        self
    }

    /// Runs shards on up to `threads` OS worker threads. Purely a
    /// wall-clock knob: results, virtual costs, and telemetry do not
    /// depend on it.
    pub fn with_threads(mut self, threads: usize) -> ScatterGather {
        self.threads = threads.max(1);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard databases, in shard order.
    pub fn partitions(&self) -> &[Database] {
        &self.shards
    }

    /// Executes `query` on every shard and merges the partials in shard
    /// order. Non-mergeable shapes are rejected with the engine's typed
    /// error before any shard runs.
    pub fn execute(&self, query: &Query) -> EngineResult<ShardOutcome> {
        require_mergeable(query)?;
        let partials = self.scatter_with(query, &|db, q| run_query(db, q))?;
        self.gather(query, partials)
    }

    /// Like [`ScatterGather::execute`], but each shard's fragment goes
    /// through the engine's cost-based planner (predicate reordering,
    /// fused/unfused and parallel bin paths) instead of the fixed
    /// kernel path. The planner's footprint-identity guarantee makes
    /// the merged result, virtual costs, and telemetry byte-identical
    /// to `execute` — planning only changes *how* partials compute.
    pub fn execute_planned(&self, query: &Query) -> EngineResult<ShardOutcome> {
        require_mergeable(query)?;
        let partials = self.scatter_with(query, &|db, q| {
            let out = ids_engine::plan(db, q)?.execute(db)?;
            Ok((out.result, out.footprint))
        })?;
        self.gather(query, partials)
    }

    /// Renders every shard's plan as one stable text tree, in fixed
    /// shard order — byte-identical across runs and thread counts.
    pub fn explain(&self, query: &Query) -> EngineResult<String> {
        require_mergeable(query)?;
        let mut out = String::new();
        for (shard, db) in self.shards.iter().enumerate() {
            let plan = ids_engine::plan(db, query)?;
            out.push_str(&format!("shard {shard}:\n"));
            for line in plan.explain().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        Ok(out)
    }

    /// Runs `query` on every shard via `run`, returning
    /// `(partial, footprint)` per shard in shard order. Slot-indexed:
    /// worker threads pull shards off a shared cursor but each writes
    /// only its own slot.
    fn scatter_with(
        &self,
        query: &Query,
        run: ShardRunner<'_>,
    ) -> EngineResult<Vec<(ResultSet, QueryFootprint)>> {
        let mut slots: Vec<Option<ShardPartial>> = (0..self.shards.len()).map(|_| None).collect();
        let workers = self.threads.min(self.shards.len()).max(1);
        if workers == 1 {
            for (shard, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run(&self.shards[shard], query));
            }
        } else {
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let results = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let shard = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if shard >= self.shards.len() {
                                break;
                            }
                            local.push((shard, run(&self.shards[shard], query)));
                        }
                        results.lock().unwrap().extend(local);
                    });
                }
            });
            for (shard, result) in results.into_inner().unwrap() {
                slots[shard] = Some(result);
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every shard slot is filled"))
            .collect()
    }

    /// Merges shard partials in fixed shard order, prices each shard's
    /// footprint, and records one obs span per shard so the telemetry
    /// lakehouse can answer "p99 by shard".
    fn gather(
        &self,
        query: &Query,
        partials: Vec<(ResultSet, QueryFootprint)>,
    ) -> EngineResult<ShardOutcome> {
        let mut slowest = SimDuration::ZERO;
        let mut total_work = SimDuration::ZERO;
        let mut merged: Option<ResultSet> = None;
        let mut merge_groups = 0u64;
        let mut per_shard = Vec::with_capacity(partials.len());
        let observe = ids_obs::enabled();
        for (shard, (partial, footprint)) in partials.into_iter().enumerate() {
            let cost = self.model.price(&footprint);
            slowest = slowest.max(cost);
            total_work += cost;
            merge_groups += partial.len() as u64;
            if observe {
                let rec = ids_obs::recorder();
                let track = rec.track(&format!("shard/{shard}"));
                rec.record_span(
                    "shard",
                    query.table().to_string(),
                    track,
                    ids_obs::vnow(),
                    cost,
                    vec![
                        ("tenant", ids_obs::ArgValue::Str(format!("shard/{shard}"))),
                        (
                            "rows_scanned",
                            ids_obs::ArgValue::U64(footprint.rows_scanned),
                        ),
                        ("cost_us", ids_obs::ArgValue::U64(cost.as_micros())),
                    ],
                );
            }
            per_shard.push(ShardExecution {
                shard,
                rows_scanned: footprint.rows_scanned,
                blocks_pruned: footprint.blocks_pruned,
                cost,
            });
            merged = Some(match merged.take() {
                None => partial,
                Some(acc) => merge_partials(acc, partial)?,
            });
        }
        let merged = merged.ok_or(EngineError::ShardUnavailable {
            shard: 0,
            replicas: 0,
        })?;
        let coordination = self.params.coordination(per_shard.len(), merge_groups);
        Ok(ShardOutcome {
            result: merged,
            elapsed: slowest + coordination,
            total_work: total_work + coordination,
            per_shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_database, PartitionScheme};
    use ids_engine::{BinSpec, ColumnBuilder, Predicate, TableBuilder};

    fn db(rows: usize) -> Database {
        let db = Database::new();
        db.register(
            TableBuilder::new("t")
                .column(
                    "x",
                    ColumnBuilder::float((0..rows).map(|i| (i % 500) as f64)),
                )
                .column("k", ColumnBuilder::int((0..rows).map(|i| (i % 11) as i64)))
                .build()
                .unwrap(),
        );
        db
    }

    fn hist() -> Query {
        Query::histogram(
            "t",
            BinSpec::new("x", 0.0, 500.0, 25),
            Predicate::between("x", 50.0, 450.0),
        )
    }

    #[test]
    fn merged_result_matches_single_table_at_any_thread_count() {
        let source = db(20_000);
        let (expected, _) = run_query(&source, &hist()).unwrap();
        for scheme in [
            PartitionScheme::HashRows,
            PartitionScheme::hash_key("k"),
            PartitionScheme::range("x"),
        ] {
            for shards in [1usize, 4, 16] {
                let parts = partition_database(&source, &scheme, 17, shards).unwrap();
                let mut outcomes = Vec::new();
                for threads in [1usize, 3, 8] {
                    let sg = ScatterGather::over(parts.clone()).with_threads(threads);
                    outcomes.push(sg.execute(&hist()).unwrap());
                }
                for out in &outcomes {
                    assert_eq!(out.result, expected, "{scheme:?} x{shards}");
                    assert_eq!(out.shards(), shards);
                    assert_eq!(out.elapsed, outcomes[0].elapsed);
                    assert_eq!(out.total_work, outcomes[0].total_work);
                }
            }
        }
    }

    #[test]
    fn per_shard_breakdown_covers_all_rows() {
        let source = db(9_999);
        let parts = partition_database(&source, &PartitionScheme::HashRows, 0, 4).unwrap();
        let out = ScatterGather::over(parts)
            .execute(&Query::count("t", Predicate::True))
            .unwrap();
        assert_eq!(out.result.scalar_count(), Some(9_999));
        assert_eq!(
            out.per_shard.iter().map(|s| s.rows_scanned).sum::<u64>(),
            9_999
        );
    }

    #[test]
    fn latency_is_slowest_shard_plus_coordination() {
        let source = db(40_000);
        let parts = partition_database(&source, &PartitionScheme::HashRows, 0, 8).unwrap();
        let sg = ScatterGather::over(parts);
        let out = sg.execute(&hist()).unwrap();
        let slowest = out.per_shard.iter().map(|s| s.cost).max().unwrap();
        assert!(out.elapsed > slowest);
        assert!(out.elapsed < out.total_work);
    }

    #[test]
    fn planned_dispatch_matches_unplanned_and_explains_stably() {
        let source = db(30_000);
        for query in [
            hist(),
            Query::count(
                "t",
                Predicate::and([
                    Predicate::ge("k", 2.0),
                    Predicate::between("x", 40.0, 120.0),
                ]),
            ),
        ] {
            let parts = partition_database(&source, &PartitionScheme::range("x"), 0, 4).unwrap();
            let sg = ScatterGather::over(parts);
            let plain = sg.execute(&query).unwrap();
            let explain = sg.explain(&query).unwrap();
            for threads in [1usize, 4] {
                let sg = sg_clone(&sg, threads);
                let planned = sg.execute_planned(&query).unwrap();
                assert_eq!(planned.result, plain.result);
                assert_eq!(
                    planned.elapsed, plain.elapsed,
                    "virtual cost must not drift"
                );
                assert_eq!(planned.total_work, plain.total_work);
                assert_eq!(planned.per_shard, plain.per_shard);
                assert_eq!(sg.explain(&query).unwrap(), explain);
            }
            assert!(explain.starts_with("shard 0:\n"));
            assert!(explain.contains("shard 3:\n"));
        }
    }

    fn sg_clone(sg: &ScatterGather, threads: usize) -> ScatterGather {
        ScatterGather::over(sg.partitions().to_vec()).with_threads(threads)
    }

    #[test]
    fn selects_are_rejected_before_any_shard_runs() {
        let source = db(100);
        let parts = partition_database(&source, &PartitionScheme::HashRows, 0, 2).unwrap();
        let sg = ScatterGather::over(parts);
        let select = Query::select("t", vec![], Predicate::True, Some(5), 0);
        assert!(matches!(
            sg.execute(&select),
            Err(EngineError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn range_partitioned_shards_prune_out_of_range_blocks() {
        let source = db(64_000);
        let parts = partition_database(&source, &PartitionScheme::range("x"), 0, 4).unwrap();
        let out = ScatterGather::over(parts)
            .execute(&Query::count("t", Predicate::between("x", 0.0, 100.0)))
            .unwrap();
        // Clustering preserved: shards whose range misses the predicate
        // prune everything via their zone maps.
        assert!(out.per_shard.iter().any(|s| s.blocks_pruned > 0));
    }
}
