//! Property tests over the sharding invariants: every partition scheme
//! is total and disjoint, same-seed repartitioning is stable, and
//! scatter-gather merges equal the single-table reference interpreter —
//! including on empty, all-NaN, and duplicate-key tables.

use ids_engine::exec::run_query;
use ids_engine::{BinSpec, ColumnBuilder, Database, Predicate, Query, Table, TableBuilder};
use ids_shard::{partition_database, shard_assignments, PartitionScheme, ScatterGather};
use proptest::prelude::*;

fn table(keys: &[i64], xs: &[f64]) -> Table {
    TableBuilder::new("t")
        .column("k", ColumnBuilder::int(keys.iter().copied()))
        .column("x", ColumnBuilder::float(xs.iter().copied()))
        .build()
        .expect("table")
}

fn database(keys: &[i64], xs: &[f64]) -> Database {
    let db = Database::new();
    db.register(table(keys, xs));
    db
}

fn schemes() -> Vec<PartitionScheme> {
    vec![
        PartitionScheme::HashRows,
        PartitionScheme::hash_key("k"),
        PartitionScheme::hash_key("x"),
        PartitionScheme::range("x"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheme assigns each row to exactly one shard (total) and
    /// no row to two shards (disjoint), for any shard count and seed.
    #[test]
    fn partitioning_is_total_and_disjoint(
        keys in prop::collection::vec(-50i64..50, 0..400),
        seed in 0u64..100_000,
        shards in 1usize..20,
    ) {
        let xs: Vec<f64> = keys.iter().map(|&k| k as f64 * 1.5).collect();
        let t = table(&keys, &xs);
        for scheme in schemes() {
            let sel = shard_assignments(&t, &scheme, seed, shards).expect("assign");
            prop_assert_eq!(sel.len(), shards);
            let mut seen = vec![false; keys.len()];
            for shard in &sel {
                for &row in shard {
                    prop_assert!(!seen[row], "row {} assigned twice", row);
                    seen[row] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "unassigned row under {:?}", scheme);
        }
    }

    /// Repartitioning with the same seed reproduces the same assignment
    /// bit for bit.
    #[test]
    fn same_seed_repartition_is_stable(
        keys in prop::collection::vec(-50i64..50, 1..300),
        seed in 0u64..100_000,
        shards in 1usize..17,
    ) {
        let xs: Vec<f64> = keys.iter().map(|&k| (k % 13) as f64).collect();
        let t = table(&keys, &xs);
        for scheme in schemes() {
            let a = shard_assignments(&t, &scheme, seed, shards).expect("assign");
            let b = shard_assignments(&t, &scheme, seed, shards).expect("assign");
            prop_assert_eq!(a, b);
        }
    }

    /// Scatter-gather over any scheme, shard count, and thread count
    /// merges to exactly the single-table reference answer.
    #[test]
    fn scatter_gather_equals_reference(
        keys in prop::collection::vec(-20i64..20, 0..500),
        seed in 0u64..100_000,
        shards in 1usize..17,
        threads in 1usize..5,
        lo in -30.0f64..30.0,
        width in 0.0f64..40.0,
    ) {
        let xs: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        let db = database(&keys, &xs);
        let queries = [
            Query::count("t", Predicate::between("x", lo, lo + width)),
            Query::histogram(
                "t",
                BinSpec::new("x", -20.0, 20.0, 8),
                Predicate::True,
            ),
        ];
        for scheme in schemes() {
            let parts = partition_database(&db, &scheme, seed, shards).expect("partition");
            let sg = ScatterGather::over(parts).with_threads(threads);
            for q in &queries {
                let (expected, _) = run_query(&db, q).expect("reference");
                let out = sg.execute(q).expect("scatter-gather");
                prop_assert_eq!(&out.result, &expected, "{:?} x{}", scheme, shards);
            }
        }
    }

    /// Degenerate tables — empty, all-NaN, or a single duplicated key —
    /// shard and merge exactly like the reference.
    #[test]
    fn degenerate_tables_match_reference(
        rows in 0usize..200,
        kind in 0usize..3,
        seed in 0u64..100_000,
        shards in 1usize..10,
    ) {
        let (keys, xs): (Vec<i64>, Vec<f64>) = match kind {
            0 => (Vec::new(), Vec::new()), // empty
            1 => (vec![7; rows], vec![f64::NAN; rows]), // all-NaN values
            _ => (vec![-3; rows], vec![1.25; rows]), // one duplicated key
        };
        let db = database(&keys, &xs);
        let q = Query::histogram("t", BinSpec::new("x", 0.0, 10.0, 4), Predicate::True);
        let (expected, _) = run_query(&db, &q).expect("reference");
        for scheme in [PartitionScheme::HashRows, PartitionScheme::hash_key("k")] {
            let parts = partition_database(&db, &scheme, seed, shards).expect("partition");
            let out = ScatterGather::over(parts).execute(&q).expect("scatter-gather");
            prop_assert_eq!(&out.result, &expected);
        }
    }
}
