//! Property tests for the behavior models: every seed must produce
//! well-formed sessions.

use ids_devices::DeviceKind;
use ids_simclock::SimDuration;
use ids_workload::composite::{simulate_session as composite_session, CompositeConfig};
use ids_workload::crossfilter::{
    compile_query_groups, simulate_session as xf_session, CrossfilterUi,
};
use ids_workload::datasets;
use ids_workload::scrolling::{demand_curve, simulate_session as scroll_session};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scroll sessions are well-formed for arbitrary seeds: monotone
    /// timestamps, consistent positions, bounded selections, monotone
    /// demand curves.
    #[test]
    fn scroll_sessions_are_well_formed(seed in 0u64..10_000, tuples in 100usize..800) {
        let s = scroll_session(0, seed, tuples);
        let recs = s.trace.records();
        prop_assert!(!recs.is_empty());
        prop_assert!(recs.windows(2).all(|w| w[0].timestamp_ms <= w[1].timestamp_ms));
        let end_px = tuples as f64 * ids_workload::scrolling::TUPLE_HEIGHT_PX;
        prop_assert!(recs.iter().all(|r| r.scroll_top >= 0.0 && r.scroll_top <= end_px + 1e-6));
        prop_assert!(s.selections.iter().all(|&sel| sel <= tuples as u64));
        prop_assert!(s.backscroll_passes >= s.backscrolled_selections);
        let demand = demand_curve(&s);
        prop_assert!(demand.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    /// Crossfilter sessions respect slider domains and compile to one
    /// query group per event with n−1 queries each.
    #[test]
    fn crossfilter_sessions_are_well_formed(seed in 0u64..10_000) {
        let ui = CrossfilterUi::for_road();
        for device in [DeviceKind::Mouse, DeviceKind::LeapMotion] {
            let s = xf_session(device, 0, seed, &ui);
            for r in s.trace.records() {
                prop_assert!(r.min_val <= r.max_val);
                let d = &ui.dims[r.slider_idx as usize];
                prop_assert!(r.min_val >= d.min - 1e-9);
                prop_assert!(r.max_val <= d.max + 1e-9);
            }
            let groups = compile_query_groups(&ui, &s.trace);
            prop_assert_eq!(groups.len(), s.trace.len());
            prop_assert!(groups.iter().all(|g| g.queries.len() == ui.dims.len() - 1));
        }
    }

    /// Composite sessions keep their invariants under arbitrary seeds:
    /// zoom leash, positive phase times, parseable URLs.
    #[test]
    fn composite_sessions_are_well_formed(seed in 0u64..10_000) {
        let config = CompositeConfig {
            min_duration: SimDuration::from_secs(120),
            request_model: None,
        };
        let s = composite_session(0, seed, &config);
        prop_assert!(!s.steps.is_empty());
        let start_zoom = s.steps[0].state.map.zoom;
        for step in &s.steps {
            prop_assert!((8..=15).contains(&step.state.map.zoom));
            prop_assert!((step.state.map.zoom - start_zoom).abs() <= 3);
            prop_assert!(step.request > SimDuration::ZERO);
            prop_assert!(step.explore > SimDuration::ZERO);
            prop_assert!(step.state.filter_count() <= 14);
            let url = step.state.to_url();
            prop_assert!(url.starts_with("https://"));
            prop_assert!(!url.contains('\t'));
        }
        prop_assert!(s.steps.windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// Dataset generators respect their declared domains at any size.
    #[test]
    fn datasets_respect_domains(seed in 0u64..1_000, rows in 10usize..2_000) {
        let movies = datasets::movies_sized(seed, rows);
        prop_assert_eq!(movies.rows(), rows);
        let ratings = movies.stats().column("rating").unwrap();
        prop_assert!(ratings.min.unwrap() >= 5.0 && ratings.max.unwrap() <= 9.6);

        let road = datasets::road_network_sized(seed, rows);
        let x = road.stats().column("x").unwrap();
        prop_assert!(x.min.unwrap() >= datasets::road_domain::X_MIN);
        prop_assert!(x.max.unwrap() <= datasets::road_domain::X_MAX);

        let listings = datasets::listings(seed, rows);
        let guests = listings.stats().column("guests").unwrap();
        prop_assert!(guests.min.unwrap() >= 1.0 && guests.max.unwrap() <= 8.0);
    }
}
