//! Interactive-workload simulation: the user side of the case studies.
//!
//! Section 4.1.3 of *Evaluating Interactive Data Systems* endorses
//! simulating users from plausible interaction sequences paced by HCI
//! timing models. This crate is that simulator, with one module per case
//! study plus shared infrastructure:
//!
//! - [`datasets`] — seeded synthetic stand-ins for the paper's datasets
//!   (IMDB top-4000 movies, the UCI 3-D road network at full cardinality,
//!   Airbnb-style listings), built as [`ids_engine`] tables.
//! - [`trace`] — the exact trace schemas of Table 5 with line-oriented
//!   serialization, so captured behavior can be stored and replayed.
//! - [`scrolling`] — case study 1: inertial-scroll browsing sessions over
//!   the movie table, with selection and backscroll behavior.
//! - [`crossfilter`] — case study 2: coordinated-view slider sessions on
//!   mouse / touch / Leap Motion, compiled to histogram query groups.
//! - [`composite`] — case study 3: multi-widget exploration sessions
//!   (map, slider, checkbox, text box) with the request → render →
//!   explore loop of Fig 17.
//! - [`adaptive`] — the closed-loop behavior model: a seeded state
//!   machine (zoom / drill / backtrack / abandon) whose next action is
//!   a pure function of the previous answer's content, quality, and
//!   latency.
//! - [`mining`] — interface mining: recovers slider/brush/dropdown
//!   signatures from request traces by diffing consecutive widget
//!   states, and synthesizes novel composite interfaces from them.

#![warn(missing_docs)]

pub mod adaptive;
pub mod composite;
pub mod crossfilter;
pub mod datasets;
pub mod mining;
pub mod scrolling;
pub mod trace;
