//! Seeded synthetic datasets matching the paper's experimental data.
//!
//! | Paper dataset | Here | Shape preserved |
//! |---|---|---|
//! | IMDB top-4000 movies, 6 attributes | [`movies`] | cardinality, schema, rating skew |
//! | UCI 3-D road network, 434,874 × (lon, lat, alt) | [`road_network`] | cardinality, the exact attribute domains the paper's SQL uses, spatial clustering |
//! | Airbnb listings | [`listings`] | geo + price + categorical filters |
//!
//! All generators are deterministic in their seed.

use ids_engine::{ColumnBuilder, Table, TableBuilder};
use ids_simclock::rng::SimRng;

/// Domain constants for the road-network table, taken verbatim from the
/// paper's crossfiltering SQL (Section 7).
pub mod road_domain {
    /// Longitude (x) minimum.
    pub const X_MIN: f64 = 8.146;
    /// Longitude (x) maximum.
    pub const X_MAX: f64 = 11.261_636_716_3;
    /// Latitude (y) minimum.
    pub const Y_MIN: f64 = 56.582;
    /// Latitude (y) maximum.
    pub const Y_MAX: f64 = 57.774;
    /// Altitude (z) minimum.
    pub const Z_MIN: f64 = -8.608;
    /// Altitude (z) maximum.
    pub const Z_MAX: f64 = 137.361;
    /// Full cardinality used in the paper.
    pub const ROWS: usize = 434_874;
}

/// Number of rows in the movie table (the paper's "top rated 4000 tuples").
pub const MOVIE_ROWS: usize = 4_000;

const GENRES: [&str; 18] = [
    "drama",
    "comedy",
    "action",
    "thriller",
    "romance",
    "horror",
    "sci-fi",
    "documentary",
    "animation",
    "crime",
    "adventure",
    "fantasy",
    "mystery",
    "war",
    "western",
    "musical",
    "biography",
    "noir",
];

/// Builds the `imdb` movie table: `id, poster, title, year, director,
/// genre, plot, rating`, 4000 rows sorted by descending rating like a
/// "top rated" listing.
pub fn movies(seed: u64) -> Table {
    movies_sized(seed, MOVIE_ROWS)
}

/// [`movies`] with an explicit row count (for fast tests).
pub fn movies_sized(seed: u64, rows: usize) -> Table {
    let mut rng = SimRng::seed(seed).split("dataset/movies");
    // Ratings: a "top rated" slice is front-loaded; draw then sort desc.
    let mut ratings: Vec<f64> = (0..rows)
        .map(|_| rng.normal_clamped(7.8, 0.7, 5.0, 9.6))
        .collect();
    ratings.sort_by(|a, b| b.partial_cmp(a).expect("no NaNs"));

    let n_directors = (rows / 12).clamp(1, 400);
    let mut id = ColumnBuilder::int([]);
    let mut poster = ColumnBuilder::str(Vec::<&str>::new());
    let mut title = ColumnBuilder::str(Vec::<&str>::new());
    let mut year = ColumnBuilder::int([]);
    let mut director = ColumnBuilder::str(Vec::<&str>::new());
    let mut genre = ColumnBuilder::str(Vec::<&str>::new());
    let mut plot = ColumnBuilder::str(Vec::<&str>::new());
    let mut rating = ColumnBuilder::float([]);
    for (i, &r) in ratings.iter().enumerate() {
        id.push_int(i as i64);
        poster.push_str(&format!("https://img.example/poster/{i}.jpg"));
        title.push_str(&title_for(i, &mut rng));
        year.push_int(rng.uniform(1950.0, 2018.0) as i64);
        director.push_str(&format!("Director {}", rng.uniform_usize(0, n_directors)));
        genre.push_str(GENRES[rng.weighted_index(&zipf_weights(GENRES.len()))]);
        plot.push_str(&plot_for(i, &mut rng));
        rating.push_float((r * 10.0).round() / 10.0);
    }
    TableBuilder::new("imdb")
        .column("id", id)
        .column("poster", poster)
        .column("title", title)
        .column("year", year)
        .column("director", director)
        .column("genre", genre)
        .column("plot", plot)
        .column("rating", rating)
        .build()
        .expect("static schema is valid")
}

/// Splits the movie table into the two tables the paper's streaming-join
/// query (Q2) uses: `imdbrating(id, rating)` and
/// `movie(id, poster, title, year, director, genre, plot)`.
pub fn movie_join_tables(seed: u64, rows: usize) -> (Table, Table) {
    let full = movies_sized(seed, rows);
    let ids: Vec<i64> = full
        .column("id")
        .expect("id")
        .as_int()
        .expect("int")
        .to_vec();
    let ratings: Vec<f64> = full
        .column("rating")
        .expect("rating")
        .as_float()
        .expect("float")
        .to_vec();
    let rating_table = TableBuilder::new("imdbrating")
        .column("id", ColumnBuilder::int(ids.iter().copied()))
        .column("rating", ColumnBuilder::float(ratings))
        .build()
        .expect("static schema");

    let mut movie = TableBuilder::new("movie").column("id", ColumnBuilder::int(ids));
    for col in ["poster", "title", "director", "genre", "plot"] {
        let mut b = ColumnBuilder::str(Vec::<&str>::new());
        for row in 0..full.rows() {
            let v = full.value(row, col).expect("column exists");
            b.push_str(v.as_str().expect("string column"));
        }
        movie = movie.column(col, b);
    }
    let mut years = ColumnBuilder::int([]);
    for row in 0..full.rows() {
        years.push_int(
            full.value(row, "year")
                .expect("year")
                .as_i64()
                .expect("int"),
        );
    }
    (
        rating_table,
        movie.column("year", years).build().expect("static schema"),
    )
}

/// Builds the `dataroad` table: 3-D road-network points with the paper's
/// exact domains, clustered like real road geometry (a Gaussian mixture
/// along sinuous "roads" rather than uniform dust).
pub fn road_network(seed: u64) -> Table {
    road_network_sized(seed, road_domain::ROWS)
}

/// [`road_network_sized`] registered under an explicit table name — one
/// table per tenant in the multi-tenant serving experiments, so tenants
/// carry distinct working sets through a shared buffer pool. The content
/// still depends only on `(seed, rows)`; the name is identity, not data.
pub fn road_network_named(name: &str, seed: u64, rows: usize) -> Table {
    let base = road_network_sized(seed, rows);
    let mut b = TableBuilder::new(name);
    for col in ["x", "y", "z"] {
        let mut values = Vec::with_capacity(base.rows());
        for row in 0..base.rows() {
            values.push(
                base.value(row, col)
                    .expect("column exists")
                    .as_f64()
                    .expect("float column"),
            );
        }
        b = b.column(col, ColumnBuilder::float(values));
    }
    b.build().expect("static schema is valid")
}

/// [`road_network`] with an explicit row count (for fast tests).
pub fn road_network_sized(seed: u64, rows: usize) -> Table {
    use road_domain::*;
    let mut rng = SimRng::seed(seed).split("dataset/road");
    let clusters = 24usize;
    // Randomly placed cluster centers with Zipf-skewed popularity: road
    // density concentrates around towns, leaving sparse stretches.
    let centers: Vec<(f64, f64, f64)> = (0..clusters)
        .map(|_| {
            let x = rng.uniform(X_MIN + 0.1, X_MAX - 0.1);
            let y = rng.uniform(Y_MIN + 0.05, Y_MAX - 0.05);
            let z = rng.uniform(Z_MIN + 5.0, Z_MAX * 0.6);
            (x, y, z)
        })
        .collect();
    let weights = zipf_weights(clusters);
    let mut xs = Vec::with_capacity(rows);
    let mut ys = Vec::with_capacity(rows);
    let mut zs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let (cx, cy, cz) = centers[rng.weighted_index(&weights)];
        xs.push(rng.normal_clamped(cx, 0.09, X_MIN, X_MAX));
        ys.push(rng.normal_clamped(cy, 0.06, Y_MIN, Y_MAX));
        zs.push(rng.normal_clamped(cz, 12.0, Z_MIN, Z_MAX));
    }
    TableBuilder::new("dataroad")
        .column("x", ColumnBuilder::float(xs))
        .column("y", ColumnBuilder::float(ys))
        .column("z", ColumnBuilder::float(zs))
        .build()
        .expect("static schema is valid")
}

/// Room types for the listings table.
pub const ROOM_TYPES: [&str; 3] = ["entire_home", "private_room", "shared_room"];

/// Builds the `listings` table: Airbnb-style records with geo position,
/// price, guest capacity, room type, and rating.
pub fn listings(seed: u64, rows: usize) -> Table {
    let mut rng = SimRng::seed(seed).split("dataset/listings");
    // A handful of metro clusters in a continental lat/lng box.
    let metros = 12usize;
    let centers: Vec<(f64, f64)> = (0..metros)
        .map(|_| (rng.uniform(-120.0, -75.0), rng.uniform(28.0, 46.0)))
        .collect();
    let mut id = ColumnBuilder::int([]);
    let mut lng = ColumnBuilder::float([]);
    let mut lat = ColumnBuilder::float([]);
    let mut price = ColumnBuilder::float([]);
    let mut guests = ColumnBuilder::int([]);
    let mut room = ColumnBuilder::str(Vec::<&str>::new());
    let mut rating = ColumnBuilder::float([]);
    for i in 0..rows {
        let (cx, cy) = centers[rng.uniform_usize(0, metros)];
        id.push_int(i as i64);
        lng.push_float(rng.normal(cx, 0.6));
        lat.push_float(rng.normal(cy, 0.4));
        price.push_float(rng.log_normal(4.4, 0.6).clamp(10.0, 2_000.0).round());
        guests.push_int(rng.uniform_usize(1, 9) as i64);
        room.push_str(ROOM_TYPES[rng.weighted_index(&[0.6, 0.3, 0.1])]);
        rating.push_float(rng.normal_clamped(4.5, 0.35, 2.5, 5.0));
    }
    TableBuilder::new("listings")
        .column("id", id)
        .column("lng", lng)
        .column("lat", lat)
        .column("price", price)
        .column("guests", guests)
        .column("room_type", room)
        .column("rating", rating)
        .build()
        .expect("static schema is valid")
}

fn zipf_weights(n: usize) -> Vec<f64> {
    (1..=n).map(|k| 1.0 / k as f64).collect()
}

fn title_for(i: usize, rng: &mut SimRng) -> String {
    const ADJ: [&str; 12] = [
        "Silent", "Crimson", "Last", "Hidden", "Golden", "Broken", "Distant", "Electric",
        "Midnight", "Paper", "Winter", "Burning",
    ];
    const NOUN: [&str; 12] = [
        "Horizon", "River", "Letters", "Garden", "Empire", "Signal", "Harbor", "Mirror", "Orchard",
        "Station", "Voyage", "Citadel",
    ];
    format!(
        "{} {} {}",
        ADJ[rng.uniform_usize(0, ADJ.len())],
        NOUN[rng.uniform_usize(0, NOUN.len())],
        i
    )
}

fn plot_for(i: usize, rng: &mut SimRng) -> String {
    const OPENERS: [&str; 6] = [
        "A reluctant hero",
        "Two strangers",
        "An aging detective",
        "A small town",
        "A brilliant scientist",
        "A travelling troupe",
    ];
    const TWISTS: [&str; 6] = [
        "confronts a buried secret",
        "races against time",
        "discovers an impossible truth",
        "is drawn into a conspiracy",
        "must choose between two worlds",
        "finds an unlikely ally",
    ];
    format!(
        "{} {} (story {i}).",
        OPENERS[rng.uniform_usize(0, OPENERS.len())],
        TWISTS[rng.uniform_usize(0, TWISTS.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::Predicate;

    #[test]
    fn movies_shape_and_determinism() {
        let a = movies_sized(7, 500);
        assert_eq!(a.rows(), 500);
        assert_eq!(a.width(), 8);
        let b = movies_sized(7, 500);
        for col in ["title", "rating", "year"] {
            for row in [0usize, 250, 499] {
                assert_eq!(a.value(row, col).unwrap(), b.value(row, col).unwrap());
            }
        }
        let c = movies_sized(8, 500);
        assert_ne!(
            a.value(0, "title").unwrap(),
            c.value(0, "title").unwrap(),
            "different seeds differ"
        );
    }

    #[test]
    fn movies_are_sorted_by_descending_rating() {
        let t = movies_sized(1, 300);
        let ratings = t.column("rating").unwrap().as_float().unwrap();
        assert!(ratings.windows(2).all(|w| w[0] >= w[1]));
        assert!(ratings[0] <= 9.6 && ratings[ratings.len() - 1] >= 5.0);
    }

    #[test]
    fn join_tables_reassemble_the_catalog() {
        let (ratings, movie) = movie_join_tables(3, 200);
        assert_eq!(ratings.rows(), 200);
        assert_eq!(movie.rows(), 200);
        assert_eq!(ratings.width(), 2);
        // Every rating id exists in the movie table.
        let movie_ids = movie.column("id").unwrap().as_int().unwrap();
        let rating_ids = ratings.column("id").unwrap().as_int().unwrap();
        assert_eq!(movie_ids, rating_ids);
    }

    #[test]
    fn road_network_respects_paper_domains() {
        let t = road_network_sized(5, 20_000);
        assert_eq!(t.rows(), 20_000);
        let stats = t.stats();
        let x = stats.column("x").unwrap();
        assert!(x.min.unwrap() >= road_domain::X_MIN);
        assert!(x.max.unwrap() <= road_domain::X_MAX);
        let y = stats.column("y").unwrap();
        assert!(y.min.unwrap() >= road_domain::Y_MIN);
        assert!(y.max.unwrap() <= road_domain::Y_MAX);
        let z = stats.column("z").unwrap();
        assert!(z.min.unwrap() >= road_domain::Z_MIN);
        assert!(z.max.unwrap() <= road_domain::Z_MAX);
    }

    #[test]
    fn road_network_is_clustered_not_uniform() {
        // A range predicate over 10% of x should not select ~10% of rows
        // everywhere; clustering makes selectivity uneven across slices.
        let t = road_network_sized(5, 30_000);
        let span = road_domain::X_MAX - road_domain::X_MIN;
        let mut fractions = Vec::new();
        for i in 0..10 {
            let lo = road_domain::X_MIN + span * i as f64 / 10.0;
            let hi = lo + span / 10.0;
            let sel = Predicate::between("x", lo, hi).select(&t).unwrap().len();
            fractions.push(sel as f64 / t.rows() as f64);
        }
        let max = fractions.iter().cloned().fold(0.0, f64::max);
        let min = fractions.iter().cloned().fold(1.0, f64::min);
        assert!(max / min.max(1e-9) > 1.5, "slices: {fractions:?}");
    }

    #[test]
    fn listings_schema_and_domains() {
        let t = listings(9, 5_000);
        assert_eq!(t.rows(), 5_000);
        let price = t.stats().column("price").unwrap();
        assert!(price.min.unwrap() >= 10.0);
        assert!(price.max.unwrap() <= 2_000.0);
        let guests = t.stats().column("guests").unwrap();
        assert!(guests.min.unwrap() >= 1.0 && guests.max.unwrap() <= 8.0);
        // Room types dictionary-encode to exactly the three variants.
        let (_, dict) = t.column("room_type").unwrap().as_str_parts().unwrap();
        assert!(dict.len() <= 3);
    }

    #[test]
    fn full_road_cardinality_constant_matches_paper() {
        assert_eq!(road_domain::ROWS, 434_874);
        assert_eq!(MOVIE_ROWS, 4_000);
    }
}
