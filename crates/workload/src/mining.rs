//! Interface mining from request traces.
//!
//! Zhang & Sellam's *Mining Precision Interfaces From Query Logs*
//! observes that an interaction log is itself an interface description:
//! each widget manipulation perturbs the serialized query state in a
//! characteristic way, so diffing consecutive states recovers the
//! widget structure. We apply the idea to our own [`Trace`] schema: the
//! composite-interface `url_update` records carry the full widget state
//! as URL parameters ([`crate::adaptive::state_url`]), consecutive
//! states are diffed into canonical fingerprints, and the fingerprints
//! classify into [`WidgetKind`] signatures:
//!
//! - one interval parameter moved → **slider**;
//! - two interval parameters moved in one step → **brush** (a 2-D
//!   region selection);
//! - one discrete parameter moved → **dropdown**.
//!
//! The mined [`MinedInterface`] then round-trips: an [`InterfaceSpec`]
//! synthesizes a fresh seeded session whose trace mines back to the
//! same signature set, and [`compose_novel`] grafts brushes and
//! dropdowns onto mined sliders — novel composite interfaces as
//! first-class workload families.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ids_engine::{BinSpec, Predicate, Query};
use ids_simclock::rng::SimRng;
use ids_simclock::SimTime;

use crate::crossfilter::CrossfilterUi;
use crate::trace::{RequestEvent, RequestRecord, ResourceType, SliderRecord, Trace};

/// Widget classes recoverable from query-diff fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WidgetKind {
    /// 1-D range selection: one interval parameter per step.
    Slider,
    /// 2-D region selection: two interval parameters per step.
    Brush,
    /// Discrete selection: one enumerated parameter per step.
    Dropdown,
}

impl fmt::Display for WidgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WidgetKind::Slider => "slider",
            WidgetKind::Brush => "brush",
            WidgetKind::Dropdown => "dropdown",
        })
    }
}

/// A parameterized widget structure: the kind plus the (sorted) state
/// parameters it manipulates.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WidgetSignature {
    /// Widget class.
    pub kind: WidgetKind,
    /// State parameters the widget owns, sorted.
    pub params: Vec<String>,
}

impl WidgetSignature {
    /// Canonical rendering, e.g. `brush(x,y)`.
    pub fn render(&self) -> String {
        format!("{}({})", self.kind, self.params.join(","))
    }
}

/// The interface recovered from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedInterface {
    /// Backing table named by the state URLs.
    pub table: String,
    /// Distinct widget signatures observed.
    pub widgets: BTreeSet<WidgetSignature>,
    /// Number of widget states (url_update records) consumed.
    pub states: usize,
}

impl MinedInterface {
    /// Stable multi-line rendering for digests and tables.
    pub fn render(&self) -> String {
        let mut out = format!("mined table={} states={}\n", self.table, self.states);
        for w in &self.widgets {
            out.push_str("  ");
            out.push_str(&w.render());
            out.push('\n');
        }
        out
    }
}

/// Parses a canonical state URL into `(table, param map)`.
pub fn parse_state_url(url: &str) -> Option<(String, BTreeMap<String, String>)> {
    let (head, query) = url.split_once('?')?;
    let table = head.rsplit('/').next()?.to_string();
    let mut params = BTreeMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=')?;
        params.insert(k.to_string(), v.to_string());
    }
    Some((table, params))
}

/// Classifies one state diff (the set of changed parameter keys) into a
/// widget signature. Keys ending in `_min`/`_max` fold into one
/// interval parameter; anything else is discrete. Mixed or wider diffs
/// are not canonical single-widget steps and mine to `None`.
fn classify(changed: &BTreeSet<String>) -> Option<WidgetSignature> {
    let mut intervals: BTreeSet<String> = BTreeSet::new();
    let mut discrete: BTreeSet<String> = BTreeSet::new();
    for key in changed {
        match key
            .strip_suffix("_min")
            .or_else(|| key.strip_suffix("_max"))
        {
            Some(base) => {
                intervals.insert(base.to_string());
            }
            None => {
                discrete.insert(key.clone());
            }
        }
    }
    let sig = |kind, params: BTreeSet<String>| {
        Some(WidgetSignature {
            kind,
            params: params.into_iter().collect(),
        })
    };
    match (intervals.len(), discrete.len()) {
        (1, 0) => sig(WidgetKind::Slider, intervals),
        (2, 0) => sig(WidgetKind::Brush, intervals),
        (0, 1) => sig(WidgetKind::Dropdown, discrete),
        _ => None,
    }
}

/// Mines the widget structure out of a request trace: every
/// `url_update` state is diffed against its predecessor and the diff
/// fingerprints classify into widget signatures.
pub fn mine(trace: &Trace<RequestRecord>) -> MinedInterface {
    let states: Vec<(String, BTreeMap<String, String>)> = trace
        .records()
        .iter()
        .filter(|r| r.event == RequestEvent::UrlUpdate)
        .filter_map(|r| parse_state_url(&r.tab_url))
        .collect();
    let mut widgets = BTreeSet::new();
    for pair in states.windows(2) {
        let (prev, next) = (&pair[0].1, &pair[1].1);
        let changed: BTreeSet<String> = prev
            .keys()
            .chain(next.keys())
            .filter(|k| prev.get(*k) != next.get(*k))
            .cloned()
            .collect();
        if let Some(sig) = classify(&changed) {
            widgets.insert(sig);
        }
    }
    MinedInterface {
        table: states.first().map(|(t, _)| t.clone()).unwrap_or_default(),
        widgets,
        states: states.len(),
    }
}

/// Re-serializes an open-loop crossfilter slider trace as a request
/// trace (full widget state per event), so the miner can consume the
/// traces the rest of the crate already emits.
pub fn crossfilter_request_trace(
    ui: &CrossfilterUi,
    trace: &Trace<SliderRecord>,
) -> Trace<RequestRecord> {
    let mut ranges = ui.initial_ranges();
    let mut out = Trace::new();
    for (i, rec) in trace.records().iter().enumerate() {
        let idx = rec.slider_idx as usize;
        if idx < ranges.len() {
            ranges[idx] = (rec.min_val, rec.max_val);
        }
        out.push(RequestRecord {
            timestamp_ms: rec.timestamp_ms,
            tab_url: crate::adaptive::state_url(&ui.table, ui, &ranges),
            request_id: i as u64,
            resource_type: ResourceType::Data,
            event: RequestEvent::UrlUpdate,
            status: 200,
        });
    }
    out
}

/// A concrete widget: the signature plus enough domain information to
/// synthesize sessions and compile states into queries.
#[derive(Debug, Clone, PartialEq)]
pub enum WidgetSpec {
    /// Range slider over a numeric column. Requires `min < max`.
    Slider {
        /// Column / state parameter.
        param: String,
        /// Domain minimum.
        min: f64,
        /// Domain maximum.
        max: f64,
    },
    /// 2-D brush over two numeric columns. Requires nonempty domains.
    Brush {
        /// Horizontal axis: `(column, min, max)`.
        x: (String, f64, f64),
        /// Vertical axis: `(column, min, max)`.
        y: (String, f64, f64),
    },
    /// Named presets, each a range over one column. Requires at least
    /// two options (a one-option dropdown can never register a diff).
    Dropdown {
        /// State parameter the selection serializes under.
        param: String,
        /// Column the presets constrain.
        column: String,
        /// `(name, lo, hi)` presets.
        options: Vec<(String, f64, f64)>,
    },
}

impl WidgetSpec {
    /// The signature this widget mines back to.
    pub fn signature(&self) -> WidgetSignature {
        match self {
            WidgetSpec::Slider { param, .. } => WidgetSignature {
                kind: WidgetKind::Slider,
                params: vec![param.clone()],
            },
            WidgetSpec::Brush { x, y } => {
                let mut params = vec![x.0.clone(), y.0.clone()];
                params.sort();
                WidgetSignature {
                    kind: WidgetKind::Brush,
                    params,
                }
            }
            WidgetSpec::Dropdown { param, .. } => WidgetSignature {
                kind: WidgetKind::Dropdown,
                params: vec![param.clone()],
            },
        }
    }
}

/// A synthesized composite interface: a table plus concrete widgets.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceSpec {
    /// Backing table.
    pub table: String,
    /// The widgets, in layout order.
    pub widgets: Vec<WidgetSpec>,
}

/// One interval's serialized state.
fn put_range(state: &mut BTreeMap<String, String>, param: &str, lo: f64, hi: f64) {
    state.insert(format!("{param}_min"), format!("{lo:?}"));
    state.insert(format!("{param}_max"), format!("{hi:?}"));
}

/// Draws a sub-range of `[min, max]`, guaranteed to serialize
/// differently from `(cur_lo, cur_hi)` whenever `min < max`.
fn fresh_range(rng: &mut SimRng, min: f64, max: f64, cur: (f64, f64)) -> (f64, f64) {
    for _ in 0..4 {
        let a = rng.uniform(min, max);
        let b = rng.uniform(min, max);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if (lo, hi) != cur {
            return (lo, hi);
        }
    }
    // Astronomically unlikely fallback: toggle full range ↔ lower half.
    let mid = min + (max - min) * 0.5;
    if cur == (min, max) {
        (min, mid)
    } else {
        (min, max)
    }
}

impl InterfaceSpec {
    /// The signature set this interface mines back to.
    pub fn signatures(&self) -> BTreeSet<WidgetSignature> {
        self.widgets.iter().map(|w| w.signature()).collect()
    }

    /// The initial widget state: sliders and brushes at full domain,
    /// dropdowns on their first option.
    fn initial_state(&self) -> BTreeMap<String, String> {
        let mut state = BTreeMap::new();
        for w in &self.widgets {
            match w {
                WidgetSpec::Slider { param, min, max } => put_range(&mut state, param, *min, *max),
                WidgetSpec::Brush { x, y } => {
                    put_range(&mut state, &x.0, x.1, x.2);
                    put_range(&mut state, &y.0, y.1, y.2);
                }
                WidgetSpec::Dropdown { param, options, .. } => {
                    if let Some((name, _, _)) = options.first() {
                        state.insert(param.clone(), name.clone());
                    }
                }
            }
        }
        state
    }

    /// Synthesizes a seeded session of `steps` manipulations as a
    /// request trace. Each widget is manipulated at least once (when
    /// `steps >= widgets.len()`), and every step perturbs exactly its
    /// widget's parameters, so `mine(synthesize(..))` recovers exactly
    /// [`InterfaceSpec::signatures`].
    pub fn synthesize(&self, seed: u64, steps: usize) -> Trace<RequestRecord> {
        let mut rng = SimRng::seed(seed).split("mining/synthesize");
        let mut state = self.initial_state();
        let mut out = Trace::new();
        let mut now: u64 = 0;
        let push = |out: &mut Trace<RequestRecord>, step: usize, now: u64, url: String| {
            out.push(RequestRecord {
                timestamp_ms: now,
                tab_url: url,
                request_id: step as u64,
                resource_type: ResourceType::Data,
                event: RequestEvent::UrlUpdate,
                status: 200,
            });
        };
        push(&mut out, 0, now, self.url(&state));
        if self.widgets.is_empty() {
            return out;
        }
        for step in 1..=steps {
            // Round-robin first so every widget registers, then random.
            let which = if step <= self.widgets.len() {
                step - 1
            } else {
                rng.uniform_usize(0, self.widgets.len())
            };
            match &self.widgets[which] {
                WidgetSpec::Slider { param, min, max } => {
                    let cur = read_range(&state, param).unwrap_or((*min, *max));
                    let (lo, hi) = fresh_range(&mut rng, *min, *max, cur);
                    put_range(&mut state, param, lo, hi);
                }
                WidgetSpec::Brush { x, y } => {
                    let cx = read_range(&state, &x.0).unwrap_or((x.1, x.2));
                    let cy = read_range(&state, &y.0).unwrap_or((y.1, y.2));
                    let (xl, xh) = fresh_range(&mut rng, x.1, x.2, cx);
                    let (yl, yh) = fresh_range(&mut rng, y.1, y.2, cy);
                    put_range(&mut state, &x.0, xl, xh);
                    put_range(&mut state, &y.0, yl, yh);
                }
                WidgetSpec::Dropdown { param, options, .. } => {
                    if options.len() >= 2 {
                        let cur = state.get(param).cloned().unwrap_or_default();
                        let cur_idx = options.iter().position(|(n, _, _)| *n == cur).unwrap_or(0);
                        let next =
                            (cur_idx + 1 + rng.uniform_usize(0, options.len() - 1)) % options.len();
                        let next = if next == cur_idx {
                            (cur_idx + 1) % options.len()
                        } else {
                            next
                        };
                        state.insert(param.clone(), options[next].0.clone());
                    }
                }
            }
            now += 400 + (rng.uniform(0.0, 1200.0) as u64);
            push(&mut out, step, now, self.url(&state));
        }
        out
    }

    /// Serializes `state` as this interface's canonical URL (sorted
    /// parameter order — the miner diffs maps, not strings).
    pub fn url(&self, state: &BTreeMap<String, String>) -> String {
        let params = state
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("&");
        format!("ids://xf/{}?{params}", self.table)
    }

    /// Compiles every `url_update` state in `trace` into queries: one
    /// filtered histogram per slider (and per brush axis) under the
    /// conjunction of all widget constraints, plus one count.
    pub fn compile(&self, trace: &Trace<RequestRecord>) -> Vec<(SimTime, Query)> {
        let mut out = Vec::new();
        for rec in trace.records() {
            if rec.event != RequestEvent::UrlUpdate {
                continue;
            }
            let Some((_, state)) = parse_state_url(&rec.tab_url) else {
                continue;
            };
            let at = SimTime::from_millis(rec.timestamp_ms);
            let filter = self.state_predicate(&state);
            for w in &self.widgets {
                let hist = |col: &str, lo: f64, hi: f64| {
                    Query::histogram(
                        self.table.clone(),
                        BinSpec::new(col.to_string(), lo, hi, 12),
                        filter.clone(),
                    )
                };
                match w {
                    WidgetSpec::Slider { param, min, max } => {
                        out.push((at, hist(param, *min, *max)))
                    }
                    WidgetSpec::Brush { x, y } => {
                        out.push((at, hist(&x.0, x.1, x.2)));
                        out.push((at, hist(&y.0, y.1, y.2)));
                    }
                    WidgetSpec::Dropdown { .. } => {}
                }
            }
            out.push((at, Query::count(self.table.clone(), filter)));
        }
        out
    }

    /// The conjunction a widget state constrains the table by.
    fn state_predicate(&self, state: &BTreeMap<String, String>) -> Predicate {
        let mut preds = Vec::new();
        for w in &self.widgets {
            match w {
                WidgetSpec::Slider { param, min, max } => {
                    let (lo, hi) = read_range(state, param).unwrap_or((*min, *max));
                    preds.push(Predicate::between(param.clone(), lo, hi));
                }
                WidgetSpec::Brush { x, y } => {
                    let (xl, xh) = read_range(state, &x.0).unwrap_or((x.1, x.2));
                    let (yl, yh) = read_range(state, &y.0).unwrap_or((y.1, y.2));
                    preds.push(Predicate::between(x.0.clone(), xl, xh));
                    preds.push(Predicate::between(y.0.clone(), yl, yh));
                }
                WidgetSpec::Dropdown {
                    param,
                    column,
                    options,
                } => {
                    let chosen = state.get(param);
                    if let Some((_, lo, hi)) = options
                        .iter()
                        .find(|(n, _, _)| Some(n) == chosen)
                        .or_else(|| options.first())
                    {
                        preds.push(Predicate::between(column.clone(), *lo, *hi));
                    }
                }
            }
        }
        Predicate::and(preds)
    }
}

/// Reads an interval parameter back out of a serialized state.
fn read_range(state: &BTreeMap<String, String>, param: &str) -> Option<(f64, f64)> {
    let lo = state.get(&format!("{param}_min"))?.parse().ok()?;
    let hi = state.get(&format!("{param}_max"))?.parse().ok()?;
    Some((lo, hi))
}

/// Synthesizes a **novel composite interface** from a mined one:
/// every mined slider whose parameter matches a `ui` dimension becomes
/// a concrete slider, the first two become a 2-D brush, and the last
/// dimension gains a three-preset dropdown (low/mid/high thirds of its
/// domain). This is how mined open-loop traces graduate into workload
/// families the original interface never had.
pub fn compose_novel(mined: &MinedInterface, ui: &CrossfilterUi) -> InterfaceSpec {
    let mut widgets: Vec<WidgetSpec> = Vec::new();
    let dim_of = |param: &str| ui.dims.iter().find(|d| d.column == param);
    let sliders: Vec<_> = mined
        .widgets
        .iter()
        .filter(|w| w.kind == WidgetKind::Slider)
        .filter_map(|w| dim_of(&w.params[0]))
        .collect();
    for d in &sliders {
        widgets.push(WidgetSpec::Slider {
            param: d.column.clone(),
            min: d.min,
            max: d.max,
        });
    }
    if sliders.len() >= 2 {
        // The brush reuses the real column names (so compiled queries
        // execute against the backing table); it still mines distinctly
        // because one brush step perturbs two intervals at once.
        let (a, b) = (sliders[0], sliders[1]);
        widgets.push(WidgetSpec::Brush {
            x: (a.column.clone(), a.min, a.max),
            y: (b.column.clone(), b.min, b.max),
        });
    }
    if let Some(d) = sliders.last() {
        let third = d.span() / 3.0;
        widgets.push(WidgetSpec::Dropdown {
            param: format!("{}_preset", d.column),
            column: d.column.clone(),
            options: vec![
                ("low".into(), d.min, d.min + third),
                ("mid".into(), d.min + third, d.min + 2.0 * third),
                ("high".into(), d.min + 2.0 * third, d.max),
            ],
        });
    }
    InterfaceSpec {
        table: if mined.table.is_empty() {
            ui.table.clone()
        } else {
            mined.table.clone()
        },
        widgets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossfilter;
    use ids_devices::DeviceKind;

    fn spec() -> InterfaceSpec {
        InterfaceSpec {
            table: "listings".into(),
            widgets: vec![
                WidgetSpec::Slider {
                    param: "price".into(),
                    min: 10.0,
                    max: 900.0,
                },
                WidgetSpec::Brush {
                    x: ("lon".into(), -74.1, -73.7),
                    y: ("lat".into(), 40.5, 40.95),
                },
                WidgetSpec::Dropdown {
                    param: "room".into(),
                    column: "room_code".into(),
                    options: vec![
                        ("entire".into(), 0.0, 0.5),
                        ("private".into(), 0.5, 1.5),
                        ("shared".into(), 1.5, 2.5),
                    ],
                },
            ],
        }
    }

    #[test]
    fn synthesize_then_mine_round_trips() {
        let s = spec();
        for seed in [1, 7, 99] {
            let trace = s.synthesize(seed, 12);
            let mined = mine(&trace);
            assert_eq!(mined.widgets, s.signatures(), "seed {seed}");
            assert_eq!(mined.table, "listings");
            assert_eq!(mined.states, 13);
        }
    }

    #[test]
    fn synthesis_is_deterministic_and_seed_sensitive() {
        let s = spec();
        assert_eq!(s.synthesize(5, 10).to_tsv(), s.synthesize(5, 10).to_tsv());
        assert_ne!(s.synthesize(5, 10).to_tsv(), s.synthesize(6, 10).to_tsv());
    }

    #[test]
    fn mining_a_crossfilter_trace_recovers_its_sliders() {
        let ui = crossfilter::CrossfilterUi::for_road();
        let session = crossfilter::simulate_session(DeviceKind::Mouse, 0, 11, &ui);
        let mined = mine(&crossfilter_request_trace(&ui, &session.trace));
        assert_eq!(mined.table, "dataroad");
        assert!(
            mined.widgets.iter().all(|w| w.kind == WidgetKind::Slider),
            "{:?}",
            mined.widgets
        );
        assert!(!mined.widgets.is_empty());
        for w in &mined.widgets {
            assert!(["x", "y", "z"].contains(&w.params[0].as_str()));
        }
    }

    #[test]
    fn composed_interface_is_novel_and_round_trips() {
        let ui = crossfilter::CrossfilterUi::for_road();
        let session = crossfilter::simulate_session(DeviceKind::LeapMotion, 1, 13, &ui);
        let mined = mine(&crossfilter_request_trace(&ui, &session.trace));
        let novel = compose_novel(&mined, &ui);
        let kinds: BTreeSet<WidgetKind> =
            novel.widgets.iter().map(|w| w.signature().kind).collect();
        assert!(kinds.contains(&WidgetKind::Brush), "brush grafted on");
        assert!(kinds.contains(&WidgetKind::Dropdown), "dropdown grafted on");
        let remined = mine(&novel.synthesize(21, 16));
        assert_eq!(remined.widgets, novel.signatures());
    }

    #[test]
    fn compile_emits_filtered_queries_per_state() {
        let s = spec();
        let trace = s.synthesize(3, 4);
        let queries = s.compile(&trace);
        // Per state: 1 slider hist + 2 brush hists + 1 count = 4.
        assert_eq!(queries.len(), 5 * 4);
        for (at, q) in &queries {
            assert!(at.as_millis() <= trace.records().last().unwrap().timestamp_ms);
            let filter = q.filter().expect("every query is filtered");
            // price + lon + lat + room preset = 4 conjuncts.
            assert_eq!(filter.condition_count(), 4);
        }
    }

    #[test]
    fn mixed_diffs_are_not_canonical_widgets() {
        let mut changed = BTreeSet::new();
        changed.insert("a_min".to_string());
        changed.insert("b".to_string());
        assert_eq!(classify(&changed), None);
        let mut three = BTreeSet::new();
        three.insert("a_min".to_string());
        three.insert("b_max".to_string());
        three.insert("c_min".to_string());
        assert_eq!(classify(&three), None);
    }

    #[test]
    fn url_parsing_rejects_garbage() {
        assert_eq!(parse_state_url("no-query-string"), None);
        assert_eq!(parse_state_url("ids://xf/t?broken-pair"), None);
        let (t, p) = parse_state_url("ids://xf/road?x_min=1.5&x_max=2.5").unwrap();
        assert_eq!(t, "road");
        assert_eq!(p.len(), 2);
    }
}
