//! Trace schemas (Table 5) with line-oriented serialization.
//!
//! Each case study logs a different record shape:
//!
//! | case study | record | fields (as in the paper) |
//! |---|---|---|
//! | inertial scrolling | [`ScrollRecord`] | timestamp, scrollTop, scrollNum, delta |
//! | crossfiltering | [`SliderRecord`] | timestamp, minVal, maxVal, sliderIdx |
//! | composite interface | [`RequestRecord`] | timestamp, tabURL, requestId, resourceType, type, status |
//!
//! Records serialize to single TSV lines ([`TraceRecord::to_line`]) and
//! parse back ([`TraceRecord::parse_line`]), so traces can be shared as
//! plain files — the paper notes collecting and sharing real user traces
//! is one path to a community benchmark.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A record type that serializes to one line of a trace file.
pub trait TraceRecord: Sized {
    /// Stable header naming the fields, for self-describing files.
    fn header() -> &'static str;
    /// Serializes to one TSV line (no trailing newline).
    fn to_line(&self) -> String;
    /// Parses one TSV line.
    fn parse_line(line: &str) -> Result<Self, TraceParseError>;
}

/// Errors from parsing trace lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn err(msg: impl Into<String>) -> TraceParseError {
    TraceParseError {
        message: msg.into(),
    }
}

fn field<'a>(
    parts: &mut std::str::Split<'a, char>,
    name: &str,
) -> Result<&'a str, TraceParseError> {
    parts
        .next()
        .ok_or_else(|| err(format!("missing field `{name}`")))
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, TraceParseError> {
    s.parse()
        .map_err(|_| err(format!("field `{name}` is not a valid number: `{s}`")))
}

/// One scroll/wheel event from the inertial-scrolling study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScrollRecord {
    /// Milliseconds since session start.
    pub timestamp_ms: u64,
    /// Pixels scrolled from the top (`scrollTop`).
    pub scroll_top: f64,
    /// Cumulative tuples scrolled past (`scrollNum`).
    pub scroll_num: u64,
    /// Accelerated scroll amount this event (`delta`), pixels.
    pub delta: f64,
}

impl TraceRecord for ScrollRecord {
    fn header() -> &'static str {
        "timestamp_ms\tscroll_top\tscroll_num\tdelta"
    }

    fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}",
            self.timestamp_ms, self.scroll_top, self.scroll_num, self.delta
        )
    }

    fn parse_line(line: &str) -> Result<Self, TraceParseError> {
        let mut p = line.split('\t');
        let rec = ScrollRecord {
            timestamp_ms: parse_num(field(&mut p, "timestamp_ms")?, "timestamp_ms")?,
            scroll_top: parse_num(field(&mut p, "scroll_top")?, "scroll_top")?,
            scroll_num: parse_num(field(&mut p, "scroll_num")?, "scroll_num")?,
            delta: parse_num(field(&mut p, "delta")?, "delta")?,
        };
        if p.next().is_some() {
            return Err(err("trailing fields on scroll record"));
        }
        Ok(rec)
    }
}

/// One slider event from the crossfiltering study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliderRecord {
    /// Milliseconds since session start.
    pub timestamp_ms: u64,
    /// Selected range lower bound (`minVal`).
    pub min_val: f64,
    /// Selected range upper bound (`maxVal`).
    pub max_val: f64,
    /// Which slider moved (`sliderIdx`).
    pub slider_idx: u8,
}

impl TraceRecord for SliderRecord {
    fn header() -> &'static str {
        "timestamp_ms\tmin_val\tmax_val\tslider_idx"
    }

    fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}",
            self.timestamp_ms, self.min_val, self.max_val, self.slider_idx
        )
    }

    fn parse_line(line: &str) -> Result<Self, TraceParseError> {
        let mut p = line.split('\t');
        let rec = SliderRecord {
            timestamp_ms: parse_num(field(&mut p, "timestamp_ms")?, "timestamp_ms")?,
            min_val: parse_num(field(&mut p, "min_val")?, "min_val")?,
            max_val: parse_num(field(&mut p, "max_val")?, "max_val")?,
            slider_idx: parse_num(field(&mut p, "slider_idx")?, "slider_idx")?,
        };
        if p.next().is_some() {
            return Err(err("trailing fields on slider record"));
        }
        Ok(rec)
    }
}

/// Resource classes collected by the composite-interface extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceType {
    /// XMLHttpRequest-style data fetch.
    Data,
    /// Image asset.
    Image,
    /// Map tile.
    MapTile,
}

impl ResourceType {
    fn as_str(self) -> &'static str {
        match self {
            ResourceType::Data => "data",
            ResourceType::Image => "image",
            ResourceType::MapTile => "map_tile",
        }
    }

    fn parse(s: &str) -> Result<Self, TraceParseError> {
        match s {
            "data" => Ok(ResourceType::Data),
            "image" => Ok(ResourceType::Image),
            "map_tile" => Ok(ResourceType::MapTile),
            other => Err(err(format!("unknown resource type `{other}`"))),
        }
    }
}

/// Event classes on composite-interface records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestEvent {
    /// The tab URL changed — a new query state.
    UrlUpdate,
    /// An HTTP GET began.
    RequestStart,
    /// An HTTP GET completed.
    RequestEnd,
    /// A DOM mutation (rendering activity marker).
    Mutation,
}

impl RequestEvent {
    fn as_str(self) -> &'static str {
        match self {
            RequestEvent::UrlUpdate => "url_update",
            RequestEvent::RequestStart => "request_start",
            RequestEvent::RequestEnd => "request_end",
            RequestEvent::Mutation => "mutation",
        }
    }

    fn parse(s: &str) -> Result<Self, TraceParseError> {
        match s {
            "url_update" => Ok(RequestEvent::UrlUpdate),
            "request_start" => Ok(RequestEvent::RequestStart),
            "request_end" => Ok(RequestEvent::RequestEnd),
            "mutation" => Ok(RequestEvent::Mutation),
            other => Err(err(format!("unknown request event `{other}`"))),
        }
    }
}

/// One HTTP/browser event from the composite-interface study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Milliseconds since session start.
    pub timestamp_ms: u64,
    /// Current tab URL — itself a serialized query (Section 8).
    pub tab_url: String,
    /// Request identifier.
    pub request_id: u64,
    /// What kind of resource this touches.
    pub resource_type: ResourceType,
    /// Event class (`type` in the paper's schema).
    pub event: RequestEvent,
    /// HTTP status (0 for non-HTTP events).
    pub status: u16,
}

impl TraceRecord for RequestRecord {
    fn header() -> &'static str {
        "timestamp_ms\ttab_url\trequest_id\tresource_type\tevent\tstatus"
    }

    fn to_line(&self) -> String {
        debug_assert!(!self.tab_url.contains('\t'), "URLs cannot contain tabs");
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            self.timestamp_ms,
            self.tab_url,
            self.request_id,
            self.resource_type.as_str(),
            self.event.as_str(),
            self.status
        )
    }

    fn parse_line(line: &str) -> Result<Self, TraceParseError> {
        let mut p = line.split('\t');
        let rec = RequestRecord {
            timestamp_ms: parse_num(field(&mut p, "timestamp_ms")?, "timestamp_ms")?,
            tab_url: field(&mut p, "tab_url")?.to_string(),
            request_id: parse_num(field(&mut p, "request_id")?, "request_id")?,
            resource_type: ResourceType::parse(field(&mut p, "resource_type")?)?,
            event: RequestEvent::parse(field(&mut p, "event")?)?,
            status: parse_num(field(&mut p, "status")?, "status")?,
        };
        if p.next().is_some() {
            return Err(err("trailing fields on request record"));
        }
        Ok(rec)
    }
}

/// A homogeneous trace: a header plus records in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace<R> {
    records: Vec<R>,
}

impl<R: TraceRecord> Default for Trace<R> {
    fn default() -> Self {
        Trace {
            records: Vec::new(),
        }
    }
}

impl<R: TraceRecord> Trace<R> {
    /// An empty trace.
    pub fn new() -> Trace<R> {
        Trace::default()
    }

    /// Wraps existing records.
    pub fn from_records(records: Vec<R>) -> Trace<R> {
        Trace { records }
    }

    /// Appends a record.
    pub fn push(&mut self, record: R) {
        self.records.push(record);
    }

    /// The records.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes to a header line plus one line per record.
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 32 + 64);
        out.push_str(R::header());
        out.push('\n');
        for r in &self.records {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a trace serialized by [`to_tsv`](Self::to_tsv).
    ///
    /// Normalization is uniform across record types: lines are taken
    /// with either `\n` or `\r\n` endings (plus a defensive stray-`\r`
    /// strip), and **whitespace-only** lines — not just empty ones —
    /// are skipped wherever they appear. Before this was normalized,
    /// a trailing `" "` or `"\t"` line parsed differently per record
    /// type (whichever error its first field's parser produced).
    pub fn from_tsv(text: &str) -> Result<Trace<R>, TraceParseError> {
        let mut lines = text.lines().map(|l| l.strip_suffix('\r').unwrap_or(l));
        match lines.next() {
            Some(h) if h == R::header() => {}
            Some(other) => {
                return Err(err(format!(
                    "header mismatch: expected `{}`, found `{other}`",
                    R::header()
                )))
            }
            None => return Err(err("empty trace file")),
        }
        let mut records = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            records.push(R::parse_line(line)?);
        }
        Ok(Trace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scroll_record_round_trip() {
        let r = ScrollRecord {
            timestamp_ms: 1234,
            scroll_top: 5678.5,
            scroll_num: 36,
            delta: -42.25,
        };
        assert_eq!(ScrollRecord::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn slider_record_round_trip() {
        let r = SliderRecord {
            timestamp_ms: 20,
            min_val: 8.146,
            max_val: 11.2616367163,
            slider_idx: 2,
        };
        assert_eq!(SliderRecord::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn request_record_round_trip() {
        let r = RequestRecord {
            timestamp_ms: 99,
            tab_url: "https://www.airbnb.example/s/place?zoom=12&price_min=10".into(),
            request_id: 7,
            resource_type: ResourceType::MapTile,
            event: RequestEvent::RequestEnd,
            status: 200,
        };
        assert_eq!(RequestRecord::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(
            ScrollRecord::parse_line("1\t2\t3").is_err(),
            "too few fields"
        );
        assert!(
            ScrollRecord::parse_line("1\t2\t3\t4\t5").is_err(),
            "too many"
        );
        assert!(
            ScrollRecord::parse_line("x\t2\t3\t4").is_err(),
            "bad number"
        );
        assert!(RequestRecord::parse_line("1\tu\t2\tbogus\turl_update\t200").is_err());
        assert!(RequestRecord::parse_line("1\tu\t2\tdata\tbogus\t200").is_err());
    }

    #[test]
    fn trace_tsv_round_trip() {
        let mut t = Trace::new();
        for i in 0..50u64 {
            t.push(ScrollRecord {
                timestamp_ms: i * 17,
                scroll_top: i as f64 * 400.0,
                scroll_num: i * 2,
                delta: 400.0 - i as f64,
            });
        }
        let tsv = t.to_tsv();
        let back: Trace<ScrollRecord> = Trace::from_tsv(&tsv).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.len(), 50);
    }

    #[test]
    fn trace_rejects_wrong_header() {
        let tsv = "wrong\theader\n1\t2\t3\t4\n";
        assert!(Trace::<ScrollRecord>::from_tsv(tsv).is_err());
        assert!(Trace::<ScrollRecord>::from_tsv("").is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t: Trace<SliderRecord> = Trace::new();
        assert!(t.is_empty());
        let back: Trace<SliderRecord> = Trace::from_tsv(&t.to_tsv()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let tsv = format!("{}\n\n1\t2\t3\t4\n\n", ScrollRecord::header());
        let t: Trace<ScrollRecord> = Trace::from_tsv(&tsv).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn whitespace_only_lines_are_skipped_for_every_record_type() {
        // Interior and trailing lines of spaces/tabs parse as blanks —
        // uniformly, for all three record shapes.
        let scroll = format!("{}\n \n1\t2\t3\t4\n\t\n  \t \n", ScrollRecord::header());
        let t: Trace<ScrollRecord> = Trace::from_tsv(&scroll).unwrap();
        assert_eq!(t.len(), 1);

        let slider = format!("{}\n\t\t\n1\t2\t3\t0\n   \n", SliderRecord::header());
        let t: Trace<SliderRecord> = Trace::from_tsv(&slider).unwrap();
        assert_eq!(t.len(), 1);

        let request = format!(
            "{}\n \n1\tu\t2\tdata\turl_update\t200\n\t \t\n",
            RequestRecord::header()
        );
        let t: Trace<RequestRecord> = Trace::from_tsv(&request).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn crlf_traces_parse_identically() {
        let mut t = Trace::new();
        t.push(SliderRecord {
            timestamp_ms: 5,
            min_val: 1.25,
            max_val: 2.5,
            slider_idx: 1,
        });
        let crlf = t.to_tsv().replace('\n', "\r\n");
        let back: Trace<SliderRecord> = Trace::from_tsv(&crlf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn negative_parse_battery_rejects_malformed_traces() {
        // Non-blank garbage lines still fail — skipping is only for
        // whitespace, never for unparseable content.
        let cases: &[(&str, &str)] = &[
            ("garbage line", "x y z"),
            ("too few fields", "1\t2"),
            ("too many fields", "1\t2\t3\t4\t5"),
            ("bad number", "one\t2\t3\t4"),
        ];
        for (what, line) in cases {
            let tsv = format!("{}\n{line}\n", ScrollRecord::header());
            assert!(
                Trace::<ScrollRecord>::from_tsv(&tsv).is_err(),
                "scroll trace accepted {what}"
            );
        }
        for (what, line) in &[
            ("too few fields", "1\tu\t2\tdata\turl_update"),
            ("extra field", "1\tu\t2\tdata\turl_update\t200\tx"),
            ("unknown resource", "1\tu\t2\tvideo\turl_update\t200"),
            ("unknown event", "1\tu\t2\tdata\tnavigated\t200"),
            ("bad status", "1\tu\t2\tdata\turl_update\tOK"),
        ] {
            let tsv = format!("{}\n{line}\n", RequestRecord::header());
            assert!(
                Trace::<RequestRecord>::from_tsv(&tsv).is_err(),
                "request trace accepted {what}"
            );
        }
        let slider_bad = format!("{}\n1\t2\t3\t300\n", SliderRecord::header());
        assert!(
            Trace::<SliderRecord>::from_tsv(&slider_bad).is_err(),
            "slider_idx 300 overflows u8"
        );
    }
}
