//! Closed-loop adaptive behavior model.
//!
//! Every other workload family in this crate is **open-loop**: the next
//! action is scripted before the first answer arrives. Real exploration
//! is **closed-loop** (Purich et al., *An Adaptive Benchmark for
//! Modeling User Exploration*): the user zooms into the dense bin they
//! just saw, drills when one bin is an outlier, backtracks when a
//! filter empties the view, and abandons the session when answers are
//! slow. [`BehaviorPolicy`] models exactly that as a seeded state
//! machine whose next action is a **pure function of
//! `(seed, step, state, last feedback)`** — the feedback being the
//! previous query group's latency, [`ResultQuality`] (including
//! `Partial` bounds and shed/`Failed` answers), and histogram.
//!
//! Determinism discipline: every step draws from a fresh
//! `SimRng::seed(seed).split("behavior/{step}")`, so the randomness a
//! step consumes never depends on which transition fired before it.
//! Latency influences **only** the abandon transition; zoom, drill,
//! backtrack, and explore depend only on result *content*. That makes
//! the action stream replay-, thread-, and shard-invariant (answers are
//! merged deterministically, so identical answers ⇒ identical actions)
//! and the abandon rate provably monotone in injected latency: adding a
//! constant delay leaves every action unchanged and can only move the
//! abandon point earlier.

use ids_devices::DeviceKind;
use ids_engine::{BinSpec, Histogram, Predicate, Query, ResultQuality};
use ids_simclock::rng::SimRng;
use ids_simclock::{SimDuration, SimTime};

use crate::crossfilter::{self, CrossfilterUi, QueryGroup};
use crate::trace::{RequestEvent, RequestRecord, ResourceType, SliderRecord};

/// What the user observed from the previous action's query group.
#[derive(Debug, Clone, PartialEq)]
pub struct Feedback {
    /// Time from issuing the action's queries to the last answer.
    pub latency: SimDuration,
    /// Worst answer quality in the group (`Failed` covers shed queries).
    pub quality: ResultQuality,
    /// The histogram the user is looking at (the group's first answer),
    /// `None` before the first action or when every query was shed.
    pub histogram: Option<Histogram>,
    /// Which UI dimension `histogram` describes.
    pub hist_dim: usize,
}

impl Feedback {
    /// The blank feedback that seeds a session (nothing observed yet).
    pub fn initial() -> Feedback {
        Feedback {
            latency: SimDuration::ZERO,
            quality: ResultQuality::Exact,
            histogram: None,
            hist_dim: 0,
        }
    }

    /// Feedback for a fully shed / failed action: the user stared at a
    /// spinner for `latency` and got nothing.
    pub fn failed(latency: SimDuration) -> Feedback {
        Feedback {
            latency,
            quality: ResultQuality::Failed,
            histogram: None,
            hist_dim: 0,
        }
    }
}

/// Which feedback transition produced an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// Open-ended slider move (no strong signal in the last answer).
    Explore,
    /// Narrowed onto the dominant bin of the observed histogram.
    Zoom,
    /// Switched dimension to chase an outlier bin.
    Drill,
    /// Restored the previous range after an empty answer.
    Backtrack,
}

impl ActionKind {
    /// Stable lowercase token, used in digests and tables.
    pub fn token(self) -> &'static str {
        match self {
            ActionKind::Explore => "explore",
            ActionKind::Zoom => "zoom",
            ActionKind::Drill => "drill",
            ActionKind::Backtrack => "backtrack",
        }
    }
}

/// One closed-loop action: a slider manipulation plus the full widget
/// state it leaves behind.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveAction {
    /// Zero-based action index within the session.
    pub step: usize,
    /// Virtual time the user acted (previous answer + think time).
    pub at: SimTime,
    /// Which transition fired.
    pub kind: ActionKind,
    /// Which slider the action manipulated.
    pub slider: usize,
    /// Every dimension's `(lo, hi)` range *after* the action.
    pub ranges: Vec<(f64, f64)>,
}

impl AdaptiveAction {
    /// Projects the action onto the crossfilter trace schema (Table 5):
    /// the moved slider's new range at the action time.
    pub fn slider_record(&self) -> SliderRecord {
        let (lo, hi) = self.ranges[self.slider];
        SliderRecord {
            timestamp_ms: self.at.as_millis(),
            min_val: lo,
            max_val: hi,
            slider_idx: self.slider as u8,
        }
    }

    /// Projects the action onto the composite-interface request schema:
    /// a `url_update` whose URL serializes the full widget state, the
    /// exact shape the interface miner consumes.
    pub fn request_record(&self, ui: &CrossfilterUi) -> RequestRecord {
        RequestRecord {
            timestamp_ms: self.at.as_millis(),
            tab_url: state_url(&ui.table, ui, &self.ranges),
            request_id: self.step as u64,
            resource_type: ResourceType::Data,
            event: RequestEvent::UrlUpdate,
            status: 200,
        }
    }

    /// Stable one-line rendering for action-stream digests.
    pub fn digest_line(&self) -> String {
        let ranges = self
            .ranges
            .iter()
            .map(|&(lo, hi)| format!("{lo:?}..{hi:?}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.step,
            self.at.as_micros(),
            self.kind.token(),
            self.slider,
            ranges
        )
    }
}

/// Serializes a widget state as a canonical URL: `ids://xf/{table}?`
/// followed by `{column}_min`/`{column}_max` pairs in dimension order.
/// `{:?}` formatting round-trips `f64` exactly.
pub fn state_url(table: &str, ui: &CrossfilterUi, ranges: &[(f64, f64)]) -> String {
    let params = ui
        .dims
        .iter()
        .zip(ranges.iter())
        .map(|(d, &(lo, hi))| format!("{c}_min={lo:?}&{c}_max={hi:?}", c = d.column))
        .collect::<Vec<_>>()
        .join("&");
    format!("ids://xf/{table}?{params}")
}

/// Compiles one action into the query group the backend sees: exactly
/// the crossfilter shape (`n − 1` filtered histograms), but against the
/// action's full multi-dimension range state.
pub fn compile_action(ui: &CrossfilterUi, action: &AdaptiveAction) -> QueryGroup {
    let filter = Predicate::and(
        ui.dims
            .iter()
            .zip(action.ranges.iter())
            .map(|(d, &(lo, hi))| Predicate::between(d.column.clone(), lo, hi)),
    );
    let queries = ui
        .dims
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != action.slider)
        .map(|(_, d)| {
            Query::histogram(
                ui.table.clone(),
                BinSpec::new(d.column.clone(), d.min, d.max, d.bins),
                filter.clone(),
            )
        })
        .collect();
    QueryGroup {
        at: action.at,
        slider: action.slider,
        queries,
    }
}

/// Tuning knobs for the behavior state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorConfig {
    /// Session length in actions (closed-loop sessions are
    /// action-bounded, not duration-bounded, so injected latency can
    /// never *end* a session early except through abandonment).
    pub max_actions: usize,
    /// A group slower than this counts as a slow answer.
    pub abandon_after: SimDuration,
    /// Consecutive slow answers tolerated before abandoning.
    pub patience: usize,
    /// Zoom when the densest bin holds at least this fraction of the
    /// observed total.
    pub zoom_share: f64,
    /// Drill when the densest bin is at least this multiple of the
    /// median non-empty bin (but below the zoom share).
    pub drill_ratio: f64,
}

impl Default for BehaviorConfig {
    fn default() -> BehaviorConfig {
        BehaviorConfig {
            max_actions: 24,
            abandon_after: SimDuration::from_millis(400),
            patience: 3,
            zoom_share: 0.35,
            drill_ratio: 4.0,
        }
    }
}

/// Where the state machine currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BehaviorState {
    /// Default wandering.
    Exploring,
    /// Inside a zoom chain `depth` levels deep.
    Zooming {
        /// Consecutive zooms without leaving the state.
        depth: usize,
    },
    /// Just chased an outlier onto another dimension.
    Drilling,
    /// Just restored a previous range.
    Backtracking,
    /// Gave up on slow answers; the session is over.
    Abandoned,
}

#[derive(Debug, Clone, PartialEq)]
enum Mode {
    Adaptive,
    StaticReplay { device: DeviceKind, user: usize },
}

/// A seeded behavior model: either the closed-loop state machine or a
/// feedback-blind replay of the open-loop crossfilter simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorPolicy {
    seed: u64,
    ui: CrossfilterUi,
    config: BehaviorConfig,
    mode: Mode,
}

impl BehaviorPolicy {
    /// The closed-loop policy over `ui`, seeded.
    pub fn adaptive(seed: u64, ui: CrossfilterUi) -> BehaviorPolicy {
        BehaviorPolicy {
            seed,
            ui,
            config: BehaviorConfig::default(),
            mode: Mode::Adaptive,
        }
    }

    /// Replaces the behavior knobs.
    pub fn with_config(mut self, config: BehaviorConfig) -> BehaviorPolicy {
        self.config = config;
        self
    }

    /// Feedback disabled: replays the open-loop
    /// [`crossfilter::simulate_session`] trace for `(device, user,
    /// seed)` action by action, ignoring every answer. Drives through
    /// the same closed-loop machinery but reproduces the open-loop
    /// trace bit for bit.
    pub fn static_replay(
        device: DeviceKind,
        user: usize,
        seed: u64,
        ui: CrossfilterUi,
    ) -> BehaviorPolicy {
        BehaviorPolicy {
            seed,
            ui,
            config: BehaviorConfig::default(),
            mode: Mode::StaticReplay { device, user },
        }
    }

    /// The interface this policy manipulates.
    pub fn ui(&self) -> &CrossfilterUi {
        &self.ui
    }

    /// `true` for the adaptive mode (actions depend on feedback).
    pub fn is_closed_loop(&self) -> bool {
        self.mode == Mode::Adaptive
    }

    /// Starts a fresh session (sliders at full domain, step 0).
    pub fn session(&self) -> BehaviorSession {
        let replay = match &self.mode {
            Mode::Adaptive => None,
            Mode::StaticReplay { device, user } => {
                let s = crossfilter::simulate_session(*device, *user, self.seed, &self.ui);
                Some(s.trace.records().to_vec().into_iter())
            }
        };
        BehaviorSession {
            seed: self.seed,
            ui: self.ui.clone(),
            config: self.config.clone(),
            state: BehaviorState::Exploring,
            ranges: self.ui.initial_ranges(),
            undo: Vec::new(),
            slow_streak: 0,
            step: 0,
            now: SimTime::ZERO,
            replay,
            done: false,
        }
    }
}

/// One in-flight session of a [`BehaviorPolicy`]: call
/// [`next_action`](BehaviorSession::next_action) with the previous
/// action's [`Feedback`] until it returns `None`.
#[derive(Debug)]
pub struct BehaviorSession {
    seed: u64,
    ui: CrossfilterUi,
    config: BehaviorConfig,
    state: BehaviorState,
    ranges: Vec<(f64, f64)>,
    undo: Vec<(usize, (f64, f64))>,
    slow_streak: usize,
    step: usize,
    now: SimTime,
    replay: Option<std::vec::IntoIter<SliderRecord>>,
    done: bool,
}

impl BehaviorSession {
    /// Current state-machine position.
    pub fn state(&self) -> BehaviorState {
        self.state
    }

    /// `true` once the user has walked away from slow answers.
    pub fn abandoned(&self) -> bool {
        self.state == BehaviorState::Abandoned
    }

    /// Actions emitted so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Compiles `action` into its backend query group.
    pub fn compile(&self, action: &AdaptiveAction) -> QueryGroup {
        compile_action(&self.ui, action)
    }

    /// Advances the state machine by one action, or ends the session.
    /// Total: any `Feedback` shape (including out-of-range `hist_dim`
    /// and foreign histogram widths) yields either a valid action with
    /// strictly advancing time or a terminal `None` — never a wedge.
    /// Once `None` is returned the session stays ended.
    pub fn next_action(&mut self, feedback: &Feedback) -> Option<AdaptiveAction> {
        if self.done {
            return None;
        }
        if let Some(replay) = self.replay.as_mut() {
            let (Some(rec), false) = (replay.next(), self.ranges.is_empty()) else {
                self.done = true;
                return None;
            };
            let slider = (rec.slider_idx as usize).min(self.ranges.len() - 1);
            self.ranges[slider] = (rec.min_val, rec.max_val);
            let action = AdaptiveAction {
                step: self.step,
                at: SimTime::from_millis(rec.timestamp_ms),
                kind: ActionKind::Explore,
                slider,
                ranges: self.ranges.clone(),
            };
            self.step += 1;
            return Some(action);
        }

        if self.ui.dims.is_empty() || self.step >= self.config.max_actions {
            self.done = true;
            return None;
        }

        // Abandon-on-slow: the only latency-sensitive transition. Shed
        // and failed answers read as slow — the spinner never resolved.
        let slow = feedback.quality == ResultQuality::Failed
            || feedback.latency > self.config.abandon_after;
        if self.step > 0 {
            if slow {
                self.slow_streak += 1;
            } else {
                self.slow_streak = 0;
            }
            if self.slow_streak >= self.config.patience {
                self.state = BehaviorState::Abandoned;
                self.done = true;
                return None;
            }
        }

        // Per-step RNG split: the noise a step consumes is independent
        // of which transitions fired before it.
        let mut rng = SimRng::seed(self.seed).split(&format!("behavior/{}", self.step));
        let think = SimDuration::from_secs_f64(rng.uniform(0.3, 1.5));
        let at = if self.step == 0 {
            self.now + think
        } else {
            self.now + feedback.latency + think
        };

        let slider = self.transition(feedback, &mut rng);
        self.now = at;
        let action = AdaptiveAction {
            step: self.step,
            at,
            kind: match self.state {
                BehaviorState::Zooming { .. } => ActionKind::Zoom,
                BehaviorState::Drilling => ActionKind::Drill,
                BehaviorState::Backtracking => ActionKind::Backtrack,
                _ => ActionKind::Explore,
            },
            slider,
            ranges: self.ranges.clone(),
        };
        self.step += 1;
        Some(action)
    }

    /// Applies the content-driven transition, mutating the range state,
    /// and returns the manipulated slider.
    fn transition(&mut self, feedback: &Feedback, rng: &mut SimRng) -> usize {
        let dims = self.ui.dims.len();
        let observed = if self.step == 0 {
            None
        } else {
            feedback.histogram.as_ref()
        };
        let Some(hist) = observed else {
            return self.explore(rng);
        };

        // Backtrack-on-empty: the current filter shows nothing.
        if hist.total() == 0 {
            self.state = BehaviorState::Backtracking;
            return match self.undo.pop() {
                Some((dim, range)) => {
                    self.ranges[dim] = range;
                    dim
                }
                None => {
                    // Nothing to undo: reset the whole arrangement.
                    self.ranges = self.ui.initial_ranges();
                    rng.uniform_usize(0, dims)
                }
            };
        }

        let counts = hist.counts();
        let (peak_bin, peak) = counts
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .unwrap_or((0, 0));
        let total = hist.total();
        let frac = (peak_bin as f64 + 0.5) / counts.len().max(1) as f64;
        let dim = feedback.hist_dim.min(dims - 1);

        // Zoom-into-dense-bin: one bin dominates the view.
        if peak as f64 >= self.config.zoom_share * total as f64 {
            let d = &self.ui.dims[dim];
            let center = d.min + frac * d.span();
            let margin = (d.span() / counts.len().max(1) as f64) * rng.uniform(0.6, 1.4);
            self.undo.push((dim, self.ranges[dim]));
            let lo = (center - margin).max(d.min);
            let hi = (center + margin).min(d.max).max(lo);
            self.ranges[dim] = (lo, hi);
            let depth = match self.state {
                BehaviorState::Zooming { depth } => depth + 1,
                _ => 1,
            };
            self.state = BehaviorState::Zooming { depth };
            return dim;
        }

        // Drill-on-outlier: a bin stands well above the median without
        // dominating — chase it on a *different* dimension.
        let mut nonzero: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
        nonzero.sort_unstable();
        let median = nonzero[nonzero.len() / 2];
        if median > 0 && peak as f64 >= self.config.drill_ratio * median as f64 && dims > 1 {
            let other = (dim + 1 + rng.uniform_usize(0, dims - 1)) % dims;
            let d = &self.ui.dims[other];
            let center = d.min + frac * d.span();
            let half = d.span() * rng.uniform(0.05, 0.12);
            self.undo.push((other, self.ranges[other]));
            let lo = (center - half).max(d.min);
            let hi = (center + half).min(d.max).max(lo);
            self.ranges[other] = (lo, hi);
            self.state = BehaviorState::Drilling;
            return other;
        }

        self.explore(rng)
    }

    /// The open-loop fallback move: pick a slider, drag one handle to a
    /// fresh target (same target distribution as the crossfilter
    /// simulator, collapsed to a single discrete jump).
    fn explore(&mut self, rng: &mut SimRng) -> usize {
        let slider = rng.uniform_usize(0, self.ui.dims.len());
        let d = &self.ui.dims[slider];
        let move_lo = rng.chance(0.5);
        let (cur_lo, cur_hi) = self.ranges[slider];
        if move_lo {
            let target = rng
                .uniform(d.min, cur_hi - d.span() * 0.05)
                .clamp(d.min, d.max);
            self.ranges[slider].0 = target.min(cur_hi);
        } else {
            let target = rng
                .uniform(cur_lo + d.span() * 0.05, d.max)
                .clamp(d.min, d.max);
            self.ranges[slider].1 = target.max(cur_lo);
        }
        self.state = BehaviorState::Exploring;
        slider
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ui() -> CrossfilterUi {
        CrossfilterUi::for_road()
    }

    fn exact(hist: Histogram, latency_ms: u64) -> Feedback {
        Feedback {
            latency: SimDuration::from_millis(latency_ms),
            quality: ResultQuality::Exact,
            histogram: Some(hist),
            hist_dim: 0,
        }
    }

    /// Drives a session with a fixed feedback per step; returns actions.
    fn drive(policy: &BehaviorPolicy, fb: impl Fn(usize) -> Feedback) -> Vec<AdaptiveAction> {
        let mut session = policy.session();
        let mut out = Vec::new();
        let mut feedback = Feedback::initial();
        while let Some(a) = session.next_action(&feedback) {
            feedback = fb(a.step);
            out.push(a);
        }
        out
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let p = BehaviorPolicy::adaptive(9, ui());
        let fb = |_| exact(Histogram::from_counts(vec![5, 90, 5]), 50);
        let a = drive(&p, fb);
        let b = drive(&p, fb);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn dense_bin_triggers_zoom_and_narrows_the_range() {
        let p = BehaviorPolicy::adaptive(3, ui());
        let actions = drive(&p, |_| exact(Histogram::from_counts(vec![1, 200, 1]), 10));
        assert!(actions.iter().any(|a| a.kind == ActionKind::Zoom));
        let first_zoom = actions.iter().find(|a| a.kind == ActionKind::Zoom).unwrap();
        let d = &ui().dims[first_zoom.slider];
        let (lo, hi) = first_zoom.ranges[first_zoom.slider];
        assert!(hi - lo < d.span() * 0.95, "zoom narrows: {lo}..{hi}");
    }

    #[test]
    fn empty_answer_triggers_backtrack() {
        let p = BehaviorPolicy::adaptive(4, ui());
        let actions = drive(&p, |step| {
            if step % 2 == 1 {
                exact(Histogram::zeros(20), 10)
            } else {
                exact(Histogram::from_counts(vec![1, 300, 1]), 10)
            }
        });
        assert!(actions.iter().any(|a| a.kind == ActionKind::Backtrack));
    }

    #[test]
    fn outlier_triggers_drill_onto_another_dimension() {
        // Peak 40 of total 58: below the 0.35·total zoom share… no,
        // 40 ≥ 0.35·58 — use a flatter shape with one spike instead.
        let spike = {
            let mut c = vec![6u64; 20];
            c[7] = 30; // total 144, peak 30 < 50.4, ratio 30/6 = 5 ≥ 4
            c
        };
        let p = BehaviorPolicy::adaptive(5, ui());
        let actions = drive(&p, move |_| {
            exact(Histogram::from_counts(spike.clone()), 10)
        });
        let drill = actions.iter().find(|a| a.kind == ActionKind::Drill);
        let drill = drill.expect("outlier shape drills");
        assert_ne!(drill.slider, 0, "drill switches off the observed dim");
    }

    #[test]
    fn slow_answers_abandon_after_patience_runs_out() {
        let p = BehaviorPolicy::adaptive(6, ui());
        let mut session = p.session();
        let mut feedback = Feedback::initial();
        let mut n = 0;
        while let Some(_a) = session.next_action(&feedback) {
            feedback = exact(Histogram::from_counts(vec![3, 3, 3]), 2_000);
            n += 1;
        }
        assert!(session.abandoned());
        assert_eq!(n, BehaviorConfig::default().patience);
    }

    #[test]
    fn fast_answers_never_abandon() {
        let p = BehaviorPolicy::adaptive(6, ui());
        let actions = drive(&p, |_| exact(Histogram::from_counts(vec![3, 3, 3]), 2));
        assert_eq!(actions.len(), BehaviorConfig::default().max_actions);
    }

    #[test]
    fn static_replay_reproduces_the_open_loop_trace() {
        let device = DeviceKind::Touch;
        let p = BehaviorPolicy::static_replay(device, 1, 42, ui());
        // Feed wildly varying feedback: replay must ignore it all.
        let actions = drive(&p, |step| {
            if step % 3 == 0 {
                Feedback::failed(SimDuration::from_secs(5))
            } else {
                exact(Histogram::zeros(4), 900)
            }
        });
        let open = crossfilter::simulate_session(device, 1, 42, &ui());
        let replayed: Vec<SliderRecord> = actions.iter().map(|a| a.slider_record()).collect();
        assert_eq!(replayed, open.trace.records().to_vec());
    }

    #[test]
    fn compiled_groups_match_the_crossfilter_shape() {
        let p = BehaviorPolicy::adaptive(8, ui());
        let session = p.session();
        let actions = drive(&p, |_| exact(Histogram::from_counts(vec![9, 1, 1]), 10));
        for a in &actions {
            let g = session.compile(a);
            assert_eq!(g.queries.len(), ui().dims.len() - 1);
            assert_eq!(g.at, a.at);
            for q in &g.queries {
                assert_eq!(q.filter().expect("filtered").condition_count(), 3);
            }
        }
    }

    #[test]
    fn actions_advance_time_strictly() {
        let p = BehaviorPolicy::adaptive(10, ui());
        let actions = drive(&p, |_| exact(Histogram::from_counts(vec![1, 1]), 120));
        assert!(actions.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn state_url_round_trips_floats_exactly() {
        let u = ui();
        let url = state_url("dataroad", &u, &u.initial_ranges());
        assert!(url.starts_with("ids://xf/dataroad?x_min="));
        assert!(url.contains(&format!("x_max={:?}", u.dims[0].max)));
        assert!(!url.contains('\t'));
    }
}
