//! Inertial-scrolling sessions (case study 1).
//!
//! Fifteen users skim the top-4000 movie table on a trackpad, selecting
//! interesting movies. The behavior model reproduces the study's findings:
//!
//! - inertial flicks produce wheel deltas two orders of magnitude larger
//!   than plain scrolling (Fig 7);
//! - per-user scroll speeds span a wide range — max speeds of 12–200
//!   tuples/s, averages of 2–30 (Table 7, Fig 8);
//! - momentum makes users overshoot movies they meant to select, forcing
//!   backscrolls; some users need several passes per selection (Fig 9).
//!
//! Each simulated user is a draw of a [`ScrollUserProfile`]; sessions are
//! emitted as the Table 5 trace schema ([`ScrollRecord`]) plus selection
//! events, and analyzed by [`speed_stats`] / [`demand_curve`].

use ids_devices::scroll::ScrollPhysics;
use ids_simclock::rng::SimRng;
use ids_simclock::{SimDuration, SimTime};

use crate::trace::{ScrollRecord, Trace};

/// Rendered height of one movie tuple (poster row), pixels. Chosen so the
/// paper's pixel and tuple speed statistics are consistent
/// (≈ 31,500 px/s max ÷ ≈ 200 tuples/s max ≈ 157 px/tuple).
pub const TUPLE_HEIGHT_PX: f64 = 157.0;

/// Tuples visible per viewport (a MacBook-class window).
pub const VIEWPORT_TUPLES: usize = 6;

/// Per-user scrolling parameters, drawn once per participant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrollUserProfile {
    /// Typical flick velocity, px/s (log-normal across users).
    pub flick_velocity_px_s: f64,
    /// Mean flicks per burst before the user pauses to read.
    pub burst_len: f64,
    /// Mean reading pause between bursts, seconds.
    pub pause_mean_s: f64,
    /// Probability of spotting an interesting movie per viewport skimmed.
    pub select_prob_per_screen: f64,
    /// Probability a selection during fast motion overshoots.
    pub overshoot_prob: f64,
}

impl ScrollUserProfile {
    /// Draws a participant from the study population.
    ///
    /// Velocities are log-normal so the population spans slow, careful
    /// readers (~2,000 px/s peaks) to aggressive skimmers (~50,000 px/s),
    /// matching the Table 7 ranges.
    pub fn sample(rng: &mut SimRng) -> ScrollUserProfile {
        ScrollUserProfile {
            flick_velocity_px_s: rng.log_normal(9.6, 0.8).clamp(1_500.0, 60_000.0),
            burst_len: rng.uniform(1.2, 4.0),
            pause_mean_s: rng.log_normal(0.45, 0.6).clamp(0.4, 10.0),
            select_prob_per_screen: rng.uniform(0.02, 0.28),
            overshoot_prob: rng.uniform(0.35, 0.9),
        }
    }
}

/// A complete simulated scrolling session.
#[derive(Debug, Clone)]
pub struct ScrollSession {
    /// Participant index.
    pub user: usize,
    /// The drawn behavior parameters.
    pub profile: ScrollUserProfile,
    /// Wheel-event trace in the Table 5 schema.
    pub trace: Trace<ScrollRecord>,
    /// Tuple indices the user selected.
    pub selections: Vec<u64>,
    /// Selections that required scrolling back after an overshoot.
    pub backscrolled_selections: u64,
    /// Total backscroll passes (can exceed selections — Fig 9).
    pub backscroll_passes: u64,
    /// Session length.
    pub duration: SimDuration,
}

/// Simulates one user's full skim of `total_tuples` rows.
pub fn simulate_session(user: usize, seed: u64, total_tuples: usize) -> ScrollSession {
    let mut rng = SimRng::seed(seed).split(&format!("scroll/user/{user}"));
    let profile = ScrollUserProfile::sample(&mut rng);
    let mut sim = SessionSim::new(profile, total_tuples, rng);
    sim.run();
    ScrollSession {
        user,
        profile,
        duration: sim.now.saturating_since(SimTime::ZERO),
        trace: Trace::from_records(sim.records),
        selections: sim.selections,
        backscrolled_selections: sim.backscrolled_selections,
        backscroll_passes: sim.backscroll_passes,
    }
}

/// Simulates the full 15-user study of the paper.
pub fn simulate_study(seed: u64, users: usize, total_tuples: usize) -> Vec<ScrollSession> {
    (0..users)
        .map(|u| simulate_session(u, seed, total_tuples))
        .collect()
}

struct SessionSim {
    profile: ScrollUserProfile,
    physics: ScrollPhysics,
    rng: SimRng,
    end_px: f64,
    now: SimTime,
    pos_px: f64,
    records: Vec<ScrollRecord>,
    selections: Vec<u64>,
    backscrolled_selections: u64,
    backscroll_passes: u64,
    /// Next viewport boundary at which a selection check fires.
    next_check_px: f64,
}

impl SessionSim {
    fn new(profile: ScrollUserProfile, total_tuples: usize, rng: SimRng) -> SessionSim {
        SessionSim {
            profile,
            physics: ScrollPhysics::inertial(),
            rng,
            end_px: total_tuples as f64 * TUPLE_HEIGHT_PX,
            now: SimTime::ZERO,
            pos_px: 0.0,
            records: Vec::new(),
            selections: Vec::new(),
            backscrolled_selections: 0,
            backscroll_passes: 0,
            next_check_px: VIEWPORT_TUPLES as f64 * TUPLE_HEIGHT_PX,
        }
    }

    fn run(&mut self) {
        // Hard cap to guarantee termination even for a degenerate profile.
        let max_events = 2_000_000;
        while self.pos_px < self.end_px && self.records.len() < max_events {
            let burst = 1 + (self.rng.exponential(self.profile.burst_len - 1.0).round() as usize);
            for _ in 0..burst {
                if self.pos_px >= self.end_px {
                    break;
                }
                // Users start out reading carefully and accelerate once
                // the format is familiar: velocity ramps up over the
                // first quarter of the list. (This is what lets the
                // paper's timer fetch build an unbeatable lead.)
                let ramp = 0.3 + 0.7 * (self.pos_px / (0.25 * self.end_px)).min(1.0);
                let v0 = self
                    .rng
                    .log_normal(self.profile.flick_velocity_px_s.ln(), 0.35)
                    .clamp(500.0, 65_000.0)
                    * ramp;
                self.glide(v0);
            }
            // Reading pause between bursts.
            let pause = self.rng.exponential(self.profile.pause_mean_s).max(0.2);
            self.now += SimDuration::from_secs_f64(pause);
        }
    }

    /// Glides from one flick until friction stops it, checking for
    /// selection triggers as viewports scroll past.
    fn glide(&mut self, v0: f64) {
        let dt = self.physics.frame_interval;
        let dt_s = dt.as_secs_f64();
        let decay = (-dt_s / self.physics.friction_tau_s).exp();
        let mut v = v0;
        while v.abs() >= self.physics.stop_velocity && self.pos_px < self.end_px {
            let delta = v * dt_s;
            self.emit(delta);
            v *= decay;
            self.now += dt;
            if self.pos_px >= self.next_check_px {
                self.next_check_px += VIEWPORT_TUPLES as f64 * TUPLE_HEIGHT_PX;
                if self.rng.chance(self.profile.select_prob_per_screen) {
                    self.select(v.abs());
                    return; // the selection interrupted the glide
                }
            }
        }
    }

    /// The user spots a movie. At speed, they overshoot and must
    /// backscroll; each pass is a corrective flick that may itself
    /// overshoot.
    fn select(&mut self, speed_px_s: f64) {
        let target_tuple = (self.pos_px / TUPLE_HEIGHT_PX) as u64;
        let fast = speed_px_s > 2.0 * TUPLE_HEIGHT_PX; // > ~2 tuples/s instantaneous
        let overshoots = fast && self.rng.chance(self.profile.overshoot_prob);
        if overshoots {
            // Momentum carries the user past the target first.
            let carry = self.rng.uniform(0.5, 2.5) * VIEWPORT_TUPLES as f64 * TUPLE_HEIGHT_PX;
            self.coast_distance(carry);
            self.backscrolled_selections += 1;
            let passes = 1 + self.rng.weighted_index(&[0.55, 0.3, 0.15]) as u64;
            for pass in 0..passes {
                self.backscroll_passes += 1;
                // Scroll back toward the target; later passes are gentler.
                let back = self.pos_px - target_tuple as f64 * TUPLE_HEIGHT_PX;
                let fraction = if pass + 1 == passes {
                    1.0
                } else {
                    self.rng.uniform(1.05, 1.5) // overshoot backwards too
                };
                self.coast_distance(-back * fraction);
            }
        }
        self.selections.push(target_tuple);
        // Clicking the movie: point + click + brief look.
        self.now += SimDuration::from_secs_f64(self.rng.uniform(0.8, 2.0));
    }

    /// Emits a short glide covering approximately `distance` px
    /// (signed), using frame-spaced events like a gentle flick.
    fn coast_distance(&mut self, distance: f64) {
        if distance.abs() < 1.0 {
            return;
        }
        let dt = self.physics.frame_interval;
        let dt_s = dt.as_secs_f64();
        // Cover the distance in roughly a third of a second.
        let frames = (0.33 / dt_s).ceil().max(1.0) as usize;
        let per_frame = distance / frames as f64;
        for _ in 0..frames {
            self.emit(per_frame);
            self.now += dt;
        }
    }

    fn emit(&mut self, delta: f64) {
        self.pos_px = (self.pos_px + delta).clamp(0.0, self.end_px);
        self.records.push(ScrollRecord {
            timestamp_ms: self.now.as_millis(),
            scroll_top: self.pos_px,
            scroll_num: (self.pos_px / TUPLE_HEIGHT_PX) as u64,
            delta,
        });
    }
}

/// Speed statistics for one session, in both units of Fig 8 / Table 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedStats {
    /// Peak 1-second window speed, px/s.
    pub max_px_per_s: f64,
    /// Session-average speed (distance / duration), px/s.
    pub avg_px_per_s: f64,
    /// Peak 1-second window speed, tuples/s.
    pub max_tuples_per_s: f64,
    /// Session-average speed, tuples/s.
    pub avg_tuples_per_s: f64,
}

/// Computes [`SpeedStats`] from a session trace: max over sliding
/// 1-second windows, average over the whole session span.
pub fn speed_stats(session: &ScrollSession) -> SpeedStats {
    let records = session.trace.records();
    if records.is_empty() {
        return SpeedStats {
            max_px_per_s: 0.0,
            avg_px_per_s: 0.0,
            max_tuples_per_s: 0.0,
            avg_tuples_per_s: 0.0,
        };
    }
    // Sliding 1 s window over |delta|.
    let mut max_px = 0.0_f64;
    let mut window_sum = 0.0_f64;
    let mut start = 0usize;
    for (i, r) in records.iter().enumerate() {
        window_sum += r.delta.abs();
        while records[start].timestamp_ms + 1_000 <= r.timestamp_ms {
            window_sum -= records[start].delta.abs();
            start += 1;
        }
        let _ = i;
        max_px = max_px.max(window_sum);
    }
    let total_px: f64 = records.iter().map(|r| r.delta.abs()).sum();
    let span_s = (session.duration.as_secs_f64()).max(1e-9);
    let avg_px = total_px / span_s;
    SpeedStats {
        max_px_per_s: max_px,
        avg_px_per_s: avg_px,
        max_tuples_per_s: max_px / TUPLE_HEIGHT_PX,
        avg_tuples_per_s: avg_px / TUPLE_HEIGHT_PX,
    }
}

/// The demand curve for loading strategies: cumulative maximum tuple index
/// the viewport has required, over time. Monotone non-decreasing.
pub fn demand_curve(session: &ScrollSession) -> Vec<(SimTime, u64)> {
    let mut max_tuple = 0u64;
    session
        .trace
        .records()
        .iter()
        .map(|r| {
            let needed = r.scroll_num + VIEWPORT_TUPLES as u64;
            max_tuple = max_tuple.max(needed);
            (SimTime::from_millis(r.timestamp_ms), max_tuple)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_session() -> ScrollSession {
        simulate_session(0, 42, 800)
    }

    #[test]
    fn session_skims_the_whole_table() {
        let s = quick_session();
        let last = s.trace.records().last().unwrap();
        assert!(
            last.scroll_num >= 800 - VIEWPORT_TUPLES as u64,
            "reached tuple {}",
            last.scroll_num
        );
        assert!(!s.trace.is_empty());
    }

    #[test]
    fn timestamps_are_monotone() {
        let s = quick_session();
        let recs = s.trace.records();
        assert!(recs
            .windows(2)
            .all(|w| w[0].timestamp_ms <= w[1].timestamp_ms));
    }

    #[test]
    fn scroll_top_matches_delta_accumulation() {
        let s = quick_session();
        let mut pos = 0.0f64;
        for r in s.trace.records() {
            pos = (pos + r.delta).clamp(0.0, 800.0 * TUPLE_HEIGHT_PX);
            assert!((pos - r.scroll_top).abs() < 1e-6);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = simulate_session(3, 9, 400);
        let b = simulate_session(3, 9, 400);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.selections, b.selections);
        let c = simulate_session(4, 9, 400);
        assert_ne!(a.trace, c.trace, "different users differ");
    }

    #[test]
    fn backscrolls_imply_negative_deltas() {
        // Find a session with backscrolled selections and verify the trace
        // actually goes backwards somewhere.
        let sessions = simulate_study(11, 6, 600);
        let with_back = sessions
            .iter()
            .find(|s| s.backscrolled_selections > 0)
            .expect("at least one user overshoots");
        assert!(with_back.trace.records().iter().any(|r| r.delta < 0.0));
        assert!(with_back.backscroll_passes >= with_back.backscrolled_selections);
    }

    #[test]
    fn population_speed_ranges_match_table7_shape() {
        let sessions = simulate_study(2024, 15, 1_000);
        let stats: Vec<SpeedStats> = sessions.iter().map(speed_stats).collect();
        let max_tuples: Vec<f64> = stats.iter().map(|s| s.max_tuples_per_s).collect();
        let hi = max_tuples.iter().cloned().fold(0.0, f64::max);
        let lo = max_tuples.iter().cloned().fold(f64::INFINITY, f64::min);
        // Table 7: max speed range [12, 200] tuples/s. Accept the band
        // generously — the shape is a wide spread, ceiling well above 100.
        assert!(hi > 80.0, "fastest user {hi:.0} tuples/s");
        assert!(lo < 40.0, "slowest user {lo:.0} tuples/s");
        assert!(hi / lo.max(1e-9) > 3.0, "population must be diverse");
        // Averages are far below maxima (bursty behavior).
        for s in &stats {
            assert!(s.avg_tuples_per_s < s.max_tuples_per_s);
        }
    }

    #[test]
    fn pixel_and_tuple_units_are_consistent() {
        let s = quick_session();
        let st = speed_stats(&s);
        assert!((st.max_px_per_s / TUPLE_HEIGHT_PX - st.max_tuples_per_s).abs() < 1e-9);
        assert!((st.avg_px_per_s / TUPLE_HEIGHT_PX - st.avg_tuples_per_s).abs() < 1e-9);
    }

    #[test]
    fn demand_curve_is_monotone_and_bounded() {
        let s = quick_session();
        let d = demand_curve(&s);
        assert!(!d.is_empty());
        assert!(d.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 <= w[1].0));
        assert!(d.last().unwrap().1 <= 800 + VIEWPORT_TUPLES as u64);
    }

    #[test]
    fn selections_are_within_table_bounds() {
        let sessions = simulate_study(5, 4, 500);
        for s in sessions {
            for &sel in &s.selections {
                assert!(sel <= 500);
            }
        }
    }
}
