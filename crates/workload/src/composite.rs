//! Composite-interface exploration sessions (case study 3).
//!
//! Users browse an accommodation site through multiple query widgets —
//! map (zoom + drag), sliders, checkboxes, buttons, text box — in the
//! request → render → explore loop of Fig 17. The behavior model is
//! calibrated to the paper's findings:
//!
//! - widget mix: map ≈ 62.8%, slider/checkbox ≈ 29.9%, button ≈ 3.6%,
//!   text box ≈ 3.6% (Table 9);
//! - zoom levels concentrate in 11–14 and rarely move more than three
//!   levels from the start (Fig 18);
//! - drag distances shrink with zoom depth (Fig 19 / Table 10);
//! - ~70% of queries carry at most four filter conditions (Fig 20);
//! - exploration time (mean ≈ 18.3 s) dwarfs request time (mean ≈ 1.1 s,
//!   80% under a second), leaving room to prefetch ≈ 18 queries (Fig 21).

use ids_simclock::rng::SimRng;
use ids_simclock::{SimDuration, SimTime};

use crate::trace::{RequestEvent, RequestRecord, ResourceType, Trace};

/// The query widgets of the composite interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Widget {
    /// Map pan/zoom.
    Map,
    /// Range slider (price, rating...).
    Slider,
    /// Checkbox (room type, amenities...).
    Checkbox,
    /// Button (pagination, search).
    Button,
    /// Free-text place search.
    TextBox,
}

impl Widget {
    /// All widgets, in Table 9 order (slider and checkbox reported
    /// together there).
    pub const ALL: [Widget; 5] = [
        Widget::Map,
        Widget::Slider,
        Widget::Checkbox,
        Widget::Button,
        Widget::TextBox,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Widget::Map => "map",
            Widget::Slider => "slider",
            Widget::Checkbox => "checkbox",
            Widget::Button => "button",
            Widget::TextBox => "text box",
        }
    }
}

/// Map viewport state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapState {
    /// Tile zoom level.
    pub zoom: i32,
    /// Viewport centre latitude.
    pub center_lat: f64,
    /// Viewport centre longitude.
    pub center_lng: f64,
}

impl MapState {
    /// Viewport bounds `(sw_lat, sw_lng, ne_lat, ne_lng)` from centre and
    /// zoom using web-mercator-style spans.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        let lng_span = 360.0 / f64::powi(2.0, self.zoom);
        let lat_span = 170.0 / f64::powi(2.0, self.zoom);
        (
            self.center_lat - lat_span / 2.0,
            self.center_lng - lng_span / 2.0,
            self.center_lat + lat_span / 2.0,
            self.center_lng + lng_span / 2.0,
        )
    }
}

/// One non-map filter condition (numeric range or category).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterCondition {
    /// Parameter name as it appears in the URL.
    pub field: String,
    /// Serialized value (range or category).
    pub value: String,
}

/// The full query state behind the tab URL.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryState {
    /// Searched place name.
    pub place: String,
    /// Map viewport.
    pub map: MapState,
    /// Active non-map filters.
    pub filters: Vec<FilterCondition>,
    /// Result page.
    pub page: u32,
}

impl QueryState {
    /// Serializes the state as an Airbnb-style URL — the paper treats the
    /// tab URL itself as the query.
    pub fn to_url(&self) -> String {
        let (sw_lat, sw_lng, ne_lat, ne_lng) = self.map.bounds();
        let mut url = format!(
            "https://www.stays.example/s/{}?page={}&source=map&sw_lat={:.6}&sw_lng={:.6}&ne_lat={:.6}&ne_lng={:.6}&search_by_map=true&zoom={}",
            self.place.replace(' ', "-"),
            self.page,
            sw_lat,
            sw_lng,
            ne_lat,
            ne_lng,
            self.map.zoom
        );
        for f in &self.filters {
            url.push('&');
            url.push_str(&f.field);
            url.push('=');
            url.push_str(&f.value);
        }
        url
    }

    /// Number of filter conditions on this query (the Fig 20 quantity).
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }
}

/// One interaction step: the widget used, the resulting state, and the
/// Fig 17 phase durations.
#[derive(Debug, Clone)]
pub struct Step {
    /// When the interaction (URL update) happened.
    pub at: SimTime,
    /// Widget that drove it.
    pub widget: Widget,
    /// Query state after the interaction.
    pub state: QueryState,
    /// T0: data request time.
    pub request: SimDuration,
    /// T1: rendering time.
    pub render: SimDuration,
    /// T2: exploration time before the next interaction.
    pub explore: SimDuration,
}

/// A full session: steps plus the browser-extension-style trace.
#[derive(Debug, Clone)]
pub struct CompositeSession {
    /// Participant index.
    pub user: usize,
    /// Interaction steps in time order.
    pub steps: Vec<Step>,
    /// HTTP/browser event trace in the Table 5 schema.
    pub trace: Trace<RequestRecord>,
}

/// Session generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositeConfig {
    /// Minimum session length (the study asked for ≥ 20 minutes).
    pub min_duration: SimDuration,
    /// Mean data-request time; `None` uses the calibrated web model
    /// (log-normal, mean ≈ 1.1 s, 80% < 1 s).
    pub request_model: Option<SimDuration>,
}

impl Default for CompositeConfig {
    fn default() -> Self {
        CompositeConfig {
            min_duration: SimDuration::from_secs(20 * 60),
            request_model: None,
        }
    }
}

/// Table 9 widget weights.
const WIDGET_WEIGHTS: [(Widget, f64); 5] = [
    (Widget::Map, 62.8),
    (Widget::Slider, 20.0),
    (Widget::Checkbox, 9.9),
    (Widget::Button, 3.6),
    (Widget::TextBox, 3.6),
];

/// Simulates one user's composite-interface session.
pub fn simulate_session(user: usize, seed: u64, config: &CompositeConfig) -> CompositeSession {
    let mut rng = SimRng::seed(seed).split(&format!("composite/user/{user}"));
    let start_zoom = 11 + rng.weighted_index(&[0.45, 0.45, 0.1]) as i32; // 11, 12, occasionally 13
    let mut state = QueryState {
        place: pick_place(&mut rng),
        map: MapState {
            zoom: start_zoom,
            center_lat: rng.uniform(30.0, 45.0),
            center_lng: rng.uniform(-115.0, -80.0),
        },
        filters: vec![
            FilterCondition {
                field: "checkin".into(),
                value: "2026-08-10".into(),
            },
            FilterCondition {
                field: "guests".into(),
                value: rng.uniform_usize(1, 5).to_string(),
            },
        ],
        page: 1,
    };

    let mut steps = Vec::new();
    let mut trace = Trace::new();
    let mut now = SimTime::ZERO;
    let mut request_id = 0u64;
    let weights: Vec<f64> = WIDGET_WEIGHTS.iter().map(|&(_, w)| w).collect();

    while now.saturating_since(SimTime::ZERO) < config.min_duration {
        let widget = WIDGET_WEIGHTS[rng.weighted_index(&weights)].0;
        apply_widget(widget, &mut state, start_zoom, &mut rng);

        let request = match config.request_model {
            Some(mean) => {
                SimDuration::from_secs_f64(rng.log_normal(mean.as_secs_f64().max(1e-3).ln(), 0.4))
            }
            // Calibrated: log-normal(μ=-1.512, σ=1.8) → mean ≈ 1.1 s,
            // P(< 1 s) ≈ 0.8 (Fig 21).
            None => SimDuration::from_secs_f64(rng.log_normal(-1.512, 1.8).clamp(0.05, 30.0)),
        };
        let render = SimDuration::from_secs_f64(rng.uniform(0.08, 0.4));
        // Exploration: log-normal(μ=2.06, σ=1.3) → mean ≈ 18.3 s.
        let explore = SimDuration::from_secs_f64(rng.log_normal(2.06, 1.3).clamp(0.3, 240.0));

        emit_step_trace(
            &mut trace,
            &mut request_id,
            now,
            &state,
            request,
            render,
            &mut rng,
        );
        steps.push(Step {
            at: now,
            widget,
            state: state.clone(),
            request,
            render,
            explore,
        });
        now += request + render + explore;
    }

    CompositeSession { user, steps, trace }
}

/// Simulates the paper's 15-participant study.
pub fn simulate_study(seed: u64, users: usize, config: &CompositeConfig) -> Vec<CompositeSession> {
    (0..users)
        .map(|u| simulate_session(u, seed, config))
        .collect()
}

fn pick_place(rng: &mut SimRng) -> String {
    const PLACES: [&str; 8] = [
        "Alabama United States",
        "Lisbon Portugal",
        "Kyoto Japan",
        "Oaxaca Mexico",
        "Reykjavik Iceland",
        "Queenstown New Zealand",
        "Tbilisi Georgia",
        "Ljubljana Slovenia",
    ];
    PLACES[rng.uniform_usize(0, PLACES.len())].to_string()
}

fn apply_widget(widget: Widget, state: &mut QueryState, start_zoom: i32, rng: &mut SimRng) {
    match widget {
        Widget::Map => {
            if rng.chance(0.4) {
                // Zoom: ±1, biased back toward the 11–14 band and leashed
                // to ±3 levels from the start (Fig 18).
                let z = state.map.zoom;
                let mut dz: i32 = if rng.chance(0.5) { 1 } else { -1 };
                if z >= 14 && dz > 0 && rng.chance(0.75) {
                    dz = -1;
                }
                if z <= 11 && dz < 0 && rng.chance(0.75) {
                    dz = 1;
                }
                let next = (z + dz).clamp(8, 15).clamp(start_zoom - 3, start_zoom + 3);
                state.map.zoom = next;
            } else {
                // Drag: distance scales down with zoom depth (Table 10).
                let z = state.map.zoom;
                let lng_scale = 0.4 / f64::powi(2.0, z - 11).max(1.0);
                let lat_scale = 0.17 / f64::powi(2.0, z - 11).max(1.0);
                state.map.center_lng +=
                    rng.normal_clamped(0.0, lng_scale / 2.0, -lng_scale, lng_scale);
                state.map.center_lat +=
                    rng.normal_clamped(0.0, lat_scale / 2.0, -lat_scale, lat_scale);
            }
            state.page = 1;
        }
        Widget::Slider => {
            // The price range counts as one filter condition.
            let lo = (rng.uniform(10.0, 150.0) / 5.0).round() * 5.0;
            let hi = lo + (rng.uniform(20.0, 300.0) / 5.0).round() * 5.0;
            upsert_filter(state, "price", format!("{lo}_{hi}"));
            state.page = 1;
        }
        Widget::Checkbox => {
            // A pool of boolean/categorical refinements. Users prune as
            // often as they refine once a few are active, keeping the
            // Fig 20 CDF near "70% of queries have <= 4 filters".
            const BOXES: [(&str, &str); 6] = [
                ("room_types", "entire_home"),
                ("room_types", "private_room"),
                ("superhost", "true"),
                ("instant_book", "true"),
                ("pets_allowed", "true"),
                ("pool", "true"),
            ];
            let base =
                |f: &FilterCondition| matches!(f.field.as_str(), "checkin" | "guests" | "price");
            let active: Vec<usize> = state
                .filters
                .iter()
                .enumerate()
                .filter(|(_, f)| !base(f))
                .map(|(i, _)| i)
                .collect();
            let prune_bias = (active.len() as f64 / 4.0).min(0.85);
            if !active.is_empty() && rng.chance(prune_bias) {
                let victim = active[rng.uniform_usize(0, active.len())];
                state.filters.remove(victim);
            } else {
                let (field, value) = BOXES[rng.uniform_usize(0, BOXES.len())];
                toggle_filter(state, field, value);
            }
            state.page = 1;
        }
        Widget::Button => {
            state.page += 1;
        }
        Widget::TextBox => {
            state.place = pick_place(rng);
            state.map.center_lat = rng.uniform(25.0, 48.0);
            state.map.center_lng = rng.uniform(-120.0, -70.0);
            state.page = 1;
            // A fresh search drops most refinements.
            state
                .filters
                .retain(|f| f.field == "checkin" || f.field == "guests");
        }
    }
}

fn upsert_filter(state: &mut QueryState, field: &str, value: String) {
    if let Some(f) = state.filters.iter_mut().find(|f| f.field == field) {
        f.value = value;
    } else {
        state.filters.push(FilterCondition {
            field: field.into(),
            value,
        });
    }
}

fn toggle_filter(state: &mut QueryState, field: &str, value: &str) {
    if let Some(pos) = state
        .filters
        .iter()
        .position(|f| f.field == field && f.value == value)
    {
        state.filters.remove(pos);
    } else {
        state.filters.push(FilterCondition {
            field: field.into(),
            value: value.into(),
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_step_trace(
    trace: &mut Trace<RequestRecord>,
    request_id: &mut u64,
    at: SimTime,
    state: &QueryState,
    request: SimDuration,
    render: SimDuration,
    rng: &mut SimRng,
) {
    let url = state.to_url();
    trace.push(RequestRecord {
        timestamp_ms: at.as_millis(),
        tab_url: url.clone(),
        request_id: *request_id,
        resource_type: ResourceType::Data,
        event: RequestEvent::UrlUpdate,
        status: 0,
    });
    // Data request start/end.
    *request_id += 1;
    let data_id = *request_id;
    trace.push(RequestRecord {
        timestamp_ms: at.as_millis(),
        tab_url: url.clone(),
        request_id: data_id,
        resource_type: ResourceType::Data,
        event: RequestEvent::RequestStart,
        status: 0,
    });
    trace.push(RequestRecord {
        timestamp_ms: (at + request).as_millis(),
        tab_url: url.clone(),
        request_id: data_id,
        resource_type: ResourceType::Data,
        event: RequestEvent::RequestEnd,
        status: 200,
    });
    // A few tile/image fetches ride along.
    for _ in 0..rng.uniform_usize(2, 6) {
        *request_id += 1;
        let rid = *request_id;
        let rt = if rng.chance(0.5) {
            ResourceType::MapTile
        } else {
            ResourceType::Image
        };
        let end = at + request.mul_f64(rng.uniform(0.3, 1.0));
        trace.push(RequestRecord {
            timestamp_ms: at.as_millis(),
            tab_url: url.clone(),
            request_id: rid,
            resource_type: rt,
            event: RequestEvent::RequestStart,
            status: 0,
        });
        trace.push(RequestRecord {
            timestamp_ms: end.as_millis(),
            tab_url: url.clone(),
            request_id: rid,
            resource_type: rt,
            event: RequestEvent::RequestEnd,
            status: 200,
        });
    }
    // Rendering marker.
    trace.push(RequestRecord {
        timestamp_ms: (at + request + render).as_millis(),
        tab_url: url,
        request_id: data_id,
        resource_type: ResourceType::Data,
        event: RequestEvent::Mutation,
        status: 0,
    });
}

// ---------------------------------------------------------------------
// Analysis helpers for the paper's Section 8 figures.
// ---------------------------------------------------------------------

/// Fraction of interactions per widget across sessions (Table 9).
pub fn widget_percentages(sessions: &[CompositeSession]) -> Vec<(Widget, f64)> {
    let mut counts = std::collections::HashMap::new();
    let mut total = 0usize;
    for s in sessions {
        for step in &s.steps {
            *counts.entry(step.widget).or_insert(0usize) += 1;
            total += 1;
        }
    }
    Widget::ALL
        .iter()
        .map(|&w| {
            let c = counts.get(&w).copied().unwrap_or(0);
            (
                w,
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64 * 100.0
                },
            )
        })
        .collect()
}

/// Zoom level over time for one session (Fig 18).
pub fn zoom_series(session: &CompositeSession) -> Vec<(SimTime, i32)> {
    session.steps.iter().map(|s| (s.at, s.map_zoom())).collect()
}

impl Step {
    fn map_zoom(&self) -> i32 {
        self.state.map.zoom
    }
}

/// Per-zoom-level centre movements `(zoom, d_lat, d_lng)` caused by map
/// drags (Fig 19 / Table 10). Only steps whose widget is the map and
/// whose zoom did not change qualify — a text-box place search also moves
/// the centre, but by teleport, not drag.
pub fn drag_deltas(sessions: &[CompositeSession]) -> Vec<(i32, f64, f64)> {
    let mut out = Vec::new();
    for s in sessions {
        for w in s.steps.windows(2) {
            let (a, b) = (&w[0].state.map, &w[1].state.map);
            if w[1].widget == Widget::Map && a.zoom == b.zoom {
                let d_lat = b.center_lat - a.center_lat;
                let d_lng = b.center_lng - a.center_lng;
                if d_lat != 0.0 || d_lng != 0.0 {
                    out.push((a.zoom, d_lat, d_lng));
                }
            }
        }
    }
    out
}

/// Filter-condition counts per query across sessions (Fig 20 input).
pub fn filter_counts(sessions: &[CompositeSession]) -> Vec<f64> {
    sessions
        .iter()
        .flat_map(|s| s.steps.iter().map(|st| st.state.filter_count() as f64))
        .collect()
}

/// `(request_secs, explore_secs)` samples across sessions (Fig 21 input).
pub fn phase_times(sessions: &[CompositeSession]) -> (Vec<f64>, Vec<f64>) {
    let mut req = Vec::new();
    let mut exp = Vec::new();
    for s in sessions {
        for st in &s.steps {
            req.push(st.request.as_secs_f64());
            exp.push(st.explore.as_secs_f64());
        }
    }
    (req, exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_config() -> CompositeConfig {
        CompositeConfig {
            min_duration: SimDuration::from_secs(120),
            request_model: None,
        }
    }

    #[test]
    fn session_meets_minimum_duration() {
        let s = simulate_session(0, 42, &short_config());
        let last = s.steps.last().unwrap();
        assert!(last.at + last.request + last.render + last.explore >= SimTime::from_secs(120));
        assert!(!s.trace.is_empty());
    }

    #[test]
    fn widget_mix_tracks_table9() {
        let sessions = simulate_study(
            7,
            8,
            &CompositeConfig {
                min_duration: SimDuration::from_secs(20 * 60),
                request_model: None,
            },
        );
        let pct = widget_percentages(&sessions);
        let get = |w: Widget| pct.iter().find(|&&(x, _)| x == w).unwrap().1;
        let map = get(Widget::Map);
        assert!((55.0..70.0).contains(&map), "map share {map:.1}%");
        let sc = get(Widget::Slider) + get(Widget::Checkbox);
        assert!((23.0..37.0).contains(&sc), "slider+checkbox {sc:.1}%");
        let button = get(Widget::Button);
        assert!((1.0..7.0).contains(&button), "button {button:.1}%");
        let total: f64 = pct.iter().map(|&(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zoom_stays_leashed_to_start() {
        let sessions = simulate_study(9, 10, &short_config());
        for s in &sessions {
            let series = zoom_series(s);
            let start = series[0].1;
            for &(_, z) in &series {
                assert!((z - start).abs() <= 3, "zoom wandered {start} -> {z}");
                assert!((8..=15).contains(&z));
            }
        }
    }

    #[test]
    fn zoom_concentrates_in_11_to_14() {
        let sessions = simulate_study(
            11,
            10,
            &CompositeConfig {
                min_duration: SimDuration::from_secs(600),
                request_model: None,
            },
        );
        let mut in_band = 0usize;
        let mut total = 0usize;
        for s in &sessions {
            for (_, z) in zoom_series(s) {
                total += 1;
                if (11..=14).contains(&z) {
                    in_band += 1;
                }
            }
        }
        let frac = in_band as f64 / total as f64;
        assert!(frac > 0.8, "only {frac:.2} of zoom samples in 11-14");
    }

    #[test]
    fn drag_distances_shrink_with_zoom() {
        let sessions = simulate_study(
            13,
            12,
            &CompositeConfig {
                min_duration: SimDuration::from_secs(20 * 60),
                request_model: None,
            },
        );
        let deltas = drag_deltas(&sessions);
        let spread = |zoom: i32| -> f64 {
            let d: Vec<f64> = deltas
                .iter()
                .filter(|&&(z, _, _)| z == zoom)
                .map(|&(_, _, lng)| lng.abs())
                .collect();
            if d.is_empty() {
                return f64::NAN;
            }
            d.iter().cloned().fold(0.0, f64::max)
        };
        let s11 = spread(11);
        let s14 = spread(14);
        if s11.is_nan() || s14.is_nan() {
            panic!("expected drags at both zoom 11 and 14");
        }
        assert!(
            s11 > s14 * 2.0,
            "zoom 11 spread {s11:.3} vs zoom 14 {s14:.4}"
        );
        // Table 10 magnitude check at zoom 11: |d_lng| ≤ 0.4ish.
        assert!(s11 <= 0.45);
    }

    #[test]
    fn filter_count_cdf_shape() {
        let sessions = simulate_study(
            17,
            10,
            &CompositeConfig {
                min_duration: SimDuration::from_secs(20 * 60),
                request_model: None,
            },
        );
        let counts = filter_counts(&sessions);
        let le4 = counts.iter().filter(|&&c| c <= 4.0).count() as f64 / counts.len() as f64;
        assert!(
            (0.55..0.92).contains(&le4),
            "P(filters <= 4) = {le4:.2}, paper reports ~0.7"
        );
        assert!(counts.iter().cloned().fold(0.0, f64::max) <= 14.0);
    }

    #[test]
    fn phase_times_match_fig21_shape() {
        let sessions = simulate_study(
            19,
            10,
            &CompositeConfig {
                min_duration: SimDuration::from_secs(20 * 60),
                request_model: None,
            },
        );
        let (req, exp) = phase_times(&sessions);
        let req_under_1s = req.iter().filter(|&&r| r < 1.0).count() as f64 / req.len() as f64;
        assert!(
            (0.7..0.9).contains(&req_under_1s),
            "P(req<1s)={req_under_1s:.2}"
        );
        let exp_over_1s = exp.iter().filter(|&&e| e > 1.0).count() as f64 / exp.len() as f64;
        assert!(exp_over_1s > 0.75, "P(explore>1s)={exp_over_1s:.2}");
        let mean_req = req.iter().sum::<f64>() / req.len() as f64;
        let mean_exp = exp.iter().sum::<f64>() / exp.len() as f64;
        let prefetchable = mean_exp / mean_req;
        assert!(
            (8.0..35.0).contains(&prefetchable),
            "~18 adjacent queries should be prefetchable, got {prefetchable:.1}"
        );
    }

    #[test]
    fn url_serializes_the_query() {
        let s = simulate_session(1, 3, &short_config());
        let url = s.steps[0].state.to_url();
        for needle in ["sw_lat=", "ne_lng=", "zoom=", "page=", "guests="] {
            assert!(url.contains(needle), "missing {needle} in {url}");
        }
        assert!(!url.contains('\t'));
    }

    #[test]
    fn trace_request_pairs_are_consistent() {
        let s = simulate_session(2, 5, &short_config());
        use std::collections::HashMap;
        let mut started: HashMap<u64, u64> = HashMap::new();
        for r in s.trace.records() {
            match r.event {
                RequestEvent::RequestStart => {
                    started.insert(r.request_id, r.timestamp_ms);
                }
                RequestEvent::RequestEnd => {
                    let t0 = started.get(&r.request_id).expect("end without start");
                    assert!(r.timestamp_ms >= *t0);
                    assert_eq!(r.status, 200);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn determinism() {
        let a = simulate_session(4, 6, &short_config());
        let b = simulate_session(4, 6, &short_config());
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.steps.len(), b.steps.len());
    }

    #[test]
    fn page_button_increments_page() {
        // Directly exercise the widget application.
        let mut rng = SimRng::seed(1);
        let mut state = QueryState {
            place: "X".into(),
            map: MapState {
                zoom: 12,
                center_lat: 40.0,
                center_lng: -100.0,
            },
            filters: vec![],
            page: 1,
        };
        apply_widget(Widget::Button, &mut state, 12, &mut rng);
        assert_eq!(state.page, 2);
        apply_widget(Widget::TextBox, &mut state, 12, &mut rng);
        assert_eq!(state.page, 1);
    }
}
