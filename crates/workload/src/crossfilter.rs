//! Crossfiltering sessions (case study 2).
//!
//! The interface is a coordinated-view arrangement: one histogram + range
//! slider per attribute of the road-network table. Manipulating one
//! slider re-queries every *other* histogram under the combined filter —
//! `n − 1` queries per slider event, ~50 events/s at a 20 ms frame
//! interval. Device identity shapes the workload (Fig 14): mouse and
//! touch emit events only while the user intentionally drags, with
//! loosely spaced intervals; the Leap Motion's frictionless jitter emits
//! a dense 20–25 ms event stream even while the user merely hovers.

use ids_devices::{DeviceKind, DeviceProfile};
use ids_engine::{BinSpec, Predicate, Query};
use ids_simclock::rng::SimRng;
use ids_simclock::{SimDuration, SimTime};

use crate::datasets::road_domain;
use crate::trace::{SliderRecord, Trace};

/// One filterable dimension: a column with a slider over its domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DimSpec {
    /// Column name in the backing table.
    pub column: String,
    /// Domain minimum.
    pub min: f64,
    /// Domain maximum.
    pub max: f64,
    /// Histogram bins rendered for this dimension.
    pub bins: usize,
}

impl DimSpec {
    /// Domain width.
    pub fn span(&self) -> f64 {
        self.max - self.min
    }
}

/// The crossfilter interface: a table plus its slider dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossfilterUi {
    /// Backing table name.
    pub table: String,
    /// Slider dimensions, indexed by `sliderIdx` in the trace.
    pub dims: Vec<DimSpec>,
}

impl CrossfilterUi {
    /// The paper's setup: the `dataroad` table with 20-bin histograms on
    /// x (longitude), y (latitude), z (altitude).
    pub fn for_road() -> CrossfilterUi {
        CrossfilterUi {
            table: "dataroad".into(),
            dims: vec![
                DimSpec {
                    column: "x".into(),
                    min: road_domain::X_MIN,
                    max: road_domain::X_MAX,
                    bins: 20,
                },
                DimSpec {
                    column: "y".into(),
                    min: road_domain::Y_MIN,
                    max: road_domain::Y_MAX,
                    bins: 20,
                },
                DimSpec {
                    column: "z".into(),
                    min: road_domain::Z_MIN,
                    max: road_domain::Z_MAX,
                    bins: 20,
                },
            ],
        }
    }

    /// The road-network arrangement re-pointed at another table — the
    /// same sliders and domains over a tenant-private copy of the data
    /// (see [`crate::datasets::road_network_named`]). Behavior models
    /// seeded identically produce identical traces regardless of the
    /// table name, so multi-tenant fleets stay comparable across tenants.
    pub fn for_table(table: impl Into<String>) -> CrossfilterUi {
        CrossfilterUi {
            table: table.into(),
            ..CrossfilterUi::for_road()
        }
    }

    /// The full-domain ranges sliders start at.
    pub fn initial_ranges(&self) -> Vec<(f64, f64)> {
        self.dims.iter().map(|d| (d.min, d.max)).collect()
    }
}

/// The batch of queries one slider event triggers: a filtered histogram
/// for every *other* dimension (the moved dimension's own histogram is
/// rendered client-side by the slider overlay).
#[derive(Debug, Clone)]
pub struct QueryGroup {
    /// Event time.
    pub at: SimTime,
    /// Which slider moved.
    pub slider: usize,
    /// The concurrent histogram queries.
    pub queries: Vec<Query>,
}

/// Compiles a slider trace into the query-group stream the backend sees,
/// mirroring the paper's SQL: each group holds `n − 1` histogram queries
/// filtered by the conjunction of all current ranges.
pub fn compile_query_groups(ui: &CrossfilterUi, trace: &Trace<SliderRecord>) -> Vec<QueryGroup> {
    let mut ranges = ui.initial_ranges();
    let mut groups = Vec::with_capacity(trace.len());
    for rec in trace.records() {
        let idx = rec.slider_idx as usize;
        if idx < ranges.len() {
            ranges[idx] = (rec.min_val, rec.max_val);
        }
        let filter = |dims: &[DimSpec]| {
            Predicate::and(
                dims.iter()
                    .zip(ranges.iter())
                    .map(|(d, &(lo, hi))| Predicate::between(d.column.clone(), lo, hi)),
            )
        };
        let queries = ui
            .dims
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, d)| {
                Query::histogram(
                    ui.table.clone(),
                    BinSpec::new(d.column.clone(), d.min, d.max, d.bins),
                    filter(&ui.dims),
                )
            })
            .collect();
        groups.push(QueryGroup {
            at: SimTime::from_millis(rec.timestamp_ms),
            slider: idx,
            queries,
        });
    }
    groups
}

/// One user's crossfiltering session on one device.
#[derive(Debug, Clone)]
pub struct CrossfilterSession {
    /// Input device used.
    pub device: DeviceKind,
    /// Participant index.
    pub user: usize,
    /// Slider-event trace in the Table 5 schema.
    pub trace: Trace<SliderRecord>,
    /// Session length.
    pub duration: SimDuration,
}

/// Simulates one participant specifying range queries on `device`.
///
/// Mouse and touch users alternate drags (0.5–2 s) with thinking pauses
/// during which no events fire. Leap Motion users emit jitter events even
/// while hovering, and their sessions run longer (the paper's Fig 13
/// leap panel spans ~90 s vs ~60 s).
pub fn simulate_session(
    device: DeviceKind,
    user: usize,
    seed: u64,
    ui: &CrossfilterUi,
) -> CrossfilterSession {
    let mut rng = SimRng::seed(seed).split(&format!("xfilter/{device}/{user}"));
    let profile = DeviceProfile::for_kind(device);
    let is_leap = device == DeviceKind::LeapMotion;
    let session_len = if is_leap {
        SimDuration::from_secs_f64(rng.uniform(75.0, 95.0))
    } else {
        SimDuration::from_secs_f64(rng.uniform(50.0, 65.0))
    };

    let mut ranges = ui.initial_ranges();
    let mut records: Vec<SliderRecord> = Vec::new();
    let mut now = SimTime::ZERO;
    let end = SimTime::ZERO + session_len;

    while now < end {
        let slider = rng.uniform_usize(0, ui.dims.len());
        let dim = &ui.dims[slider];
        // Choose which handle to move and where.
        let move_lo = rng.chance(0.5);
        let (cur_lo, cur_hi) = ranges[slider];
        let target = if move_lo {
            rng.uniform(dim.min, cur_hi - dim.span() * 0.05)
        } else {
            rng.uniform(cur_lo + dim.span() * 0.05, dim.max)
        };

        let drag_secs = rng.uniform(0.5, 2.0);
        drag(
            &mut records,
            &mut now,
            &mut rng,
            &profile,
            dim,
            slider,
            &mut ranges[slider],
            move_lo,
            target,
            drag_secs,
            end,
        );

        // Think pause. Leap Motion keeps emitting jitter events.
        let pause = SimDuration::from_secs_f64(rng.uniform(0.8, 3.0));
        if is_leap {
            hover(
                &mut records,
                &mut now,
                &mut rng,
                &profile,
                dim,
                slider,
                ranges[slider],
                pause,
                end,
            );
        } else {
            now += pause;
        }
    }

    CrossfilterSession {
        device,
        user,
        duration: session_len,
        trace: Trace::from_records(records),
    }
}

/// Simulates the paper's 30-participant study: `users_per_device` on each
/// of mouse, touch, Leap Motion.
pub fn simulate_study(seed: u64, users_per_device: usize) -> Vec<CrossfilterSession> {
    let ui = CrossfilterUi::for_road();
    let mut out = Vec::with_capacity(users_per_device * 3);
    for device in [DeviceKind::Mouse, DeviceKind::Touch, DeviceKind::LeapMotion] {
        for user in 0..users_per_device {
            out.push(simulate_session(device, user, seed, &ui));
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn drag(
    records: &mut Vec<SliderRecord>,
    now: &mut SimTime,
    rng: &mut SimRng,
    profile: &DeviceProfile,
    dim: &DimSpec,
    slider: usize,
    range: &mut (f64, f64),
    move_lo: bool,
    target: f64,
    drag_secs: f64,
    end: SimTime,
) {
    let is_leap = !profile.has_friction;
    let base_frame_ms = 20.0;
    let n = (drag_secs * 1_000.0 / base_frame_ms).ceil().max(1.0) as usize;
    let start_val = if move_lo { range.0 } else { range.1 };
    for i in 1..=n {
        if *now >= end {
            return;
        }
        // Frame spacing: mouse/touch wander (dropped frames as the hand
        // slows), leap stays tight around 20-25 ms.
        let dt_ms = if is_leap {
            rng.normal_clamped(22.0, 1.2, 20.0, 25.0)
        } else {
            rng.normal_clamped(26.0, 9.0, 16.0, 58.0)
        };
        *now += SimDuration::from_millis_f64(dt_ms);
        let tau = i as f64 / n as f64;
        // Smoothstep drag profile plus device value noise.
        let s = tau * tau * (3.0 - 2.0 * tau);
        let noise_frac = if is_leap { 0.02 } else { 0.002 };
        let noise = rng.normal(0.0, dim.span() * noise_frac);
        let val = (start_val + (target - start_val) * s + noise).clamp(dim.min, dim.max);
        if move_lo {
            range.0 = val.min(range.1);
        } else {
            range.1 = val.max(range.0);
        }
        records.push(SliderRecord {
            timestamp_ms: now.as_millis(),
            min_val: range.0,
            max_val: range.1,
            slider_idx: slider as u8,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn hover(
    records: &mut Vec<SliderRecord>,
    now: &mut SimTime,
    rng: &mut SimRng,
    profile: &DeviceProfile,
    dim: &DimSpec,
    slider: usize,
    range: (f64, f64),
    pause: SimDuration,
    end: SimTime,
) {
    // The hand hovers over the handle; sensor jitter keeps issuing
    // (unintended) range updates around the resting values.
    let stop = (*now + pause).min(end);
    let (lo, hi) = range;
    while *now < stop {
        let dt_ms = rng.normal_clamped(22.0, 1.2, 20.0, 25.0);
        *now += SimDuration::from_millis_f64(dt_ms);
        let wiggle = dim.span() * 0.004 * profile.jitter_std / 9.0;
        let jl = rng.normal(0.0, wiggle);
        let jh = rng.normal(0.0, wiggle);
        let new_lo = (lo + jl).clamp(dim.min, dim.max);
        let new_hi = (hi + jh).clamp(new_lo, dim.max);
        records.push(SliderRecord {
            timestamp_ms: now.as_millis(),
            min_val: new_lo,
            max_val: new_hi,
            slider_idx: slider as u8,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ui() -> CrossfilterUi {
        CrossfilterUi::for_road()
    }

    #[test]
    fn ui_matches_paper_setup() {
        let ui = ui();
        assert_eq!(ui.dims.len(), 3);
        assert_eq!(ui.table, "dataroad");
        assert!(ui.dims.iter().all(|d| d.bins == 20));
        assert_eq!(ui.dims[1].min, road_domain::Y_MIN);
    }

    #[test]
    fn sessions_emit_valid_ranges() {
        for device in [DeviceKind::Mouse, DeviceKind::Touch, DeviceKind::LeapMotion] {
            let s = simulate_session(device, 0, 77, &ui());
            assert!(!s.trace.is_empty(), "{device} session empty");
            for r in s.trace.records() {
                assert!(r.min_val <= r.max_val, "{device}: inverted range");
                let d = &ui().dims[r.slider_idx as usize];
                assert!(r.min_val >= d.min - 1e-9 && r.max_val <= d.max + 1e-9);
            }
            let recs = s.trace.records();
            assert!(recs
                .windows(2)
                .all(|w| w[0].timestamp_ms <= w[1].timestamp_ms));
        }
    }

    #[test]
    fn leap_emits_far_more_events_than_mouse() {
        // Fig 14's y-axis contrast (~2500 vs ~120 scale).
        let mouse = simulate_session(DeviceKind::Mouse, 0, 5, &ui());
        let leap = simulate_session(DeviceKind::LeapMotion, 0, 5, &ui());
        assert!(
            leap.trace.len() as f64 > mouse.trace.len() as f64 * 2.0,
            "leap {} vs mouse {}",
            leap.trace.len(),
            mouse.trace.len()
        );
    }

    #[test]
    fn leap_intervals_are_tighter() {
        let intervals = |t: &Trace<SliderRecord>| -> Vec<f64> {
            t.records()
                .windows(2)
                .map(|w| (w[1].timestamp_ms - w[0].timestamp_ms) as f64)
                .collect()
        };
        let mouse = simulate_session(DeviceKind::Mouse, 1, 5, &ui());
        let leap = simulate_session(DeviceKind::LeapMotion, 1, 5, &ui());
        let std = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        // Compare only intra-burst intervals (< 100 ms) to exclude pauses.
        let mi: Vec<f64> = intervals(&mouse.trace)
            .into_iter()
            .filter(|&x| x < 100.0)
            .collect();
        let li: Vec<f64> = intervals(&leap.trace)
            .into_iter()
            .filter(|&x| x < 100.0)
            .collect();
        assert!(
            std(&li) < std(&mi),
            "leap {:.2} vs mouse {:.2}",
            std(&li),
            std(&mi)
        );
    }

    #[test]
    fn query_groups_have_n_minus_1_queries() {
        let ui = ui();
        let s = simulate_session(DeviceKind::Mouse, 2, 5, &ui);
        let groups = compile_query_groups(&ui, &s.trace);
        assert_eq!(groups.len(), s.trace.len());
        for g in &groups {
            assert_eq!(g.queries.len(), 2, "n-1 coordinated queries");
            // Each query filters on all three dimensions.
            for q in &g.queries {
                let filter = q.filter().expect("histograms carry filters");
                assert_eq!(filter.condition_count(), 3);
            }
        }
    }

    #[test]
    fn query_groups_track_slider_state() {
        let ui = ui();
        let mut trace = Trace::new();
        trace.push(SliderRecord {
            timestamp_ms: 0,
            min_val: 9.0,
            max_val: 10.0,
            slider_idx: 0,
        });
        trace.push(SliderRecord {
            timestamp_ms: 20,
            min_val: 57.0,
            max_val: 57.5,
            slider_idx: 1,
        });
        let groups = compile_query_groups(&ui, &trace);
        // Second group: moved slider 1 → queries for dims 0 and 2, both
        // filtered by x ∈ [9,10] AND y ∈ [57,57.5] AND z full.
        let q = &groups[1].queries[0];
        let display = q.to_string();
        assert!(display.contains("BETWEEN 9 AND 10"), "{display}");
        assert!(display.contains("BETWEEN 57 AND 57.5"), "{display}");
        assert_eq!(groups[1].slider, 1);
    }

    #[test]
    fn study_covers_all_devices() {
        let sessions = simulate_study(3, 2);
        assert_eq!(sessions.len(), 6);
        let devices: std::collections::HashSet<_> = sessions.iter().map(|s| s.device).collect();
        assert_eq!(devices.len(), 3);
    }

    #[test]
    fn determinism() {
        let a = simulate_session(DeviceKind::Touch, 4, 8, &ui());
        let b = simulate_session(DeviceKind::Touch, 4, 8, &ui());
        assert_eq!(a.trace, b.trace);
    }
}
