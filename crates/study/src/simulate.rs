//! Simulated user studies: demonstrating Section 4's threats to validity
//! with synthetic participants.
//!
//! The paper warns that within-subject designs suffer *learning*: users
//! do better on the second system "simply because they are familiar with
//! the task and due to no merit of the system", and prescribes
//! randomization or counterbalancing. This module makes the threat
//! measurable: synthetic participants complete the same task on two
//! systems; each exposure to the task makes them faster by a personal
//! learning factor. An uncounterbalanced study misattributes that gain
//! to whichever system comes second; a counterbalanced one cancels it.

use ids_simclock::rng::SimRng;

use crate::assignment::crossover_orders;

/// One synthetic participant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Participant {
    /// Task completion time on their first-ever exposure, seconds.
    pub base_time_s: f64,
    /// Multiplicative speedup per prior exposure (`0.8` = 20% faster the
    /// second time), regardless of system.
    pub learning_factor: f64,
    /// Trial-to-trial noise (log-normal sigma).
    pub noise_sigma: f64,
}

impl Participant {
    /// Draws a participant: baselines 60–180 s, learning 10–30%.
    pub fn sample(rng: &mut SimRng) -> Participant {
        Participant {
            base_time_s: rng.uniform(60.0, 180.0),
            learning_factor: rng.uniform(0.70, 0.90),
            noise_sigma: 0.08,
        }
    }

    /// Simulated completion time on the `exposure`-th task attempt
    /// (0-based) using a system with multiplicative `system_factor`.
    pub fn complete(&self, system_factor: f64, exposure: u32, rng: &mut SimRng) -> f64 {
        let learning = self.learning_factor.powi(exposure as i32);
        self.base_time_s * system_factor * learning * rng.log_normal(0.0, self.noise_sigma)
    }
}

/// The ground truth of a two-system comparison: system 1's completion
/// times are `true_ratio` × system 0's (e.g. `0.8` = genuinely 20%
/// faster).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSystemTask {
    /// System 1's true multiplicative effect vs system 0.
    pub true_ratio: f64,
}

/// Aggregated study measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyOutcome {
    /// Mean measured completion time on system 0, seconds.
    pub mean_system0_s: f64,
    /// Mean measured completion time on system 1, seconds.
    pub mean_system1_s: f64,
    /// Participants measured.
    pub participants: usize,
}

impl StudyOutcome {
    /// The measured effect ratio (system 1 / system 0). Compare against
    /// [`TwoSystemTask::true_ratio`] to quantify bias.
    pub fn measured_ratio(&self) -> f64 {
        if self.mean_system0_s <= 0.0 {
            return f64::NAN;
        }
        self.mean_system1_s / self.mean_system0_s
    }
}

/// Runs a within-subject study with explicit per-participant condition
/// orders (`orders[p]` is a permutation of `[0, 1]`).
pub fn run_within_subject(task: &TwoSystemTask, orders: &[Vec<usize>], seed: u64) -> StudyOutcome {
    let rng = SimRng::seed(seed).split("study/within");
    let mut totals = [0.0f64; 2];
    let mut counts = [0usize; 2];
    for (p, order) in orders.iter().enumerate() {
        let mut prng = rng.split(&format!("participant/{p}"));
        let participant = Participant::sample(&mut prng);
        for (exposure, &system) in order.iter().enumerate() {
            let factor = if system == 0 { 1.0 } else { task.true_ratio };
            let time = participant.complete(factor, exposure as u32, &mut prng);
            totals[system] += time;
            counts[system] += 1;
        }
    }
    StudyOutcome {
        mean_system0_s: totals[0] / counts[0].max(1) as f64,
        mean_system1_s: totals[1] / counts[1].max(1) as f64,
        participants: orders.len(),
    }
}

/// An uncounterbalanced within-subject study: everyone sees system 0
/// first — the design Section 4.2.2 warns against.
pub fn run_naive_within_subject(
    task: &TwoSystemTask,
    participants: usize,
    seed: u64,
) -> StudyOutcome {
    let orders = vec![vec![0usize, 1]; participants];
    run_within_subject(task, &orders, seed)
}

/// A counterbalanced within-subject study (AB/BA crossover).
pub fn run_counterbalanced(task: &TwoSystemTask, participants: usize, seed: u64) -> StudyOutcome {
    let mut rng = SimRng::seed(seed).split("study/orders");
    let orders = crossover_orders(participants, &mut rng);
    run_within_subject(task, &orders, seed)
}

/// A between-subject study: each participant sees exactly one system
/// (first exposure only), so learning cannot contaminate the contrast.
pub fn run_between_subject(task: &TwoSystemTask, participants: usize, seed: u64) -> StudyOutcome {
    let rng = SimRng::seed(seed).split("study/between");
    let mut totals = [0.0f64; 2];
    let mut counts = [0usize; 2];
    for p in 0..participants {
        let mut prng = rng.split(&format!("participant/{p}"));
        let participant = Participant::sample(&mut prng);
        let system = p % 2;
        let factor = if system == 0 { 1.0 } else { task.true_ratio };
        totals[system] += participant.complete(factor, 0, &mut prng);
        counts[system] += 1;
    }
    StudyOutcome {
        mean_system0_s: totals[0] / counts[0].max(1) as f64,
        mean_system1_s: totals[1] / counts[1].max(1) as f64,
        participants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TASK: TwoSystemTask = TwoSystemTask { true_ratio: 0.85 };

    #[test]
    fn naive_within_subject_overstates_the_second_system() {
        // Everyone does system 1 second → learning inflates its advantage.
        let naive = run_naive_within_subject(&TASK, 400, 7);
        let measured = naive.measured_ratio();
        assert!(
            measured < TASK.true_ratio - 0.05,
            "naive ratio {measured:.3} should overstate the true {:.2}",
            TASK.true_ratio
        );
    }

    #[test]
    fn counterbalancing_recovers_the_true_effect() {
        let balanced = run_counterbalanced(&TASK, 400, 7);
        let measured = balanced.measured_ratio();
        assert!(
            (measured - TASK.true_ratio).abs() < 0.04,
            "counterbalanced ratio {measured:.3} vs true {:.2}",
            TASK.true_ratio
        );
    }

    #[test]
    fn between_subject_is_unbiased_too() {
        let between = run_between_subject(&TASK, 800, 7);
        let measured = between.measured_ratio();
        assert!(
            (measured - TASK.true_ratio).abs() < 0.05,
            "between-subject ratio {measured:.3}"
        );
    }

    #[test]
    fn counterbalanced_beats_naive_in_bias() {
        let naive = run_naive_within_subject(&TASK, 400, 11);
        let balanced = run_counterbalanced(&TASK, 400, 11);
        let bias = |o: &StudyOutcome| (o.measured_ratio() - TASK.true_ratio).abs();
        assert!(bias(&balanced) < bias(&naive));
    }

    #[test]
    fn learning_effect_is_real_in_the_model() {
        let mut rng = SimRng::seed(3);
        let p = Participant::sample(&mut rng);
        let first = p.complete(1.0, 0, &mut rng);
        // Average over noise to see the learning trend.
        let later: f64 = (0..50).map(|_| p.complete(1.0, 2, &mut rng)).sum::<f64>() / 50.0;
        assert!(
            later < first,
            "exposure 2 mean {later:.1} vs first {first:.1}"
        );
    }

    #[test]
    fn null_effect_measures_near_one_when_counterbalanced() {
        let null = TwoSystemTask { true_ratio: 1.0 };
        let out = run_counterbalanced(&null, 400, 13);
        assert!((out.measured_ratio() - 1.0).abs() < 0.04);
    }

    #[test]
    fn outcome_accessors() {
        let out = run_between_subject(&TASK, 10, 1);
        assert_eq!(out.participants, 10);
        assert!(out.mean_system0_s > 0.0);
    }
}
