//! User-study design toolkit: Section 4 of *Evaluating Interactive Data
//! Systems* as executable decision procedures.
//!
//! Interactive systems are evaluated with humans in the loop, and humans
//! bring biases and inconsistencies that must be designed around. This
//! crate encodes the paper's methodology:
//!
//! - [`design`] — the in-person vs remote decision tree (Fig 4), the
//!   within- vs between-subject vs simulation guidance keyed by metric
//!   (Fig 5), and simulation-appropriateness checks (Section 4.1.3).
//! - [`assignment`] — randomization and counterbalancing machinery:
//!   random group splits, AB/BA crossover orders, and Latin squares for
//!   k-condition ordering (the learning/interference mitigations).
//! - [`bias`] — the Table 4 cognitive-bias catalog with per-bias
//!   mitigation measures, split by participant vs experimenter side.
//! - [`validity`] — ecological / external / construct validity threats
//!   (learning, interference, fatigue) and a checklist generator.
//! - [`survey`] — Tables 1 and 2: six-plus decades' worth of systems and
//!   the metrics their evaluations reported, as queryable data.
//! - [`simulate`] — synthetic participants with learning effects, making
//!   the learning threat (and its counterbalancing fix) measurable.

#![warn(missing_docs)]

pub mod assignment;
pub mod bias;
pub mod design;
pub mod simulate;
pub mod survey;
pub mod validity;
