//! Study-design decision procedures (Figs 4 and 5).

use ids_metrics::Metric;

/// Where the study takes place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// In front of the researcher: maximal control, limited population.
    /// Low ecological validity.
    InPerson,
    /// Online/crowdsourced: diverse population, limited control.
    /// High ecological validity.
    Remote,
}

/// Inputs to the Fig 4 in-person vs remote decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SettingNeeds {
    /// The study compares against a control condition.
    pub comparison_against_control: bool,
    /// Results depend on the specific device used.
    pub device_dependent: bool,
    /// A think-aloud protocol will be used.
    pub think_aloud: bool,
}

/// The Fig 4 decision: any of the three needs forces an in-person study;
/// otherwise a remote study's ecological validity wins.
pub fn recommend_setting(needs: &SettingNeeds) -> Setting {
    if needs.comparison_against_control || needs.device_dependent || needs.think_aloud {
        Setting::InPerson
    } else {
        Setting::Remote
    }
}

/// How participants are exposed to conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyDesign {
    /// The same users see every condition. Needed when the measured task
    /// depends on inherent user ability; low external validity and
    /// requires counterbalancing against carry-over effects.
    WithinSubject,
    /// Disjoint user groups per condition. Preferred whenever possible —
    /// no carry-over; high external validity.
    BetweenSubject,
    /// No humans: replay or generate interaction traces. Valid when
    /// interactions are definitive (no user cognition in the loop) and
    /// the navigation-pattern space can be covered.
    Simulation,
}

/// Task properties that steer the Fig 5 design choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskTraits {
    /// The measurement depends on inherent ability of the user (e.g.
    /// what counts as an insight differs per user).
    pub depends_on_inherent_ability: bool,
    /// Interactions are definitive and require no user cognition.
    pub interactions_definitive: bool,
    /// All plausible navigation patterns can be enumerated/tested.
    pub navigation_patterns_coverable: bool,
}

/// The Fig 5 recommendation for measuring `metric` on a task with the
/// given traits.
pub fn recommend_design(metric: Metric, traits: &TaskTraits) -> StudyDesign {
    // Simulation is admissible only when cognition is out of the loop
    // and coverage is feasible (Section 4.1.3: RAP, BinGo, Usher).
    if traits.interactions_definitive && traits.navigation_patterns_coverable {
        return StudyDesign::Simulation;
    }
    if traits.depends_on_inherent_ability {
        return StudyDesign::WithinSubject;
    }
    // Fig 5 groups the metrics: insight-flavored measurements ride on the
    // user's own ability (within-subject); task-outcome measurements
    // generalize best between subjects.
    match metric {
        Metric::NumberOfInsights | Metric::UniquenessOfInsights | Metric::UserFeedback => {
            StudyDesign::WithinSubject
        }
        Metric::Accuracy
        | Metric::NumberOfInteractions
        | Metric::Discoverability
        | Metric::TaskCompletionTime
        | Metric::Learnability => StudyDesign::BetweenSubject,
        // System-factor metrics don't need humans at all.
        m if !m.requires_humans() => StudyDesign::Simulation,
        _ => StudyDesign::BetweenSubject,
    }
}

/// Checks whether a simulation study is appropriate (Section 4.1.3) and
/// explains why not, otherwise.
pub fn simulation_appropriate(traits: &TaskTraits) -> Result<(), &'static str> {
    if !traits.interactions_definitive {
        return Err("interactions require user cognition; simulate only the mechanical parts");
    }
    if !traits.navigation_patterns_coverable {
        return Err("navigation-pattern space cannot be covered; collected traces or users needed");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_decision_tree() {
        assert_eq!(recommend_setting(&SettingNeeds::default()), Setting::Remote);
        for needs in [
            SettingNeeds {
                comparison_against_control: true,
                ..SettingNeeds::default()
            },
            SettingNeeds {
                device_dependent: true,
                ..SettingNeeds::default()
            },
            SettingNeeds {
                think_aloud: true,
                ..SettingNeeds::default()
            },
        ] {
            assert_eq!(recommend_setting(&needs), Setting::InPerson);
        }
    }

    #[test]
    fn insight_metrics_go_within_subject() {
        let traits = TaskTraits::default();
        assert_eq!(
            recommend_design(Metric::NumberOfInsights, &traits),
            StudyDesign::WithinSubject
        );
        assert_eq!(
            recommend_design(Metric::UniquenessOfInsights, &traits),
            StudyDesign::WithinSubject
        );
    }

    #[test]
    fn outcome_metrics_go_between_subject() {
        let traits = TaskTraits::default();
        for m in [
            Metric::Accuracy,
            Metric::TaskCompletionTime,
            Metric::Discoverability,
            Metric::Learnability,
            Metric::NumberOfInteractions,
        ] {
            assert_eq!(recommend_design(m, &traits), StudyDesign::BetweenSubject);
        }
    }

    #[test]
    fn inherent_ability_overrides() {
        let traits = TaskTraits {
            depends_on_inherent_ability: true,
            ..TaskTraits::default()
        };
        assert_eq!(
            recommend_design(Metric::Accuracy, &traits),
            StudyDesign::WithinSubject
        );
    }

    #[test]
    fn definitive_coverable_tasks_simulate() {
        let traits = TaskTraits {
            interactions_definitive: true,
            navigation_patterns_coverable: true,
            ..TaskTraits::default()
        };
        assert_eq!(
            recommend_design(Metric::TaskCompletionTime, &traits),
            StudyDesign::Simulation
        );
        assert!(simulation_appropriate(&traits).is_ok());
    }

    #[test]
    fn system_metrics_simulate() {
        assert_eq!(
            recommend_design(Metric::Latency, &TaskTraits::default()),
            StudyDesign::Simulation
        );
        assert_eq!(
            recommend_design(Metric::QueryIssuingFrequency, &TaskTraits::default()),
            StudyDesign::Simulation
        );
    }

    #[test]
    fn simulation_guard_rails() {
        assert!(simulation_appropriate(&TaskTraits {
            interactions_definitive: false,
            navigation_patterns_coverable: true,
            ..TaskTraits::default()
        })
        .is_err());
        assert!(simulation_appropriate(&TaskTraits {
            interactions_definitive: true,
            navigation_patterns_coverable: false,
            ..TaskTraits::default()
        })
        .is_err());
    }
}
