//! Study validity: the three aspects of Section 4.2 plus threat checks.

use crate::design::{Setting, StudyDesign};

/// The three validity aspects Padilla's framework distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidityAspect {
    /// How closely conditions match real-world use.
    Ecological,
    /// Whether results generalize beyond the tested population.
    External,
    /// Whether the metric measures the intended construct.
    Construct,
}

/// Threats to external validity in within-subject designs (Section 4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExternalThreat {
    /// Users do better on the second condition from task familiarity.
    Learning,
    /// Exposure to the first condition degrades the second (confused
    /// functionality); asymmetric interference defies counterbalancing.
    Interference,
    /// Long tasks degrade performance toward the end.
    Fatigue,
}

impl ExternalThreat {
    /// All threats.
    pub const ALL: [ExternalThreat; 3] = [
        ExternalThreat::Learning,
        ExternalThreat::Interference,
        ExternalThreat::Fatigue,
    ];

    /// The paper's mitigation.
    pub fn mitigation(self) -> &'static str {
        match self {
            ExternalThreat::Learning => "randomize or counterbalance condition order",
            ExternalThreat::Interference => {
                "randomize/counterbalance; if effects are asymmetric, conclusions weaken — \
                 prefer a between-subject design"
            }
            ExternalThreat::Fatigue => "break tasks into small chunks with adequate breaks",
        }
    }
}

/// A study plan summary for validity checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyPlan {
    /// Where the study runs.
    pub setting: Setting,
    /// How conditions are assigned.
    pub design: StudyDesign,
    /// Condition order is randomized or counterbalanced.
    pub order_controlled: bool,
    /// Tasks are chunked with breaks.
    pub breaks_scheduled: bool,
    /// Number of participants.
    pub participants: usize,
    /// Study uses real datasets / real-world tasks.
    pub realistic_tasks: bool,
    /// Proxy metrics stand in for cognitive constructs (e.g. completion
    /// time as "effort").
    pub uses_proxy_metrics: bool,
}

/// A validity concern raised by [`check_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concern {
    /// Which validity aspect is threatened.
    pub aspect: ValidityAspect,
    /// Human-readable explanation.
    pub note: String,
}

/// Minimum participants the paper cites for behavior studies ("some
/// studies recommend a minimum of 10 users", guideline 7).
pub const MIN_RECOMMENDED_USERS: usize = 10;

/// Audits a study plan against Section 4's guidance.
pub fn check_plan(plan: &StudyPlan) -> Vec<Concern> {
    let mut concerns = Vec::new();
    if plan.design == StudyDesign::WithinSubject && !plan.order_controlled {
        concerns.push(Concern {
            aspect: ValidityAspect::External,
            note: format!(
                "within-subject without order control risks learning/interference; {}",
                ExternalThreat::Learning.mitigation()
            ),
        });
    }
    if !plan.breaks_scheduled {
        concerns.push(Concern {
            aspect: ValidityAspect::External,
            note: format!("fatigue threat: {}", ExternalThreat::Fatigue.mitigation()),
        });
    }
    if plan.design != StudyDesign::Simulation && plan.participants < MIN_RECOMMENDED_USERS {
        concerns.push(Concern {
            aspect: ValidityAspect::External,
            note: format!(
                "only {} participants; behavior studies commonly need >= {}",
                plan.participants, MIN_RECOMMENDED_USERS
            ),
        });
    }
    if !plan.realistic_tasks {
        concerns.push(Concern {
            aspect: ValidityAspect::Ecological,
            note: "tasks do not simulate real-world use on real datasets (guideline 4)".into(),
        });
    }
    if plan.uses_proxy_metrics {
        concerns.push(Concern {
            aspect: ValidityAspect::Construct,
            note: "proxy metrics (e.g. completion time for effort) threaten construct \
                   validity; consider dual-task or physiological measures"
                .into(),
        });
    }
    concerns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sound_plan() -> StudyPlan {
        StudyPlan {
            setting: Setting::InPerson,
            design: StudyDesign::BetweenSubject,
            order_controlled: true,
            breaks_scheduled: true,
            participants: 15,
            realistic_tasks: true,
            uses_proxy_metrics: false,
        }
    }

    #[test]
    fn sound_plan_passes() {
        assert!(check_plan(&sound_plan()).is_empty());
    }

    #[test]
    fn within_subject_without_order_control_flags_external() {
        let plan = StudyPlan {
            design: StudyDesign::WithinSubject,
            order_controlled: false,
            ..sound_plan()
        };
        let concerns = check_plan(&plan);
        assert!(concerns
            .iter()
            .any(|c| c.aspect == ValidityAspect::External && c.note.contains("learning")));
    }

    #[test]
    fn small_samples_flagged_except_simulation() {
        let plan = StudyPlan {
            participants: 5,
            ..sound_plan()
        };
        assert!(!check_plan(&plan).is_empty());
        let sim = StudyPlan {
            design: StudyDesign::Simulation,
            participants: 0,
            ..sound_plan()
        };
        assert!(check_plan(&sim).is_empty());
    }

    #[test]
    fn unrealistic_tasks_hit_ecological_validity() {
        let plan = StudyPlan {
            realistic_tasks: false,
            ..sound_plan()
        };
        let concerns = check_plan(&plan);
        assert_eq!(concerns.len(), 1);
        assert_eq!(concerns[0].aspect, ValidityAspect::Ecological);
    }

    #[test]
    fn proxy_metrics_hit_construct_validity() {
        let plan = StudyPlan {
            uses_proxy_metrics: true,
            ..sound_plan()
        };
        let concerns = check_plan(&plan);
        assert!(concerns
            .iter()
            .any(|c| c.aspect == ValidityAspect::Construct));
    }

    #[test]
    fn threats_have_mitigations() {
        for t in ExternalThreat::ALL {
            assert!(!t.mitigation().is_empty());
        }
        assert!(ExternalThreat::Fatigue.mitigation().contains("breaks"));
    }
}
