//! The Table 4 cognitive-bias catalog with mitigation measures.

/// Whose behavior the bias distorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BiasSide {
    /// The study participant's.
    Participant,
    /// The experimenter's.
    Experimenter,
}

/// The cognitive biases Table 4 flags for user studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bias {
    /// Acting to please the researcher (e.g. supporting the hypothesis).
    SocialDesirability,
    /// Fixating on initial information (e.g. preferring the first system).
    Anchoring,
    /// One good feature inflating all ratings.
    Halo,
    /// Point clustering skewing choices among Pareto-front items.
    Attraction,
    /// Question wording steering the answer.
    Framing,
    /// Recruiting participants likely to favor the tested condition.
    Selection,
    /// Seeing the results one expects.
    Confirmation,
}

impl Bias {
    /// All cataloged biases, participant-side first (Table 4 order).
    pub const ALL: [Bias; 7] = [
        Bias::SocialDesirability,
        Bias::Anchoring,
        Bias::Halo,
        Bias::Attraction,
        Bias::Framing,
        Bias::Selection,
        Bias::Confirmation,
    ];

    /// Which side of the study this bias lives on.
    pub fn side(self) -> BiasSide {
        match self {
            Bias::SocialDesirability | Bias::Anchoring | Bias::Halo | Bias::Attraction => {
                BiasSide::Participant
            }
            Bias::Framing | Bias::Selection | Bias::Confirmation => BiasSide::Experimenter,
        }
    }

    /// Table 4's description of the bias.
    pub fn description(self) -> &'static str {
        match self {
            Bias::SocialDesirability => {
                "tendency to perform actions that make one likable to others, \
                 e.g. supporting the researcher's hypothesis"
            }
            Bias::Anchoring => {
                "fixating on a specific piece of initial information and basing \
                 all decisions on it, e.g. preferring the first system seen"
            }
            Bias::Halo => {
                "positive characteristics inferred from positive appearance; a \
                 participant rates all aspects highly because one feature is nice"
            }
            Bias::Attraction => {
                "clustering of points in a scatter plot affects the user's \
                 ability to choose between items on the Pareto front"
            }
            Bias::Framing => {
                "selecting an option because of how the sentence is framed; the \
                 researcher can steer choices by wording questions favorably"
            }
            Bias::Selection => {
                "recruiting participants likely to perform favorably on the \
                 tested condition (e.g. only iPhone users for an iPhone study)"
            }
            Bias::Confirmation => {
                "the researcher's tendency to see results confirming the hypothesis"
            }
        }
    }

    /// Table 4's mitigation measure.
    pub fn mitigation(self) -> &'static str {
        match self {
            Bias::SocialDesirability => {
                "follow externally approved scripted language; never disclose \
                 the tested hypothesis"
            }
            Bias::Anchoring => "randomize and counterbalance condition order",
            Bias::Halo => {
                "break study tasks into fine-grained tasks; have each \
                 participant evaluate a single feature"
            }
            Bias::Attraction => "modify the study procedure (e.g. de-cluster scatterplots)",
            Bias::Framing => "have study verbiage externally reviewed",
            Bias::Selection => {
                "randomly assign participants before collecting demographics or \
                 background information"
            }
            Bias::Confirmation => {
                "practice high transparency: publish study materials and all \
                 user comments"
            }
        }
    }
}

/// A rendered mitigation checklist for a study, optionally filtered to
/// one side. Good practice is to apply all measures to every study.
pub fn mitigation_checklist(side: Option<BiasSide>) -> Vec<(Bias, &'static str)> {
    Bias::ALL
        .iter()
        .copied()
        .filter(|b| side.map_or(true, |s| b.side() == s))
        .map(|b| (b, b.mitigation()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_split_matches_paper() {
        let participant: Vec<Bias> = Bias::ALL
            .iter()
            .copied()
            .filter(|b| b.side() == BiasSide::Participant)
            .collect();
        assert_eq!(
            participant,
            vec![
                Bias::SocialDesirability,
                Bias::Anchoring,
                Bias::Halo,
                Bias::Attraction
            ]
        );
        let experimenter: Vec<Bias> = Bias::ALL
            .iter()
            .copied()
            .filter(|b| b.side() == BiasSide::Experimenter)
            .collect();
        assert_eq!(
            experimenter,
            vec![Bias::Framing, Bias::Selection, Bias::Confirmation]
        );
    }

    #[test]
    fn every_bias_has_text() {
        for b in Bias::ALL {
            assert!(!b.description().is_empty());
            assert!(!b.mitigation().is_empty());
        }
    }

    #[test]
    fn checklist_filters_by_side() {
        assert_eq!(mitigation_checklist(None).len(), 7);
        assert_eq!(mitigation_checklist(Some(BiasSide::Participant)).len(), 4);
        assert_eq!(mitigation_checklist(Some(BiasSide::Experimenter)).len(), 3);
    }

    #[test]
    fn anchoring_mitigated_by_counterbalancing() {
        assert!(Bias::Anchoring.mitigation().contains("counterbalance"));
        assert!(Bias::Selection
            .mitigation()
            .contains("before collecting demographics"));
    }
}
