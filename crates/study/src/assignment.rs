//! Randomization and counterbalancing.
//!
//! Within-subject designs expose every user to every condition, so the
//! *order* of exposure must be controlled: randomization or
//! counterbalancing defuses learning and interference effects
//! (Section 4.2.2). This module provides random group assignment,
//! two-condition crossover (AB/BA), and Latin-square ordering for k
//! conditions — plus balanced Latin squares for even k, which also
//! equalize first-order carry-over.

use ids_simclock::rng::SimRng;

/// Randomly splits `participants` into `groups` near-equal groups.
/// Participants should be assigned *before* collecting demographics
/// (Table 4's selection-bias mitigation).
pub fn random_groups(participants: usize, groups: usize, rng: &mut SimRng) -> Vec<Vec<usize>> {
    assert!(groups > 0, "at least one group");
    let mut ids: Vec<usize> = (0..participants).collect();
    rng.shuffle(&mut ids);
    let mut out = vec![Vec::with_capacity(participants.div_ceil(groups)); groups];
    for (i, id) in ids.into_iter().enumerate() {
        out[i % groups].push(id);
    }
    out
}

/// Counterbalanced two-condition crossover: even participants see
/// `[0, 1]`, odd see `[1, 0]`, after a random shuffle of who is "even".
pub fn crossover_orders(participants: usize, rng: &mut SimRng) -> Vec<Vec<usize>> {
    let groups = random_groups(participants, 2, rng);
    let mut orders = vec![Vec::new(); participants];
    for &p in &groups[0] {
        orders[p] = vec![0, 1];
    }
    for &p in &groups[1] {
        orders[p] = vec![1, 0];
    }
    orders
}

/// A k×k Latin square: row *i* is the condition order for participant
/// group *i*; every condition appears exactly once per row and per column.
pub fn latin_square(k: usize) -> Vec<Vec<usize>> {
    (0..k)
        .map(|r| (0..k).map(|c| (r + c) % k).collect())
        .collect()
}

/// A balanced Latin square for even `k`: additionally, every condition
/// follows every other condition exactly once across rows, neutralizing
/// first-order carry-over. Panics on odd `k` (no balanced square exists
/// with k rows; use two mirrored squares instead).
pub fn balanced_latin_square(k: usize) -> Vec<Vec<usize>> {
    assert!(k >= 2 && k % 2 == 0, "balanced Latin squares need even k");
    (0..k)
        .map(|r| {
            (0..k)
                .map(|c| {
                    // Standard Williams design construction.
                    #[allow(clippy::manual_div_ceil)]
                    // (c+1)/2 here is a design index, not a rounding-up division
                    let base = if c % 2 == 0 { c / 2 } else { k - (c + 1) / 2 };
                    (base + r) % k
                })
                .collect()
        })
        .collect()
}

/// Verifies the Latin-square property: each row and each column is a
/// permutation of `0..k`.
pub fn is_latin_square(square: &[Vec<usize>]) -> bool {
    let k = square.len();
    if square.iter().any(|row| row.len() != k) {
        return false;
    }
    let is_perm = |xs: &[usize]| {
        let mut seen = vec![false; k];
        xs.iter().all(|&x| {
            if x >= k || seen[x] {
                false
            } else {
                seen[x] = true;
                true
            }
        })
    };
    if !square.iter().all(|row| is_perm(row)) {
        return false;
    }
    (0..k).all(|c| {
        let col: Vec<usize> = square.iter().map(|row| row[c]).collect();
        is_perm(&col)
    })
}

/// Assigns each participant a condition order by cycling the rows of a
/// Latin square (randomized row assignment).
pub fn latin_square_orders(
    participants: usize,
    conditions: usize,
    rng: &mut SimRng,
) -> Vec<Vec<usize>> {
    let square = latin_square(conditions);
    let mut rows: Vec<usize> = (0..participants).map(|i| i % conditions).collect();
    rng.shuffle(&mut rows);
    rows.into_iter().map(|r| square[r].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_participants() {
        let mut rng = SimRng::seed(1);
        let groups = random_groups(23, 3, &mut rng);
        assert_eq!(groups.len(), 3);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Near-equal sizes.
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn crossover_is_balanced() {
        let mut rng = SimRng::seed(2);
        let orders = crossover_orders(20, &mut rng);
        let ab = orders.iter().filter(|o| o == &&vec![0, 1]).count();
        let ba = orders.iter().filter(|o| o == &&vec![1, 0]).count();
        assert_eq!(ab, 10);
        assert_eq!(ba, 10);
    }

    #[test]
    fn latin_squares_are_latin() {
        for k in 1..=7 {
            assert!(is_latin_square(&latin_square(k)), "k={k}");
        }
    }

    #[test]
    fn balanced_squares_are_latin_and_balanced() {
        for k in [2usize, 4, 6, 8] {
            let sq = balanced_latin_square(k);
            assert!(is_latin_square(&sq), "k={k}");
            // First-order carry-over balance: each ordered pair (a then b)
            // appears exactly once across all rows.
            let mut pairs = std::collections::HashMap::new();
            for row in &sq {
                for w in row.windows(2) {
                    *pairs.entry((w[0], w[1])).or_insert(0usize) += 1;
                }
            }
            for (&(a, b), &count) in &pairs {
                assert_eq!(count, 1, "pair {a}->{b} appears {count} times (k={k})");
            }
            assert_eq!(pairs.len(), k * (k - 1));
        }
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn balanced_square_rejects_odd_k() {
        balanced_latin_square(3);
    }

    #[test]
    fn latin_square_orders_cover_conditions() {
        let mut rng = SimRng::seed(3);
        let orders = latin_square_orders(12, 4, &mut rng);
        assert_eq!(orders.len(), 12);
        for o in &orders {
            let mut sorted = o.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
        // Each square row is used participants/conditions times.
        let first_conditions: Vec<usize> = orders.iter().map(|o| o[0]).collect();
        for c in 0..4 {
            assert_eq!(first_conditions.iter().filter(|&&x| x == c).count(), 3);
        }
    }

    #[test]
    fn is_latin_square_rejects_bad_squares() {
        assert!(!is_latin_square(&[vec![0, 1], vec![0, 1]]));
        assert!(!is_latin_square(&[vec![0, 1], vec![1]]));
        assert!(!is_latin_square(&[vec![0, 2], vec![2, 0]]));
    }
}
