//! Tables 1 and 2: the survey of metrics used by interactive data
//! systems, as queryable data.
//!
//! Each entry records a system (or study), its year, and the metrics its
//! evaluation reported. Per-row metric counts follow the paper's tables;
//! where the table's check-mark placement is ambiguous in the source
//! text, cells are reconstructed from the systems' own publications —
//! the analyses the paper draws from these tables (metric frequencies,
//! co-occurrence patterns) are preserved in shape.

use ids_metrics::Metric;

/// Which survey table the entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Era {
    /// Table 1: data interaction 1997–2012.
    Early,
    /// Table 2: data interaction 2012–present.
    Modern,
}

/// One surveyed system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyEntry {
    /// System or first-author name.
    pub name: &'static str,
    /// Publication year.
    pub year: u16,
    /// Survey table.
    pub era: Era,
    /// Metrics the evaluation reported.
    pub metrics: &'static [Metric],
}

use Metric::*;

/// The full survey (Tables 1 + 2).
pub const SURVEY: &[SurveyEntry] = &[
    // ----- Table 1: 1997-2012 -----
    SurveyEntry {
        name: "Online Aggregation",
        year: 1997,
        era: Era::Early,
        metrics: &[Latency],
    },
    SurveyEntry {
        name: "Igarashi et al.",
        year: 2000,
        era: Era::Early,
        metrics: &[UserFeedback, TaskCompletionTime],
    },
    SurveyEntry {
        name: "Fekete and Plaisant",
        year: 2002,
        era: Era::Early,
        metrics: &[Latency],
    },
    SurveyEntry {
        name: "Yang et al.",
        year: 2003,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Plaisant",
        year: 2004,
        era: Era::Early,
        metrics: &[NumberOfInsights],
    },
    SurveyEntry {
        name: "Yang et al.",
        year: 2004,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Seo and Shneiderman",
        year: 2005,
        era: Era::Early,
        metrics: &[NumberOfInsights],
    },
    SurveyEntry {
        name: "Kosara et al.",
        year: 2006,
        era: Era::Early,
        metrics: &[Latency],
    },
    SurveyEntry {
        name: "Mackinlay et al.",
        year: 2007,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Scented Widgets",
        year: 2007,
        era: Era::Early,
        metrics: &[UserFeedback, NumberOfInsights],
    },
    SurveyEntry {
        name: "Faith",
        year: 2007,
        era: Era::Early,
        metrics: &[NumberOfInsights],
    },
    SurveyEntry {
        name: "Jagadish et al.",
        year: 2007,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Yang et al.",
        year: 2007,
        era: Era::Early,
        metrics: &[NumberOfInsights],
    },
    SurveyEntry {
        name: "Nalix",
        year: 2007,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Heer et al.",
        year: 2008,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "LiveRac",
        year: 2008,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Basu et al.",
        year: 2008,
        era: Era::Early,
        metrics: &[NumberOfInteractions],
    },
    SurveyEntry {
        name: "Atlas",
        year: 2008,
        era: Era::Early,
        metrics: &[Scalability, Throughput],
    },
    SurveyEntry {
        name: "Liu and Jagadish",
        year: 2009,
        era: Era::Early,
        metrics: &[TaskCompletionTime],
    },
    SurveyEntry {
        name: "Woodring and Shen",
        year: 2009,
        era: Era::Early,
        metrics: &[Latency, Scalability],
    },
    SurveyEntry {
        name: "Facetor",
        year: 2010,
        era: Era::Early,
        metrics: &[UserFeedback, NumberOfInteractions, Latency],
    },
    SurveyEntry {
        name: "Wrangler",
        year: 2011,
        era: Era::Early,
        metrics: &[UserFeedback, TaskCompletionTime],
    },
    SurveyEntry {
        name: "Dicon",
        year: 2011,
        era: Era::Early,
        metrics: &[UserFeedback, NumberOfInsights],
    },
    SurveyEntry {
        name: "Yang et al.",
        year: 2011,
        era: Era::Early,
        metrics: &[Latency],
    },
    SurveyEntry {
        name: "Kashyap et al.",
        year: 2011,
        era: Era::Early,
        metrics: &[NumberOfInteractions],
    },
    SurveyEntry {
        name: "Fisher et al.",
        year: 2012,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "GravNav",
        year: 2012,
        era: Era::Early,
        metrics: &[UserFeedback, TaskCompletionTime],
    },
    SurveyEntry {
        name: "Wei et al.",
        year: 2012,
        era: Era::Early,
        metrics: &[NumberOfInsights],
    },
    SurveyEntry {
        name: "Dataplay",
        year: 2012,
        era: Era::Early,
        metrics: &[UserFeedback, TaskCompletionTime],
    },
    SurveyEntry {
        name: "Zhang et al.",
        year: 2012,
        era: Era::Early,
        metrics: &[NumberOfInsights],
    },
    SurveyEntry {
        name: "VizDeck",
        year: 2012,
        era: Era::Early,
        metrics: &[UserFeedback],
    },
    // ----- Table 2: 2012-present -----
    SurveyEntry {
        name: "Skimmer",
        year: 2012,
        era: Era::Modern,
        metrics: &[UserFeedback, Latency],
    },
    SurveyEntry {
        name: "Scout",
        year: 2012,
        era: Era::Modern,
        metrics: &[CacheHitRate],
    },
    SurveyEntry {
        name: "Martin and Ward",
        year: 1995,
        era: Era::Modern,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Bakke et al.",
        year: 2011,
        era: Era::Modern,
        metrics: &[UserFeedback, TaskCompletionTime],
    },
    SurveyEntry {
        name: "GestureDB",
        year: 2013,
        era: Era::Modern,
        metrics: &[
            UserFeedback,
            TaskCompletionTime,
            Learnability,
            Discoverability,
        ],
    },
    SurveyEntry {
        name: "Basole et al.",
        year: 2013,
        era: Era::Modern,
        metrics: &[UserFeedback, NumberOfInsights, TaskCompletionTime],
    },
    SurveyEntry {
        name: "Biswas et al.",
        year: 2013,
        era: Era::Modern,
        metrics: &[NumberOfInsights, Accuracy],
    },
    SurveyEntry {
        name: "MotionExplorer",
        year: 2013,
        era: Era::Modern,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Yuan et al.",
        year: 2013,
        era: Era::Modern,
        metrics: &[NumberOfInsights],
    },
    SurveyEntry {
        name: "Ferreira et al.",
        year: 2013,
        era: Era::Modern,
        metrics: &[NumberOfInsights],
    },
    SurveyEntry {
        name: "Cooper et al. (YCSB)",
        year: 2010,
        era: Era::Modern,
        metrics: &[Latency],
    },
    SurveyEntry {
        name: "Immens",
        year: 2013,
        era: Era::Modern,
        metrics: &[Latency, Scalability],
    },
    SurveyEntry {
        name: "Nanocubes",
        year: 2013,
        era: Era::Modern,
        metrics: &[Latency],
    },
    SurveyEntry {
        name: "Kinetica",
        year: 2014,
        era: Era::Modern,
        metrics: &[UserFeedback, TaskCompletionTime, Learnability],
    },
    SurveyEntry {
        name: "DICE",
        year: 2014,
        era: Era::Modern,
        metrics: &[Accuracy, Latency, Scalability, CacheHitRate],
    },
    SurveyEntry {
        name: "Lyra",
        year: 2014,
        era: Era::Modern,
        metrics: &[UserFeedback, TaskCompletionTime],
    },
    SurveyEntry {
        name: "Dimitriadou et al.",
        year: 2014,
        era: Era::Modern,
        metrics: &[Accuracy, Latency, NumberOfInteractions],
    },
    SurveyEntry {
        name: "SeeDB",
        year: 2014,
        era: Era::Modern,
        metrics: &[UserFeedback, Accuracy, Latency],
    },
    SurveyEntry {
        name: "SnapToQuery",
        year: 2015,
        era: Era::Modern,
        metrics: &[UserFeedback, Learnability, Discoverability],
    },
    SurveyEntry {
        name: "Kim et al.",
        year: 2015,
        era: Era::Modern,
        metrics: &[Accuracy],
    },
    SurveyEntry {
        name: "ForeCache",
        year: 2015,
        era: Era::Modern,
        metrics: &[CacheHitRate],
    },
    SurveyEntry {
        name: "Zenvisage",
        year: 2016,
        era: Era::Modern,
        metrics: &[UserFeedback, NumberOfInsights, TaskCompletionTime],
    },
    SurveyEntry {
        name: "FluxQuery",
        year: 2016,
        era: Era::Modern,
        metrics: &[Latency],
    },
    SurveyEntry {
        name: "Voyager",
        year: 2016,
        era: Era::Modern,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Moritz et al.",
        year: 2017,
        era: Era::Modern,
        metrics: &[UserFeedback],
    },
    SurveyEntry {
        name: "Incvisage",
        year: 2017,
        era: Era::Modern,
        metrics: &[UserFeedback, TaskCompletionTime, Accuracy, Latency],
    },
    SurveyEntry {
        name: "Data Tweening",
        year: 2017,
        era: Era::Modern,
        metrics: &[UserFeedback, TaskCompletionTime],
    },
    SurveyEntry {
        name: "Icarus",
        year: 2018,
        era: Era::Modern,
        metrics: &[UserFeedback, TaskCompletionTime, Accuracy, Latency],
    },
    SurveyEntry {
        name: "Datamaran",
        year: 2018,
        era: Era::Modern,
        metrics: &[Accuracy],
    },
    SurveyEntry {
        name: "Tensorboard",
        year: 2018,
        era: Era::Modern,
        metrics: &[UserFeedback, NumberOfInsights],
    },
    SurveyEntry {
        name: "DataSpread",
        year: 2018,
        era: Era::Modern,
        metrics: &[Scalability],
    },
    SurveyEntry {
        name: "Sesame",
        year: 2018,
        era: Era::Modern,
        metrics: &[Latency, CacheHitRate],
    },
    SurveyEntry {
        name: "Transformer",
        year: 2019,
        era: Era::Modern,
        metrics: &[UserFeedback, TaskCompletionTime, Accuracy],
    },
    SurveyEntry {
        name: "ARQuery",
        year: 2019,
        era: Era::Modern,
        metrics: &[UserFeedback, TaskCompletionTime],
    },
];

/// Systems whose evaluations reported `metric`.
pub fn systems_using(metric: Metric) -> Vec<&'static SurveyEntry> {
    SURVEY
        .iter()
        .filter(|e| e.metrics.contains(&metric))
        .collect()
}

/// How often each metric appears across the survey, descending.
pub fn metric_frequencies() -> Vec<(Metric, usize)> {
    let mut counts: Vec<(Metric, usize)> = Metric::ALL
        .iter()
        .map(|&m| (m, systems_using(m).len()))
        .filter(|&(_, c)| c > 0)
        .collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    counts
}

/// Fraction of systems reporting `a` that also report `b` — the
/// co-occurrence analysis behind the paper's "latency is always measured
/// with accuracy" observation.
pub fn cooccurrence(a: Metric, b: Metric) -> f64 {
    let with_a = systems_using(a);
    if with_a.is_empty() {
        return 0.0;
    }
    let both = with_a.iter().filter(|e| e.metrics.contains(&b)).count();
    both as f64 / with_a.len() as f64
}

/// Renders one survey table as aligned text rows (`name year | metrics`).
pub fn render_table(era: Era) -> String {
    let mut out = String::new();
    for e in SURVEY.iter().filter(|e| e.era == era) {
        let metrics: Vec<&str> = e.metrics.iter().map(|m| m.name()).collect();
        out.push_str(&format!(
            "{:<28} {:>4} | {}\n",
            e.name,
            e.year,
            metrics.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_paper() {
        let early = SURVEY.iter().filter(|e| e.era == Era::Early).count();
        let modern = SURVEY.iter().filter(|e| e.era == Era::Modern).count();
        assert_eq!(early, 31, "Table 1 rows");
        assert_eq!(modern, 34, "Table 2 rows");
    }

    #[test]
    fn every_entry_reports_at_least_one_metric() {
        for e in SURVEY {
            assert!(!e.metrics.is_empty(), "{} has no metrics", e.name);
            // No duplicate metrics within an entry.
            let mut m = e.metrics.to_vec();
            m.sort_by_key(|m| m.name());
            m.dedup();
            assert_eq!(m.len(), e.metrics.len(), "{} has duplicates", e.name);
        }
    }

    #[test]
    fn user_feedback_is_the_most_common_human_metric() {
        let freq = metric_frequencies();
        let top_human = freq
            .iter()
            .find(|(m, _)| m.requires_humans())
            .map(|&(m, _)| m)
            .unwrap();
        assert_eq!(top_human, Metric::UserFeedback);
    }

    #[test]
    fn novel_metrics_are_absent_from_prior_work() {
        // The survey's point: nobody measured LCV or QIF before.
        assert!(systems_using(Metric::LatencyConstraintViolation).is_empty());
        assert!(systems_using(Metric::QueryIssuingFrequency).is_empty());
    }

    #[test]
    fn prefetching_systems_report_cache_hit_rate() {
        let names: Vec<&str> = systems_using(Metric::CacheHitRate)
            .iter()
            .map(|e| e.name)
            .collect();
        assert!(names.contains(&"Scout"));
        assert!(names.contains(&"ForeCache"));
        assert!(names.contains(&"DICE"));
    }

    #[test]
    fn accuracy_mostly_cooccurs_with_latency() {
        // Paper: "latency is always measured with accuracy" (in the papers
        // that report it) — allow for the reconstruction's slack.
        let c = cooccurrence(Metric::Accuracy, Metric::Latency);
        assert!(c >= 0.5, "accuracy→latency co-occurrence {c:.2}");
    }

    #[test]
    fn gesturedb_reports_both_learnability_and_discoverability() {
        let g = SURVEY.iter().find(|e| e.name == "GestureDB").unwrap();
        assert!(g.metrics.contains(&Metric::Learnability));
        assert!(g.metrics.contains(&Metric::Discoverability));
    }

    #[test]
    fn render_tables() {
        let t1 = render_table(Era::Early);
        assert!(t1.contains("Online Aggregation"));
        assert_eq!(t1.lines().count(), 31);
        let t2 = render_table(Era::Modern);
        assert!(t2.contains("Sesame"));
        assert_eq!(t2.lines().count(), 34);
    }
}
