//! Hot-path metrics: counters, gauges, and log-linear histograms, all
//! lock-free to update and mergeable across threads, collected in a
//! process-wide registry keyed by dotted names
//! (`subsystem.component.metric`, e.g. `engine.buffer.hits`).
//!
//! Components that already own per-instance statistics (the buffer pool's
//! `BufferPoolStats`) keep their own `Arc<Counter>`s and *attach* them to
//! the registry: a snapshot sums the owned value plus every live attached
//! instance, so per-instance accessors and global totals stay consistent
//! without double bookkeeping.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level (queue depth, resident pages) with a tracked
/// high watermark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    hwm: AtomicI64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.hwm.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` and returns the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.hwm.fetch_max(new, Ordering::Relaxed);
        new
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    #[inline]
    pub fn high_watermark(&self) -> i64 {
        self.hwm.load(Ordering::Relaxed)
    }

    /// Resets level and watermark to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.hwm.store(0, Ordering::Relaxed);
    }
}

/// Values below this are their own bucket (exact small-value resolution).
const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per power of two above the linear range.
const SUBBUCKETS: usize = 16;
/// log2 of `LINEAR_CUTOFF`.
const MIN_EXP: u32 = 4;
/// Total bucket count: 16 linear + 16 per exponent for exponents 4..=63.
pub const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - MIN_EXP as usize) * SUBBUCKETS;

/// Maps a value to its bucket index. Relative error is bounded by 1/16
/// (one sub-bucket) everywhere above the linear range, exact below it.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - MIN_EXP)) & (SUBBUCKETS as u64 - 1)) as usize;
    LINEAR_CUTOFF as usize + ((exp - MIN_EXP) as usize) * SUBBUCKETS + sub
}

/// The smallest value that maps to bucket `idx` (used as the quantile
/// representative, so reported quantiles are conservative lower bounds).
#[inline]
fn bucket_lower(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_CUTOFF as usize;
    let exp = MIN_EXP + (rel / SUBBUCKETS) as u32;
    let sub = (rel % SUBBUCKETS) as u64;
    (1u64 << exp) + (sub << (exp - MIN_EXP))
}

/// A log-linear histogram of `u64` samples: exact below 16, then 16
/// sub-buckets per power of two (≤6.25% relative bucket width). Updates
/// are a single relaxed `fetch_add`; histograms merge bucket-wise, so
/// per-thread instances can be combined after a parallel section.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating only at u64 wrap, which the
    /// workloads here never approach).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the lower bound
    /// of the containing bucket (within 6.25% of the true rank value).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_lower(idx);
            }
        }
        self.max()
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs in value
    /// order — the raw shape a telemetry lakehouse ingests, as opposed
    /// to the point-quantile [`HistogramSummary`].
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower(idx), n))
            })
            .collect()
    }

    /// Adds all of `other`'s samples into `self`, bucket-wise.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        if other.count() > 0 {
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max.fetch_max(other.max(), Ordering::Relaxed);
        }
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 90th percentile (bucket lower bound).
    pub p90: u64,
    /// 99th percentile (bucket lower bound).
    pub p99: u64,
}

/// Point-in-time view of every registered metric, name-sorted so
/// rendering it is deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals (owned value + live attached instances).
    pub counters: Vec<(String, u64)>,
    /// Gauge `(current, high-watermark)` pairs.
    pub gauges: Vec<(String, i64, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
}

struct CounterSlot {
    owned: Arc<Counter>,
    attached: Vec<Weak<Counter>>,
}

struct HistogramSlot {
    owned: Arc<Histogram>,
    attached: Vec<Weak<Histogram>>,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, CounterSlot>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, HistogramSlot>,
}

/// The process-wide metrics registry. Obtain it with [`metrics()`].
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

static REGISTRY: Registry = Registry {
    inner: Mutex::new(RegistryInner {
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
    }),
};

/// The process-wide registry.
#[inline]
pub fn metrics() -> &'static Registry {
    &REGISTRY
}

impl Registry {
    /// The counter registered under `name`, created on first use. Clone
    /// the `Arc` once at setup and update through it on hot paths — the
    /// lookup takes the registry lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| CounterSlot {
                owned: Arc::new(Counter::new()),
                attached: Vec::new(),
            })
            .owned
            .clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramSlot {
                owned: Arc::new(Histogram::new()),
                attached: Vec::new(),
            })
            .owned
            .clone()
    }

    /// Attaches an externally-owned counter under `name`: snapshots sum
    /// it with the owned counter while the `Arc` stays alive. This is
    /// how per-instance stats (one buffer pool among several) feed the
    /// global totals without giving up their own accessors.
    pub fn attach_counter(&self, name: &str, counter: &Arc<Counter>) {
        let mut inner = self.inner.lock();
        let slot = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| CounterSlot {
                owned: Arc::new(Counter::new()),
                attached: Vec::new(),
            });
        slot.attached.retain(|w| w.strong_count() > 0);
        slot.attached.push(Arc::downgrade(counter));
    }

    /// Attaches an externally-owned histogram under `name`; snapshots
    /// merge it with the owned histogram while the `Arc` stays alive.
    pub fn attach_histogram(&self, name: &str, histogram: &Arc<Histogram>) {
        let mut inner = self.inner.lock();
        let slot = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramSlot {
                owned: Arc::new(Histogram::new()),
                attached: Vec::new(),
            });
        slot.attached.retain(|w| w.strong_count() > 0);
        slot.attached.push(Arc::downgrade(histogram));
    }

    /// A name-sorted snapshot of every metric. Counter totals include
    /// attached instances; histogram summaries merge attached instances.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let counters = inner
            .counters
            .iter()
            .map(|(name, slot)| {
                let total: u64 = slot.owned.get()
                    + slot
                        .attached
                        .iter()
                        .filter_map(|w| w.upgrade())
                        .map(|c| c.get())
                        .sum::<u64>();
                (name.clone(), total)
            })
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(name, g)| (name.clone(), g.get(), g.high_watermark()))
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(name, slot)| {
                let live: Vec<_> = slot.attached.iter().filter_map(|w| w.upgrade()).collect();
                let summary = if live.is_empty() {
                    summarize(&slot.owned)
                } else {
                    let merged = Histogram::new();
                    merged.merge(&slot.owned);
                    for h in &live {
                        merged.merge(h);
                    }
                    summarize(&merged)
                };
                (name.clone(), summary)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// The non-empty buckets of every registered histogram, name-sorted:
    /// `(name, [(bucket_lower, count), …])`. Attached instances are
    /// merged the same way [`snapshot`](Registry::snapshot) merges them.
    /// This is the raw-bucket feed for the telemetry lakehouse, which
    /// wants rows rather than pre-digested quantiles.
    pub fn histogram_buckets(&self) -> Vec<(String, Vec<(u64, u64)>)> {
        let inner = self.inner.lock();
        inner
            .histograms
            .iter()
            .map(|(name, slot)| {
                let live: Vec<_> = slot.attached.iter().filter_map(|w| w.upgrade()).collect();
                let buckets = if live.is_empty() {
                    slot.owned.nonzero_buckets()
                } else {
                    let merged = Histogram::new();
                    merged.merge(&slot.owned);
                    for h in &live {
                        merged.merge(h);
                    }
                    merged.nonzero_buckets()
                };
                (name.clone(), buckets)
            })
            .collect()
    }

    /// Removes every metric and attachment. Components re-create their
    /// metrics on next use, so this is safe between runs.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

fn summarize(h: &Histogram) -> HistogramSummary {
    HistogramSummary {
        count: h.count(),
        sum: h.sum(),
        min: h.min(),
        max: h.max(),
        mean: h.mean(),
        p50: h.quantile(0.50),
        p90: h.quantile(0.90),
        p99: h.quantile(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(3);
        g.add(4);
        g.add(-5);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_watermark(), 7);
    }

    #[test]
    fn bucket_index_is_exact_below_cutoff() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
    }

    #[test]
    fn bucket_lower_inverts_bucket_index() {
        // The lower bound of every bucket must map back to that bucket,
        // and bucket boundaries must be monotone.
        let mut prev = 0;
        for idx in 0..NUM_BUCKETS {
            let lo = bucket_lower(idx);
            assert_eq!(bucket_index(lo), idx, "idx={idx} lo={lo}");
            if idx > 0 {
                assert!(lo > prev || idx <= LINEAR_CUTOFF as usize, "idx={idx}");
            }
            prev = lo;
        }
        // Extremes land in the first and last bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [17u64, 100, 999, 12_345, 1 << 20, (1 << 40) + 12_345] {
            let lo = bucket_lower(bucket_index(v));
            assert!(lo <= v);
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0, "v={v} lo={lo} err={err}");
        }
    }

    #[test]
    fn histogram_quantiles_bracket_true_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // Quantiles are bucket lower bounds: within 6.25% below the true value.
        let p50 = h.quantile(0.5);
        assert!(
            p50 <= 500 && p50 as f64 >= 500.0 * (1.0 - 1.0 / 16.0),
            "p50={p50}"
        );
        let p99 = h.quantile(0.99);
        assert!(
            p99 <= 990 && p99 as f64 >= 990.0 * (1.0 - 1.0 / 16.0),
            "p99={p99}"
        );
        assert_eq!(h.quantile(0.0), h.quantile(1.0 / 1000.0));
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            combined.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            combined.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.sum(), combined.sum());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_empty_keeps_min_sentinel() {
        let a = Histogram::new();
        let empty = Histogram::new();
        a.record(42);
        a.merge(&empty);
        assert_eq!(a.min(), 42);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn registry_interns_and_snapshots() {
        let reg = Registry {
            inner: Mutex::new(RegistryInner::default()),
        };
        let c1 = reg.counter("x.hits");
        let c2 = reg.counter("x.hits");
        c1.add(3);
        c2.add(2);
        assert_eq!(c1.get(), 5, "same name returns same counter");

        let external = Arc::new(Counter::new());
        external.add(10);
        reg.attach_counter("x.hits", &external);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("x.hits".to_string(), 15)]);

        // Dropping the external instance removes its contribution.
        drop(external);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("x.hits".to_string(), 5)]);
    }

    #[test]
    fn registry_snapshot_is_name_sorted() {
        let reg = Registry {
            inner: Mutex::new(RegistryInner::default()),
        };
        reg.counter("z.last");
        reg.counter("a.first");
        reg.gauge("m.mid").set(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counters[1].0, "z.last");
        assert_eq!(snap.gauges, vec![("m.mid".to_string(), 7, 7)]);
    }

    #[test]
    fn nonzero_buckets_round_trip_through_bucket_lower() {
        let h = Histogram::new();
        for v in [0u64, 3, 3, 100, 100, 100, 50_000] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, n)| n).sum::<u64>(), h.count());
        // Lower bounds are sorted, unique, and map back to their bucket.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(lo, _) in &buckets {
            assert_eq!(bucket_lower(bucket_index(lo)), lo);
        }
        // Exact small values keep exact buckets.
        assert!(buckets.contains(&(0, 1)));
        assert!(buckets.contains(&(3, 2)));
        assert!(Histogram::new().nonzero_buckets().is_empty());
    }

    #[test]
    fn registry_histogram_buckets_merge_attached() {
        let reg = Registry {
            inner: Mutex::new(RegistryInner::default()),
        };
        let owned = reg.histogram("lat");
        owned.record(5);
        let ext = Arc::new(Histogram::new());
        ext.record(5);
        ext.record(9);
        reg.attach_histogram("lat", &ext);
        let buckets = reg.histogram_buckets();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].0, "lat");
        assert_eq!(buckets[0].1, vec![(5, 2), (9, 1)]);
    }

    #[test]
    fn attached_histograms_merge_into_snapshot() {
        let reg = Registry {
            inner: Mutex::new(RegistryInner::default()),
        };
        let owned = reg.histogram("lat");
        owned.record(10);
        let ext = Arc::new(Histogram::new());
        ext.record(30);
        reg.attach_histogram("lat", &ext);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 2);
        assert_eq!(snap.histograms[0].1.sum, 40);
    }
}
