//! # ids-obs — observability for the interactive-data-systems testbed
//!
//! Three layers, all keyed to **virtual time** ([`ids_simclock::SimTime`]):
//!
//! 1. [`recorder`] — a span/event recorder with a zero-cost disabled
//!    path (one relaxed atomic load). Spans cover query execution,
//!    queueing, and prefetch decisions; instants mark filter drops and
//!    throttle actions; counter samples plot buffer-pool behavior over
//!    the run.
//! 2. [`metrics`] — a registry of named counters, gauges, and log-linear
//!    histograms fed by hot paths, mergeable across threads and
//!    attachable from per-instance stats holders.
//! 3. [`export`] — Chrome/Perfetto `trace_event` JSON plus TSV/JSON
//!    metrics snapshots, byte-identical for same-seed runs. Exports are
//!    streamed chunk-at-a-time through a [`ChunkSink`] with fixed chunk
//!    boundaries, so they can render in parallel and write to disk
//!    without holding the whole trace in one `String` — at identical
//!    output bytes for any thread count.
//!
//! Telemetry is observation-only: enabling or disabling the recorder
//! must never change a `QueryOutcome` or a report number (asserted by
//! the workspace parity tests).

pub mod export;
pub mod metrics;
pub mod recorder;

pub use export::{
    chrome_trace_chunked, chrome_trace_json, export_threads, metrics_json, metrics_json_chunked,
    metrics_tsv, metrics_tsv_chunked, ChunkSink, ExportError, IoSink, EXPORT_CHUNK_EVENTS,
};
pub use metrics::{
    metrics, Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry,
};
pub use recorder::{recorder, ArgValue, PhaseGuard, PhaseRecord, Recorder, TraceEvent, TrackId};

/// Enables trace recording.
pub fn enable() {
    recorder().enable();
}

/// Disables trace recording (metrics counters keep accumulating —
/// they are always-on and nearly free).
pub fn disable() {
    recorder().disable();
}

/// `true` when the trace recorder is capturing.
#[inline]
pub fn enabled() -> bool {
    recorder().is_enabled()
}

/// Clears all recorded events, phases, and registered metrics — call
/// between independent runs to start from a clean slate.
pub fn reset_all() {
    recorder().clear();
    metrics().clear();
}

/// Records the current virtual time so deeper layers can timestamp
/// events; the replay scheduler calls this as it advances.
#[inline]
pub fn set_vnow(t: ids_simclock::SimTime) {
    recorder().set_vnow(t);
}

/// The most recently published virtual time.
#[inline]
pub fn vnow() -> ids_simclock::SimTime {
    recorder().vnow()
}

/// Opens a named phase scope; the returned guard records wall-clock and
/// virtual-time extent when dropped. Works whether or not the recorder
/// is enabled.
pub fn phase(name: impl Into<String>) -> PhaseGuard {
    recorder().phase(name)
}
