//! Virtual-time span/event recorder.
//!
//! Every timestamp is a [`SimTime`] — microseconds of *virtual* time, not
//! wall clock — so same-seed simulation runs produce byte-identical
//! traces. Recording is off by default; the hot-path cost of the disabled
//! recorder is one relaxed atomic load and a branch (asserted by
//! `disabled_recorder_is_nearly_free` in the workspace tests).
//!
//! Wall-clock data exists in exactly one place: [`PhaseRecord`]s, which
//! feed the end-of-run phase summary table and are deliberately **not**
//! part of the exported trace, keeping exports deterministic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ids_simclock::{SimDuration, SimTime};
use parking_lot::Mutex;

/// Identifies one horizontal track (a "thread" row in Perfetto).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

/// A value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// Text argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// One recorded trace event, keyed to virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A complete span (`ph: "X"` in Chrome trace terms).
    Span {
        /// Category, e.g. `"exec"`, `"queue"`, `"opt"`.
        cat: &'static str,
        /// Event name, e.g. the query kind.
        name: String,
        /// Track the span renders on.
        track: TrackId,
        /// Virtual start time.
        start: SimTime,
        /// Virtual duration.
        dur: SimDuration,
        /// Attached arguments.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// A zero-duration marker (`ph: "i"`).
    Instant {
        /// Category.
        cat: &'static str,
        /// Event name.
        name: String,
        /// Track the marker renders on.
        track: TrackId,
        /// Virtual timestamp.
        ts: SimTime,
        /// Attached arguments.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// A counter sample (`ph: "C"`), plotted as a stacked area chart.
    Counter {
        /// Counter name, e.g. `"engine.buffer.hit_rate"`.
        name: &'static str,
        /// Virtual timestamp of the sample.
        ts: SimTime,
        /// Sampled value.
        value: f64,
    },
}

/// Wall + virtual timing of one named run phase (setup/simulate/…).
#[derive(Debug, Clone)]
pub struct PhaseRecord {
    /// Phase name.
    pub name: String,
    /// Wall-clock time spent in the phase.
    pub wall: Duration,
    /// Span of virtual time covered by events recorded during the phase
    /// (zero when the recorder was disabled or no events fired).
    pub virtual_span: SimDuration,
    /// Number of trace events recorded during the phase.
    pub events: usize,
}

#[derive(Default)]
struct RecorderInner {
    events: Vec<TraceEvent>,
    /// Track names in id order.
    tracks: Vec<String>,
    phases: Vec<PhaseRecord>,
}

/// The global trace recorder. Obtain it with [`recorder()`].
pub struct Recorder {
    enabled: AtomicBool,
    /// Current virtual time, published by whoever drives the simulation
    /// (the scheduler) so deeper layers (buffer pool) can timestamp
    /// events without threading a clock through every call.
    vnow: AtomicU64,
    inner: Mutex<RecorderInner>,
}

static RECORDER: Recorder = Recorder {
    enabled: AtomicBool::new(false),
    vnow: AtomicU64::new(0),
    inner: Mutex::new(RecorderInner {
        events: Vec::new(),
        tracks: Vec::new(),
        phases: Vec::new(),
    }),
};

/// The process-wide recorder.
#[inline]
pub fn recorder() -> &'static Recorder {
    &RECORDER
}

impl Recorder {
    /// `true` when events are being captured. The disabled fast path of
    /// every `record_*` call is this load plus a branch.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts capturing events.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops capturing events (already-captured events are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Drops all captured events, tracks, and phases.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.events.clear();
        inner.tracks.clear();
        inner.phases.clear();
        self.vnow.store(0, Ordering::Relaxed);
    }

    /// Publishes the current virtual time (the scheduler calls this as
    /// it advances through a replay).
    ///
    /// Always tracked, even while the recorder is disabled: beyond
    /// timestamping trace samples, the published time is the clock bus
    /// that fault injection keys its windows on, and fault behavior must
    /// not change with observability on or off.
    #[inline]
    pub fn set_vnow(&self, t: SimTime) {
        self.vnow.store(t.as_micros(), Ordering::Relaxed);
    }

    /// The most recently published virtual time.
    #[inline]
    pub fn vnow(&self) -> SimTime {
        SimTime::from_micros(self.vnow.load(Ordering::Relaxed))
    }

    /// Interns a track by name, returning a stable id. Repeated calls
    /// with the same name return the same id.
    pub fn track(&self, name: &str) -> TrackId {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.tracks.iter().position(|t| t == name) {
            return TrackId(pos as u32);
        }
        inner.tracks.push(name.to_string());
        TrackId((inner.tracks.len() - 1) as u32)
    }

    /// Records a complete span; no-op while disabled.
    #[inline]
    pub fn record_span(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        track: TrackId,
        start: SimTime,
        dur: SimDuration,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.inner.lock().events.push(TraceEvent::Span {
            cat,
            name: name.into(),
            track,
            start,
            dur,
            args,
        });
    }

    /// Records an instant marker; no-op while disabled.
    #[inline]
    pub fn record_instant(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        track: TrackId,
        ts: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.inner.lock().events.push(TraceEvent::Instant {
            cat,
            name: name.into(),
            track,
            ts,
            args,
        });
    }

    /// Records a counter sample; no-op while disabled.
    #[inline]
    pub fn record_counter(&self, name: &'static str, ts: SimTime, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.inner
            .lock()
            .events
            .push(TraceEvent::Counter { name, ts, value });
    }

    /// A snapshot of all captured events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.clone()
    }

    /// Number of captured events.
    pub fn event_count(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// The events captured after the first `mark` (a prior
    /// [`event_count`](Recorder::event_count) value), used for delta
    /// capture: mark, run a section, then collect just that section's
    /// events. Returns an empty vec if the mark is past the end.
    pub fn events_since(&self, mark: usize) -> Vec<TraceEvent> {
        let inner = self.inner.lock();
        inner
            .events
            .get(mark.min(inner.events.len())..)
            .map(<[TraceEvent]>::to_vec)
            .unwrap_or_default()
    }

    /// Track names in id order.
    pub fn tracks(&self) -> Vec<String> {
        self.inner.lock().tracks.clone()
    }

    /// All completed phase records, in completion order.
    pub fn phases(&self) -> Vec<PhaseRecord> {
        self.inner.lock().phases.clone()
    }

    /// Starts a named phase; the returned guard completes it on drop.
    /// Phases time wall clock unconditionally and attribute whatever
    /// trace events fire while they are open, so the phase table works
    /// with the recorder on or off.
    pub fn phase(&'static self, name: impl Into<String>) -> PhaseGuard {
        let events_at_start = self.inner.lock().events.len();
        PhaseGuard {
            recorder: self,
            name: name.into(),
            started: Instant::now(),
            events_at_start,
        }
    }
}

/// Completes a phase on drop. Created by [`Recorder::phase`].
pub struct PhaseGuard {
    recorder: &'static Recorder,
    name: String,
    started: Instant,
    events_at_start: usize,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let wall = self.started.elapsed();
        let mut inner = self.recorder.inner.lock();
        let new_events = &inner.events[self.events_at_start.min(inner.events.len())..];
        let mut lo = SimTime::MAX;
        let mut hi = SimTime::ZERO;
        for e in new_events {
            let (start, end) = match e {
                TraceEvent::Span { start, dur, .. } => (*start, *start + *dur),
                TraceEvent::Instant { ts, .. } | TraceEvent::Counter { ts, .. } => (*ts, *ts),
            };
            lo = lo.min(start);
            hi = hi.max(end);
        }
        let virtual_span = if lo > hi {
            SimDuration::ZERO
        } else {
            hi.saturating_since(lo)
        };
        let events = new_events.len();
        inner.phases.push(PhaseRecord {
            name: std::mem::take(&mut self.name),
            wall,
            virtual_span,
            events,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests that mutate it run under one
    // lock so `cargo test`'s thread pool cannot interleave them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _guard = TEST_LOCK.lock();
        let r = recorder();
        r.disable();
        r.clear();
        let t = r.track("t");
        r.record_span("cat", "s", t, us(0), SimDuration::from_micros(5), vec![]);
        r.record_instant("cat", "i", t, us(1), vec![]);
        r.record_counter("c", us(2), 1.0);
        assert_eq!(r.event_count(), 0);
    }

    #[test]
    fn enabled_recorder_captures_in_order() {
        let _guard = TEST_LOCK.lock();
        let r = recorder();
        r.clear();
        r.enable();
        let t = r.track("worker/0");
        r.record_span(
            "exec",
            "count",
            t,
            us(10),
            SimDuration::from_micros(5),
            vec![("tag", ArgValue::U64(1))],
        );
        r.record_counter("hits", us(15), 3.0);
        let events = r.events();
        r.disable();
        r.clear();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], TraceEvent::Span { name, .. } if name == "count"));
        assert!(matches!(&events[1], TraceEvent::Counter { value, .. } if *value == 3.0));
    }

    #[test]
    fn tracks_are_interned() {
        let _guard = TEST_LOCK.lock();
        let r = recorder();
        r.clear();
        let a = r.track("alpha");
        let b = r.track("beta");
        let a2 = r.track("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.tracks(), vec!["alpha".to_string(), "beta".to_string()]);
        r.clear();
    }

    #[test]
    fn vnow_round_trips_when_enabled() {
        let _guard = TEST_LOCK.lock();
        let r = recorder();
        r.clear();
        r.enable();
        r.set_vnow(us(1234));
        assert_eq!(r.vnow(), us(1234));
        r.disable();
        r.clear();
    }

    #[test]
    fn phase_guard_attributes_events_and_virtual_span() {
        let _guard = TEST_LOCK.lock();
        let r = recorder();
        r.clear();
        r.enable();
        {
            let _p = r.phase("execute");
            let t = r.track("w");
            r.record_span(
                "exec",
                "q",
                t,
                us(100),
                SimDuration::from_micros(50),
                vec![],
            );
            r.record_instant("exec", "m", t, us(400), vec![]);
        }
        let phases = r.phases();
        r.disable();
        r.clear();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "execute");
        assert_eq!(phases[0].events, 2);
        // Virtual span covers 100 → 400.
        assert_eq!(phases[0].virtual_span, SimDuration::from_micros(300));
    }

    #[test]
    fn phase_guard_with_recorder_disabled_still_times_wall() {
        let _guard = TEST_LOCK.lock();
        let r = recorder();
        r.disable();
        r.clear();
        {
            let _p = r.phase("setup");
        }
        let phases = r.phases();
        r.clear();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].virtual_span, SimDuration::ZERO);
        assert_eq!(phases[0].events, 0);
    }
}
