//! Exporters: Chrome/Perfetto `trace_event` JSON for the span recorder,
//! and TSV/JSON serializations of a metrics snapshot.
//!
//! Exports are pure functions of recorded data, which is keyed entirely
//! to virtual time — so two runs with the same seed produce byte-for-byte
//! identical output (asserted by `trace_export_is_deterministic` in the
//! workspace tests). Nothing wall-clock-derived is allowed in here.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::recorder::{ArgValue, TraceEvent};

/// The synthetic process id used for all trace events.
const PID: u32 = 1;
/// Counter samples and process metadata live on tid 0; span tracks start at 1.
const COUNTER_TID: u32 = 0;

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (finite values only; non-finite
/// values become 0 since JSON has no representation for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape_json(k));
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(x) => out.push_str(&json_f64(*x)),
            ArgValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape_json(s));
            }
        }
    }
    out.push('}');
}

/// Serializes recorded events as Chrome `trace_event` JSON (the format
/// read by `chrome://tracing` and <https://ui.perfetto.dev>). `tracks`
/// is the recorder's track-name table; track `i` renders as thread
/// `i + 1` of process 1, with counters on thread 0. Timestamps are
/// **virtual** microseconds, which the trace viewer happily treats as
/// wall micros — the timeline shape is what matters.
pub fn chrome_trace_json(events: &[TraceEvent], tracks: &[String]) -> String {
    let mut out = String::with_capacity(256 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{COUNTER_TID},\"name\":\"process_name\",\"args\":{{\"name\":\"ids-sim\"}}}}"
    );
    let _ = write!(
        out,
        ",\n{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{COUNTER_TID},\"name\":\"thread_name\",\"args\":{{\"name\":\"counters\"}}}}"
    );
    for (i, name) in tracks.iter().enumerate() {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            i as u32 + 1,
            escape_json(name)
        );
    }
    for e in events {
        out.push_str(",\n");
        match e {
            TraceEvent::Span {
                cat,
                name,
                track,
                start,
                dur,
                args,
            } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"{}\",\"args\":",
                    track.0 + 1,
                    start.as_micros(),
                    dur.as_micros(),
                    escape_json(cat),
                    escape_json(name)
                );
                write_args(&mut out, args);
                out.push('}');
            }
            TraceEvent::Instant {
                cat,
                name,
                track,
                ts,
                args,
            } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"s\":\"t\",\"cat\":\"{}\",\"name\":\"{}\",\"args\":",
                    track.0 + 1,
                    ts.as_micros(),
                    escape_json(cat),
                    escape_json(name)
                );
                write_args(&mut out, args);
                out.push('}');
            }
            TraceEvent::Counter { name, ts, value } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{COUNTER_TID},\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
                    ts.as_micros(),
                    escape_json(name),
                    json_f64(*value)
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Serializes a metrics snapshot as tab-separated text: one section per
/// metric kind, `#`-prefixed headers, rows sorted by metric name.
pub fn metrics_tsv(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# counters\nname\tvalue\n");
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "{name}\t{v}");
    }
    out.push_str("# gauges\nname\tvalue\thigh_watermark\n");
    for (name, v, hwm) in &snap.gauges {
        let _ = writeln!(out, "{name}\t{v}\t{hwm}");
    }
    out.push_str("# histograms\nname\tcount\tsum\tmin\tmax\tmean\tp50\tp90\tp99\n");
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{name}\t{}\t{}\t{}\t{}\t{:.3}\t{}\t{}\t{}",
            h.count, h.sum, h.min, h.max, h.mean, h.p50, h.p90, h.p99
        );
    }
    out
}

/// Serializes a metrics snapshot as JSON.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", escape_json(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v, hwm)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"value\":{v},\"high_watermark\":{hwm}}}",
            escape_json(name)
        );
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            escape_json(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            json_f64(h.mean),
            h.p50,
            h.p90,
            h.p99
        );
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;
    use crate::recorder::TrackId;
    use ids_simclock::{SimDuration, SimTime};

    fn sample_events() -> (Vec<TraceEvent>, Vec<String>) {
        let events = vec![
            TraceEvent::Span {
                cat: "exec",
                name: "count \"q\"".to_string(),
                track: TrackId(0),
                start: SimTime::from_micros(100),
                dur: SimDuration::from_micros(50),
                args: vec![
                    ("rows", ArgValue::U64(42)),
                    ("kind", ArgValue::Str("range".into())),
                ],
            },
            TraceEvent::Instant {
                cat: "opt",
                name: "kl.drop".to_string(),
                track: TrackId(1),
                ts: SimTime::from_micros(160),
                args: vec![("divergence", ArgValue::F64(0.25))],
            },
            TraceEvent::Counter {
                name: "engine.buffer.hits",
                ts: SimTime::from_micros(170),
                value: 3.0,
            },
        ];
        (events, vec!["worker/0".to_string(), "opt".to_string()])
    }

    /// Minimal structural JSON check: balanced delimiters outside strings.
    fn assert_balanced_json(s: &str) {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {s}");
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let (events, tracks) = sample_events();
        let json = chrome_trace_json(&events, &tracks);
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("worker/0"));
        // The span name's embedded quotes must be escaped.
        assert!(json.contains("count \\\"q\\\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":50"));
        assert!(json.contains("\"value\":3"));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let (events, tracks) = sample_events();
        assert_eq!(
            chrome_trace_json(&events, &tracks),
            chrome_trace_json(&events, &tracks)
        );
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.hits".to_string(), 12)],
            gauges: vec![("q.depth".to_string(), 2, 9)],
            histograms: vec![(
                "lat_us".to_string(),
                HistogramSummary {
                    count: 3,
                    sum: 60,
                    min: 10,
                    max: 30,
                    mean: 20.0,
                    p50: 20,
                    p90: 30,
                    p99: 30,
                },
            )],
        }
    }

    #[test]
    fn tsv_contains_all_sections() {
        let tsv = metrics_tsv(&sample_snapshot());
        assert!(tsv.contains("# counters\n"));
        assert!(tsv.contains("a.hits\t12\n"));
        assert!(tsv.contains("q.depth\t2\t9\n"));
        assert!(tsv.contains("lat_us\t3\t60\t10\t30\t20.000\t20\t30\t30\n"));
    }

    #[test]
    fn json_snapshot_is_valid_and_complete() {
        let json = metrics_json(&sample_snapshot());
        assert_balanced_json(&json);
        assert!(json.contains("\"a.hits\":12"));
        assert!(json.contains("\"high_watermark\":9"));
        assert!(json.contains("\"p99\":30"));
    }
}
