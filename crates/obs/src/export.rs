//! Exporters: Chrome/Perfetto `trace_event` JSON for the span recorder,
//! and TSV/JSON serializations of a metrics snapshot.
//!
//! Exports are pure functions of recorded data, which is keyed entirely
//! to virtual time — so two runs with the same seed produce byte-for-byte
//! identical output (asserted by `trace_export_is_deterministic` in the
//! workspace tests). Nothing wall-clock-derived is allowed in here.
//!
//! ## Streaming chunked emission
//!
//! The exporters are structured around a [`ChunkSink`]: output is
//! produced as a sequence of independently-rendered chunks handed to the
//! sink in a fixed order, so a trace never has to be resident as one
//! `String` — an [`IoSink`] streams it straight to a file. Event chunks
//! cover fixed ranges of [`EXPORT_CHUNK_EVENTS`] events (the same
//! fixed-boundary discipline as the engine's `PAR_CHUNK_ROWS` parallel
//! kernels), so chunk contents are independent of the thread count used
//! to render them; [`chrome_trace_chunked`] renders chunks on worker
//! threads and emits them in chunk-index order, making the bytes
//! identical at any thread count — and identical to the former
//! monolithic builder (asserted by the parity tests in
//! `tests/observability.rs`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::metrics::MetricsSnapshot;
use crate::recorder::{ArgValue, TraceEvent};

/// The synthetic process id used for all trace events.
const PID: u32 = 1;
/// Counter samples and process metadata live on tid 0; span tracks start at 1.
const COUNTER_TID: u32 = 0;

/// Events rendered per chunk. Fixed — never derived from the thread
/// count — so chunk boundaries (and therefore output bytes) are
/// invariant across 1/2/4/8 export threads, mirroring the engine's
/// `PAR_CHUNK_ROWS` discipline.
pub const EXPORT_CHUNK_EVENTS: usize = 4096;

/// Error from a chunked export: the only failure source is the sink
/// (in-memory sinks are infallible; IO sinks surface their error here).
#[derive(Debug)]
pub enum ExportError {
    /// The sink failed to accept a chunk.
    Io(std::io::Error),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "export sink error: {e}"),
        }
    }
}

impl std::error::Error for ExportError {}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> ExportError {
        ExportError::Io(e)
    }
}

/// Receives rendered chunks in emission order.
pub trait ChunkSink {
    /// Accepts the next chunk. Chunks arrive in fixed (deterministic)
    /// order regardless of how many threads rendered them.
    fn emit(&mut self, chunk: &str) -> Result<(), ExportError>;
}

/// In-memory sink: concatenates chunks. Infallible.
impl ChunkSink for String {
    fn emit(&mut self, chunk: &str) -> Result<(), ExportError> {
        self.push_str(chunk);
        Ok(())
    }
}

/// Streams chunks to any [`std::io::Write`] — the path `repro
/// --trace-out` uses, so a large trace is never resident as one string.
pub struct IoSink<W: std::io::Write> {
    writer: W,
}

impl<W: std::io::Write> IoSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> IoSink<W> {
        IoSink { writer }
    }

    /// Unwraps the inner writer (e.g. to flush or sync it).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> ChunkSink for IoSink<W> {
    fn emit(&mut self, chunk: &str) -> Result<(), ExportError> {
        self.writer.write_all(chunk.as_bytes())?;
        Ok(())
    }
}

/// Export thread count from `IDS_EXPORT_THREADS`, default 1, clamped to
/// `[1, 64]`. Output bytes are identical at any setting.
pub fn export_threads() -> usize {
    std::env::var("IDS_EXPORT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .clamp(1, 64)
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (finite values only; non-finite
/// values become 0 since JSON has no representation for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape_json(k));
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(x) => out.push_str(&json_f64(*x)),
            ArgValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape_json(s));
            }
        }
    }
    out.push('}');
}

/// Renders one event as `",\n{...}"` — the exact bytes the monolithic
/// builder used, so chunk concatenation reproduces it.
fn write_event(out: &mut String, e: &TraceEvent) {
    out.push_str(",\n");
    match e {
        TraceEvent::Span {
            cat,
            name,
            track,
            start,
            dur,
            args,
        } => {
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"{}\",\"args\":",
                track.0 + 1,
                start.as_micros(),
                dur.as_micros(),
                escape_json(cat),
                escape_json(name)
            );
            write_args(out, args);
            out.push('}');
        }
        TraceEvent::Instant {
            cat,
            name,
            track,
            ts,
            args,
        } => {
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"s\":\"t\",\"cat\":\"{}\",\"name\":\"{}\",\"args\":",
                track.0 + 1,
                ts.as_micros(),
                escape_json(cat),
                escape_json(name)
            );
            write_args(out, args);
            out.push('}');
        }
        TraceEvent::Counter { name, ts, value } => {
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{COUNTER_TID},\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
                ts.as_micros(),
                escape_json(name),
                json_f64(*value)
            );
        }
    }
}

/// The fixed trace header: opening brace plus the process/thread
/// metadata records (one per track).
fn render_trace_header(tracks: &[String]) -> String {
    let mut out = String::with_capacity(128 + tracks.len() * 64);
    out.push_str("{\"traceEvents\":[\n");
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{COUNTER_TID},\"name\":\"process_name\",\"args\":{{\"name\":\"ids-sim\"}}}}"
    );
    let _ = write!(
        out,
        ",\n{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{COUNTER_TID},\"name\":\"thread_name\",\"args\":{{\"name\":\"counters\"}}}}"
    );
    for (i, name) in tracks.iter().enumerate() {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            i as u32 + 1,
            escape_json(name)
        );
    }
    out
}

/// The fixed trace trailer.
const TRACE_TRAILER: &str = "\n],\"displayTimeUnit\":\"ms\"}\n";

/// Renders one fixed-range chunk of events.
fn render_event_chunk(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        write_event(&mut out, e);
    }
    out
}

/// Streaming chunked Chrome-trace export: the header, each
/// [`EXPORT_CHUNK_EVENTS`]-event chunk, and the trailer are handed to
/// `sink` in fixed order. With `threads > 1` the event chunks are
/// rendered in parallel (a shared atomic cursor hands out chunk
/// indices) and re-sequenced before emission, so the bytes are
/// identical to a single-threaded run — and to [`chrome_trace_json`].
pub fn chrome_trace_chunked(
    events: &[TraceEvent],
    tracks: &[String],
    threads: usize,
    sink: &mut dyn ChunkSink,
) -> Result<(), ExportError> {
    sink.emit(&render_trace_header(tracks))?;
    let chunks: Vec<&[TraceEvent]> = events.chunks(EXPORT_CHUNK_EVENTS).collect();
    let workers = threads.clamp(1, 64).min(chunks.len().max(1));
    if workers <= 1 || chunks.len() <= 1 {
        // Truly streaming: one chunk resident at a time.
        for chunk in &chunks {
            sink.emit(&render_event_chunk(chunk))?;
        }
    } else {
        parallel_chunks(&chunks, workers, sink)?;
    }
    sink.emit(TRACE_TRAILER)
}

/// Renders `chunks` on `workers` threads and emits them to `sink` in
/// chunk-index order. Out-of-order completions are buffered (bounded by
/// the scheduling skew between workers), then released as soon as the
/// next-in-order chunk lands — the whole trace is never resident.
fn parallel_chunks(
    chunks: &[&[TraceEvent]],
    workers: usize,
    sink: &mut dyn ChunkSink,
) -> Result<(), ExportError> {
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, String)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                // A send failure means the receiver bailed on a sink
                // error; stop rendering.
                if tx.send((i, render_event_chunk(chunks[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut pending: std::collections::BTreeMap<usize, String> = Default::default();
        let mut want = 0usize;
        for (i, rendered) in rx {
            pending.insert(i, rendered);
            while let Some(ready) = pending.remove(&want) {
                sink.emit(&ready)?;
                want += 1;
            }
        }
        debug_assert!(pending.is_empty(), "all chunks emitted in order");
        Ok(())
    })
}

/// Serializes recorded events as Chrome `trace_event` JSON (the format
/// read by `chrome://tracing` and <https://ui.perfetto.dev>). `tracks`
/// is the recorder's track-name table; track `i` renders as thread
/// `i + 1` of process 1, with counters on thread 0. Timestamps are
/// **virtual** microseconds, which the trace viewer happily treats as
/// wall micros — the timeline shape is what matters.
///
/// Thin wrapper over [`chrome_trace_chunked`] with a `String` sink.
pub fn chrome_trace_json(events: &[TraceEvent], tracks: &[String]) -> String {
    let mut out = String::with_capacity(256 + events.len() * 96);
    // The String sink is infallible, so the Result is vacuous here.
    let _ = chrome_trace_chunked(events, tracks, 1, &mut out);
    out
}

/// Streaming chunked TSV export of a metrics snapshot: one chunk per
/// section header, then row chunks of at most [`EXPORT_CHUNK_EVENTS`]
/// rows. Byte-identical to [`metrics_tsv`].
pub fn metrics_tsv_chunked(
    snap: &MetricsSnapshot,
    sink: &mut dyn ChunkSink,
) -> Result<(), ExportError> {
    sink.emit("# counters\nname\tvalue\n")?;
    for rows in snap.counters.chunks(EXPORT_CHUNK_EVENTS) {
        let mut chunk = String::new();
        for (name, v) in rows {
            let _ = writeln!(chunk, "{name}\t{v}");
        }
        sink.emit(&chunk)?;
    }
    sink.emit("# gauges\nname\tvalue\thigh_watermark\n")?;
    for rows in snap.gauges.chunks(EXPORT_CHUNK_EVENTS) {
        let mut chunk = String::new();
        for (name, v, hwm) in rows {
            let _ = writeln!(chunk, "{name}\t{v}\t{hwm}");
        }
        sink.emit(&chunk)?;
    }
    sink.emit("# histograms\nname\tcount\tsum\tmin\tmax\tmean\tp50\tp90\tp99\n")?;
    for rows in snap.histograms.chunks(EXPORT_CHUNK_EVENTS) {
        let mut chunk = String::new();
        for (name, h) in rows {
            let _ = writeln!(
                chunk,
                "{name}\t{}\t{}\t{}\t{}\t{:.3}\t{}\t{}\t{}",
                h.count, h.sum, h.min, h.max, h.mean, h.p50, h.p90, h.p99
            );
        }
        sink.emit(&chunk)?;
    }
    Ok(())
}

/// Serializes a metrics snapshot as tab-separated text: one section per
/// metric kind, `#`-prefixed headers, rows sorted by metric name.
///
/// Thin wrapper over [`metrics_tsv_chunked`] with a `String` sink.
pub fn metrics_tsv(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = metrics_tsv_chunked(snap, &mut out);
    out
}

/// Streaming chunked JSON export of a metrics snapshot. Byte-identical
/// to [`metrics_json`].
pub fn metrics_json_chunked(
    snap: &MetricsSnapshot,
    sink: &mut dyn ChunkSink,
) -> Result<(), ExportError> {
    let mut chunk = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            chunk.push(',');
        }
        let _ = write!(chunk, "\"{}\":{v}", escape_json(name));
        if chunk.len() >= 64 * 1024 {
            sink.emit(&chunk)?;
            chunk.clear();
        }
    }
    chunk.push_str("},\"gauges\":{");
    for (i, (name, v, hwm)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            chunk.push(',');
        }
        let _ = write!(
            chunk,
            "\"{}\":{{\"value\":{v},\"high_watermark\":{hwm}}}",
            escape_json(name)
        );
        if chunk.len() >= 64 * 1024 {
            sink.emit(&chunk)?;
            chunk.clear();
        }
    }
    chunk.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            chunk.push(',');
        }
        let _ = write!(
            chunk,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            escape_json(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            json_f64(h.mean),
            h.p50,
            h.p90,
            h.p99
        );
        if chunk.len() >= 64 * 1024 {
            sink.emit(&chunk)?;
            chunk.clear();
        }
    }
    chunk.push_str("}}\n");
    sink.emit(&chunk)
}

/// Serializes a metrics snapshot as JSON.
///
/// Thin wrapper over [`metrics_json_chunked`] with a `String` sink.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = metrics_json_chunked(snap, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;
    use crate::recorder::TrackId;
    use ids_simclock::{SimDuration, SimTime};

    fn sample_events() -> (Vec<TraceEvent>, Vec<String>) {
        let events = vec![
            TraceEvent::Span {
                cat: "exec",
                name: "count \"q\"".to_string(),
                track: TrackId(0),
                start: SimTime::from_micros(100),
                dur: SimDuration::from_micros(50),
                args: vec![
                    ("rows", ArgValue::U64(42)),
                    ("kind", ArgValue::Str("range".into())),
                ],
            },
            TraceEvent::Instant {
                cat: "opt",
                name: "kl.drop".to_string(),
                track: TrackId(1),
                ts: SimTime::from_micros(160),
                args: vec![("divergence", ArgValue::F64(0.25))],
            },
            TraceEvent::Counter {
                name: "engine.buffer.hits",
                ts: SimTime::from_micros(170),
                value: 3.0,
            },
        ];
        (events, vec!["worker/0".to_string(), "opt".to_string()])
    }

    /// A synthetic trace long enough to span several export chunks.
    fn long_events(n: usize) -> (Vec<TraceEvent>, Vec<String>) {
        let events = (0..n)
            .map(|i| match i % 3 {
                0 => TraceEvent::Span {
                    cat: "exec",
                    name: format!("q{i}"),
                    track: TrackId((i % 4) as u32),
                    start: SimTime::from_micros(i as u64 * 10),
                    dur: SimDuration::from_micros(7),
                    args: vec![("i", ArgValue::U64(i as u64))],
                },
                1 => TraceEvent::Instant {
                    cat: "opt",
                    name: format!("m{i}"),
                    track: TrackId((i % 4) as u32),
                    ts: SimTime::from_micros(i as u64 * 10 + 1),
                    args: vec![],
                },
                _ => TraceEvent::Counter {
                    name: "c",
                    ts: SimTime::from_micros(i as u64 * 10 + 2),
                    value: i as f64 * 0.5,
                },
            })
            .collect();
        let tracks = (0..4).map(|t| format!("w/{t}")).collect();
        (events, tracks)
    }

    /// Minimal structural JSON check: balanced delimiters outside strings.
    fn assert_balanced_json(s: &str) {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {s}");
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let (events, tracks) = sample_events();
        let json = chrome_trace_json(&events, &tracks);
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("worker/0"));
        // The span name's embedded quotes must be escaped.
        assert!(json.contains("count \\\"q\\\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":50"));
        assert!(json.contains("\"value\":3"));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let (events, tracks) = sample_events();
        assert_eq!(
            chrome_trace_json(&events, &tracks),
            chrome_trace_json(&events, &tracks)
        );
    }

    #[test]
    fn chunked_trace_matches_monolithic_at_any_thread_count() {
        let (events, tracks) = long_events(3 * EXPORT_CHUNK_EVENTS + 17);
        let reference = chrome_trace_json(&events, &tracks);
        assert_balanced_json(&reference);
        for threads in [1usize, 2, 4, 8] {
            let mut out = String::new();
            chrome_trace_chunked(&events, &tracks, threads, &mut out).expect("string sink");
            assert_eq!(out, reference, "thread count {threads} changed the bytes");
        }
    }

    #[test]
    fn chunked_trace_handles_empty_and_single_event() {
        let empty = chrome_trace_json(&[], &[]);
        assert_balanced_json(&empty);
        assert!(empty.starts_with("{\"traceEvents\":[\n"));
        assert!(empty.ends_with(TRACE_TRAILER));

        let (events, tracks) = sample_events();
        let one = chrome_trace_json(&events[..1], &tracks);
        assert_balanced_json(&one);
        let mut chunked = String::new();
        chrome_trace_chunked(&events[..1], &tracks, 8, &mut chunked).expect("string sink");
        assert_eq!(one, chunked);
    }

    #[test]
    fn io_sink_streams_the_same_bytes() {
        let (events, tracks) = long_events(EXPORT_CHUNK_EVENTS + 5);
        let reference = chrome_trace_json(&events, &tracks);
        let mut sink = IoSink::new(Vec::<u8>::new());
        chrome_trace_chunked(&events, &tracks, 4, &mut sink).expect("vec sink");
        assert_eq!(sink.into_inner(), reference.as_bytes());
    }

    /// A sink that fails after N chunks — the export must surface the
    /// error instead of panicking, on both serial and parallel paths.
    struct FailingSink {
        remaining: usize,
    }

    impl ChunkSink for FailingSink {
        fn emit(&mut self, _chunk: &str) -> Result<(), ExportError> {
            if self.remaining == 0 {
                return Err(ExportError::Io(std::io::Error::other("sink full")));
            }
            self.remaining -= 1;
            Ok(())
        }
    }

    #[test]
    fn sink_errors_propagate() {
        let (events, tracks) = long_events(2 * EXPORT_CHUNK_EVENTS);
        for threads in [1usize, 4] {
            let mut sink = FailingSink { remaining: 1 };
            let err = chrome_trace_chunked(&events, &tracks, threads, &mut sink);
            assert!(err.is_err(), "threads={threads}");
        }
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.hits".to_string(), 12)],
            gauges: vec![("q.depth".to_string(), 2, 9)],
            histograms: vec![(
                "lat_us".to_string(),
                HistogramSummary {
                    count: 3,
                    sum: 60,
                    min: 10,
                    max: 30,
                    mean: 20.0,
                    p50: 20,
                    p90: 30,
                    p99: 30,
                },
            )],
        }
    }

    #[test]
    fn tsv_contains_all_sections() {
        let tsv = metrics_tsv(&sample_snapshot());
        assert!(tsv.contains("# counters\n"));
        assert!(tsv.contains("a.hits\t12\n"));
        assert!(tsv.contains("q.depth\t2\t9\n"));
        assert!(tsv.contains("lat_us\t3\t60\t10\t30\t20.000\t20\t30\t30\n"));
    }

    #[test]
    fn chunked_tsv_and_json_match_monolithic() {
        let snap = sample_snapshot();
        let mut tsv = String::new();
        metrics_tsv_chunked(&snap, &mut tsv).expect("string sink");
        assert_eq!(tsv, metrics_tsv(&snap));
        let mut json = String::new();
        metrics_json_chunked(&snap, &mut json).expect("string sink");
        assert_eq!(json, metrics_json(&snap));

        // Empty-snapshot edge.
        let empty = MetricsSnapshot::default();
        let mut tsv = String::new();
        metrics_tsv_chunked(&empty, &mut tsv).expect("string sink");
        assert_eq!(tsv, metrics_tsv(&empty));
    }

    #[test]
    fn json_snapshot_is_valid_and_complete() {
        let json = metrics_json(&sample_snapshot());
        assert_balanced_json(&json);
        assert!(json.contains("\"a.hits\":12"));
        assert!(json.contains("\"high_watermark\":9"));
        assert!(json.contains("\"p99\":30"));
    }
}
