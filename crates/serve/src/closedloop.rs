//! Closed-loop serving: the behavior model in the driver's seat.
//!
//! The open-loop fleet path offers a pre-scripted query stream and
//! measures what the service does to it. This module closes the loop:
//! a [`BehaviorPolicy`] session acts, its query group passes through
//! **admission** (token buckets can shed it) and the **resilient
//! scheduler** (deadline policies can degrade it to `Partial`), and the
//! resulting latency / quality / histogram feed back into the model —
//! so shedding and deadline-bounded partials change what the user does
//! next, exactly the coupling the paper's guidelines say open-loop
//! traces cannot exhibit.
//!
//! Determinism: everything here is virtual-time arithmetic over a
//! deterministic backend, so a `(policy, backend, params)` triple fully
//! determines the action stream, the telemetry, and the trace bytes.

use ids_engine::scheduler::{IssuedQuery, QueryTiming, ReplayScheduler, ResiliencePolicy};
use ids_engine::{Backend, Histogram, QueryOutcome, ResultQuality};
use ids_simclock::SimDuration;
use ids_workload::adaptive::{AdaptiveAction, BehaviorPolicy, Feedback};
use ids_workload::trace::{RequestRecord, Trace};

use crate::admission::{AdmissionController, AdmissionPolicy, ShedCounts};
use crate::session::{Lane, OfferedQuery};

/// Knobs for one closed-loop session.
#[derive(Debug, Clone)]
pub struct ClosedLoopParams {
    /// Execution slots for each action's query group.
    pub workers: usize,
    /// Admission policy (token buckets feed shedding back to the user).
    pub admission: AdmissionPolicy,
    /// Degrade/deadline policy (feeds `Partial` answers back).
    pub resilience: ResiliencePolicy,
    /// Tenant the session bills to.
    pub tenant: usize,
    /// Session index (used as the admission session id).
    pub session: usize,
    /// Extra service delay injected into every group's observed
    /// latency — the experiment knob for abandon-rate monotonicity.
    pub extra_latency: SimDuration,
}

impl Default for ClosedLoopParams {
    fn default() -> ClosedLoopParams {
        ClosedLoopParams {
            workers: 2,
            admission: AdmissionPolicy::unlimited(),
            resilience: ResiliencePolicy::rigid(),
            tenant: 0,
            session: 0,
            extra_latency: SimDuration::ZERO,
        }
    }
}

/// One executed query inside a closed-loop session.
#[derive(Debug, Clone)]
pub struct ClosedLoopQuery {
    /// Action step the query belongs to.
    pub step: usize,
    /// Scheduler timing (issue → start → finish).
    pub timing: QueryTiming,
    /// The outcome, including degraded quality.
    pub outcome: QueryOutcome,
}

/// Everything one closed-loop session produced.
#[derive(Debug, Clone)]
pub struct ClosedLoopOutcome {
    /// The action stream, in step order.
    pub actions: Vec<AdaptiveAction>,
    /// The session's `url_update` request trace (miner food).
    pub trace: Trace<RequestRecord>,
    /// Executed queries across all actions, in issue order.
    pub queries: Vec<ClosedLoopQuery>,
    /// Admission shedding, by reason.
    pub shed: ShedCounts,
    /// `true` when the user abandoned on slow answers.
    pub abandoned: bool,
}

impl ClosedLoopOutcome {
    /// Per-query latencies, in issue order.
    pub fn latencies(&self) -> Vec<SimDuration> {
        self.queries.iter().map(|q| q.timing.latency()).collect()
    }

    /// Queries that came back degraded (`Partial` or `Failed`).
    pub fn degraded(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| q.outcome.quality.is_degraded())
            .count()
    }

    /// Stable byte rendering of the whole feedback loop: action lines,
    /// the trace TSV, per-query timings + quality, and shed counters.
    /// Two runs of the same seed must agree byte for byte.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for a in &self.actions {
            out.push_str("action\t");
            out.push_str(&a.digest_line());
            out.push('\n');
        }
        out.push_str(&self.trace.to_tsv());
        for q in &self.queries {
            out.push_str(&format!(
                "query\t{}\t{}\t{}\t{}\t{}\n",
                q.step,
                q.timing.issued_at.as_micros(),
                q.timing.finished_at.as_micros(),
                quality_token(&q.outcome.quality),
                result_token(&q.outcome),
            ));
        }
        out.push_str(&format!(
            "shed\trate={}\tqueue={}\tprefetch={}\nabandoned\t{}\n",
            self.shed.rate_limited,
            self.shed.queue_full,
            self.shed.prefetch_suppressed,
            self.abandoned
        ));
        out
    }
}

/// Stable token for an answer's quality.
pub fn quality_token(q: &ResultQuality) -> String {
    match q {
        ResultQuality::Exact => "exact".into(),
        ResultQuality::Partial {
            fraction,
            error_bound,
        } => format!("partial:{fraction:?}:{error_bound:?}"),
        ResultQuality::Failed => "failed".into(),
    }
}

fn result_token(outcome: &QueryOutcome) -> String {
    match outcome.result.histogram() {
        Some(h) => format!(
            "hist:{}",
            h.counts()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
        None => format!("len:{}", outcome.result.len()),
    }
}

/// Drives one session of `policy` against `backend` under `params`,
/// feeding each action's observed latency, quality, and first histogram
/// back into the behavior model.
pub fn drive_session(
    backend: &dyn Backend,
    policy: &BehaviorPolicy,
    params: &ClosedLoopParams,
) -> ClosedLoopOutcome {
    let ui = policy.ui().clone();
    let mut session = policy.session();
    let mut controller = AdmissionController::new(params.admission);
    let scheduler = ReplayScheduler::new(params.workers);

    let mut actions = Vec::new();
    let mut trace = Trace::new();
    let mut queries = Vec::new();
    let mut feedback = Feedback::initial();
    let mut seq = 0usize;

    while let Some(action) = session.next_action(&feedback) {
        let group = session.compile(&action);
        // Admission runs per query at the action instant. A closed-loop
        // user waits for answers before acting again, so there is never
        // a standing backlog — only the token bucket can shed here.
        let mut admitted: Vec<IssuedQuery> = Vec::new();
        let mut admitted_dims: Vec<usize> = Vec::new();
        for (j, query) in group.queries.iter().enumerate() {
            let offered = OfferedQuery {
                session: params.session,
                tenant: params.tenant,
                seq,
                at: action.at,
                lane: Lane::Interactive,
                query: query.clone(),
            };
            seq += 1;
            if controller.admit(&offered, admitted.len()).is_ok() {
                // Dimension this histogram describes: the j-th dim
                // skipping the moved slider.
                let dim = if j < action.slider { j } else { j + 1 };
                admitted_dims.push(dim);
                admitted.push(IssuedQuery::new(
                    action.at,
                    query.clone(),
                    action.step as u64,
                ));
            }
        }

        feedback = if admitted.is_empty() {
            // Everything shed: the user watched a spinner time out.
            Feedback::failed(params.resilience.failure_penalty + params.extra_latency)
        } else {
            let executed = scheduler
                .replay_resilient(backend, &admitted, &params.resilience)
                .expect("closed-loop queries execute against registered tables");
            let mut finish = action.at;
            let mut worst = ResultQuality::Exact;
            let mut histogram: Option<Histogram> = None;
            let mut hist_dim = 0;
            for (i, (timing, outcome)) in executed.iter().enumerate() {
                finish = finish.max(timing.finished_at);
                worst = worse(&worst, &outcome.quality);
                if histogram.is_none() {
                    if let Some(h) = outcome.result.histogram() {
                        histogram = Some(h.clone());
                        hist_dim = admitted_dims[i];
                    }
                }
                queries.push(ClosedLoopQuery {
                    step: action.step,
                    timing: *timing,
                    outcome: outcome.clone(),
                });
            }
            Feedback {
                latency: finish.saturating_since(action.at) + params.extra_latency,
                quality: worst,
                histogram,
                hist_dim,
            }
        };

        trace.push(action.request_record(&ui));
        actions.push(action);
    }

    ClosedLoopOutcome {
        actions,
        trace,
        queries,
        shed: controller.shed(),
        abandoned: session.abandoned(),
    }
}

/// Orders qualities by badness: `Failed` > `Partial` > `Exact`.
fn worse(a: &ResultQuality, b: &ResultQuality) -> ResultQuality {
    let rank = |q: &ResultQuality| match q {
        ResultQuality::Exact => 0,
        ResultQuality::Partial { .. } => 1,
        ResultQuality::Failed => 2,
    };
    if rank(b) > rank(a) {
        *b
    } else {
        *a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::MemBackend;
    use ids_workload::crossfilter::CrossfilterUi;
    use ids_workload::datasets;

    fn backend() -> MemBackend {
        let db = ids_engine::Database::new();
        db.register(datasets::road_network_named("dataroad", 7, 400));
        MemBackend::over(db)
    }

    fn policy(seed: u64) -> BehaviorPolicy {
        BehaviorPolicy::adaptive(seed, CrossfilterUi::for_road())
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let b = backend();
        let p = policy(11);
        let params = ClosedLoopParams::default();
        let a = drive_session(&b, &p, &params);
        let c = drive_session(&b, &p, &params);
        assert_eq!(a.digest(), c.digest());
        assert!(!a.actions.is_empty());
        assert!(!a.queries.is_empty());
    }

    #[test]
    fn rate_limited_admission_sheds_and_changes_the_stream() {
        let b = backend();
        let p = policy(12);
        let open = drive_session(&b, &p, &ClosedLoopParams::default());
        let throttled = drive_session(
            &b,
            &p,
            &ClosedLoopParams {
                admission: AdmissionPolicy::interactive(0.4, 4),
                ..ClosedLoopParams::default()
            },
        );
        assert!(throttled.shed.total() > 0, "bucket must shed");
        assert_ne!(
            open.digest(),
            throttled.digest(),
            "shedding feeds back into the action stream"
        );
    }

    #[test]
    fn deadline_policy_feeds_partials_back() {
        let b = backend();
        let p = policy(13);
        let strict = ClosedLoopParams {
            resilience: ResiliencePolicy::degrade_after(SimDuration::from_micros(40)),
            ..ClosedLoopParams::default()
        };
        let out = drive_session(&b, &p, &strict);
        assert!(out.degraded() > 0, "tight budget degrades answers");
        // Determinism holds even when answers are Partial.
        assert_eq!(out.digest(), drive_session(&b, &p, &strict).digest());
    }

    #[test]
    fn injected_latency_can_only_abandon_earlier() {
        let b = backend();
        let mut abandoned = Vec::new();
        let mut steps = Vec::new();
        for delay_ms in [0u64, 150, 600, 5_000] {
            let params = ClosedLoopParams {
                extra_latency: SimDuration::from_millis(delay_ms),
                ..ClosedLoopParams::default()
            };
            let out = drive_session(&b, &policy(14), &params);
            abandoned.push(out.abandoned);
            steps.push(out.actions.len());
        }
        assert!(
            abandoned.windows(2).all(|w| w[0] <= w[1]),
            "abandonment is monotone: {abandoned:?}"
        );
        assert!(
            steps.windows(2).all(|w| w[0] >= w[1]),
            "sessions only get shorter: {steps:?}"
        );
        assert!(abandoned[3], "huge injected latency abandons");
    }

    #[test]
    fn static_replay_ignores_service_conditions() {
        let b = backend();
        let ui = CrossfilterUi::for_road();
        let p = BehaviorPolicy::static_replay(ids_devices::DeviceKind::Mouse, 0, 21, ui.clone());
        let calm = drive_session(&b, &p, &ClosedLoopParams::default());
        let stressed = drive_session(
            &b,
            &p,
            &ClosedLoopParams {
                resilience: ResiliencePolicy::degrade_after(SimDuration::from_micros(25)),
                extra_latency: SimDuration::from_secs(2),
                ..ClosedLoopParams::default()
            },
        );
        let acts = |o: &ClosedLoopOutcome| o.actions.clone();
        assert_eq!(acts(&calm), acts(&stressed), "open loop cannot react");
        let open =
            ids_workload::crossfilter::simulate_session(ids_devices::DeviceKind::Mouse, 0, 21, &ui);
        let replayed: Vec<_> = calm.actions.iter().map(|a| a.slider_record()).collect();
        assert_eq!(replayed, open.trace.records().to_vec());
    }
}
