//! The serving loop: one shared engine, thousands of sessions, a
//! deterministic admission decision per offered query.
//!
//! Serving is split into two pure stages so that the admission-on and
//! no-admission conditions of an experiment are *exactly* comparable:
//!
//! 1. [`measure_costs`] executes every offered query once, in global
//!    offered order, against the (optionally chaos-wrapped) shared
//!    backend. This fixes each query's execution cost — including fault
//!    windows, retries, and buffer-pool state — as a pure function of
//!    the offered stream and the fault plan.
//! 2. [`simulate_service`] replays those fixed costs through a
//!    [`WorkerPool`] queueing simulation under a given
//!    [`AdmissionPolicy`]. Because both conditions replay the *same*
//!    cost sequence, any difference in tail latency is attributable to
//!    admission alone, and the whole pipeline is bit-deterministic.
//!
//! Node-loss windows from the fault plan shrink serving capacity during
//! the window: surviving workers absorb the lost slots' share (costs
//! inflate by `workers / available`), and a total outage defers starts
//! to the window's end. Capacity loss therefore *degrades* throughput
//! and tail latency but can never wedge the loop — every query still
//! starts and finishes at a finite virtual instant.

use std::collections::HashMap;

use ids_chaos::{ChaosBackend, FaultKind, FaultPlan};
use ids_engine::scheduler::WorkerPool;
use ids_engine::{Backend, DiskBackend, RetryPolicy, RetryingBackend};
use ids_metrics::lcv::{budget_violations, LcvReport, QuerySpan};
use ids_metrics::qif::QifReport;
use ids_obs::Histogram;
use ids_simclock::{SimDuration, SimTime};

use crate::admission::{AdmissionController, AdmissionPolicy, ShedCounts};
use crate::session::{Lane, OfferedQuery};

/// Queueing-stage parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeParams {
    /// Parallel worker slots the shared engine exposes.
    pub workers: usize,
    /// Per-query latency budget (drives the fleet LCV).
    pub latency_budget: SimDuration,
    /// Route over-budget interactive queries to deadline mode: instead
    /// of letting an admitted query blow the budget, its execution is
    /// clamped to the remaining budget (down to 10% of the full cost)
    /// the way the engine's deadline-bounded progressive refinement
    /// would answer it — best-so-far within the budget.
    pub deadline: bool,
    /// Shard groups the worker pool is split into. Tenants map to
    /// groups (`tenant % shards`), each group owning
    /// `max(1, workers / shards)` of the worker slots, so one hot
    /// tenant's backlog queues on its own shard group instead of the
    /// whole fleet. `1` (the default everywhere) is the single shared
    /// pool and is arithmetically identical to the pre-shard behavior.
    pub shards: usize,
}

impl ServeParams {
    /// Enables deadline routing (builder-style).
    pub fn with_deadline(mut self) -> ServeParams {
        self.deadline = true;
        self
    }

    /// Splits the worker pool into `shards` tenant-mapped groups
    /// (builder-style).
    pub fn with_shards(mut self, shards: usize) -> ServeParams {
        self.shards = shards.max(1);
        self
    }

    /// Shard groups in force (at least 1).
    pub fn shard_groups(&self) -> usize {
        self.shards.max(1)
    }

    /// Worker slots per shard group.
    pub fn workers_per_group(&self) -> usize {
        (self.workers / self.shard_groups()).max(1)
    }
}

/// Aggregated result of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Queries offered by the fleet.
    pub offered: usize,
    /// Queries admitted (offered − shed).
    pub admitted: usize,
    /// Interactive-lane subset of the admitted queries.
    pub interactive_admitted: usize,
    /// Shed accounting by reason.
    pub shed: ShedCounts,
    /// Budget-form LCV over admitted interactive queries, folded from
    /// per-session reports.
    pub lcv: LcvReport,
    /// Median admitted interactive latency.
    pub p50: SimDuration,
    /// 95th-percentile admitted interactive latency.
    pub p95: SimDuration,
    /// 99th-percentile admitted interactive latency.
    pub p99: SimDuration,
    /// Admitted interactive issuing rate, queries/second.
    pub admitted_qps: f64,
    /// Instant the last admitted query finished.
    pub drained_at: SimTime,
    /// Sessions that had at least one query admitted.
    pub sessions_served: usize,
    /// Interactive queries whose execution was clamped by deadline
    /// routing (always 0 when [`ServeParams::deadline`] is off).
    pub deadline_routed: usize,
}

impl FleetOutcome {
    /// Fraction of offered queries shed.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed.total() as f64 / self.offered as f64
        }
    }
}

/// Executes every offered query once, in global offered order, against
/// `backend` under `plan`, and returns the per-query virtual costs.
///
/// Transient failures are retried with the interactive policy; a query
/// whose retries are exhausted is charged `penalty` (the frontend waits
/// out its budget before giving up) so a lossy plan can never wedge the
/// stream. `disk` attaches the buffer-pressure flush target so pressure
/// windows genuinely evict the shared pool.
pub fn measure_costs(
    backend: &(dyn Backend + Sync),
    disk: Option<&DiskBackend>,
    offered: &[OfferedQuery],
    plan: &FaultPlan,
    penalty: SimDuration,
) -> Vec<SimDuration> {
    let _p = ids_obs::phase("serve.measure");
    let mut chaos = ChaosBackend::new(backend, plan.clone());
    if let Some(d) = disk {
        chaos = chaos.with_pressure_target(d);
    }
    let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
    let exhausted = ids_obs::metrics().counter("serve.retries_exhausted");
    offered
        .iter()
        .map(|q| {
            ids_obs::set_vnow(q.at);
            match retrying.execute(&q.query) {
                Ok(outcome) => outcome.cost,
                Err(_) => {
                    exhausted.inc();
                    penalty
                }
            }
        })
        .collect()
}

/// Worker slots in `[lo, hi)` usable at `t`: the range size minus
/// fault-plan node losses naming slots inside the range (losses outside
/// are other groups' problem).
fn capacity_at(plan: &FaultPlan, lo: usize, hi: usize, t: SimTime) -> usize {
    let lost = plan
        .lost_nodes_at(t)
        .into_iter()
        .filter(|&n| n >= lo && n < hi)
        .count();
    (hi - lo) - lost
}

/// Earliest instant strictly after `t` at which some capacity-affecting
/// loss window ends — where a fully-outaged start gets deferred to.
fn next_recovery(plan: &FaultPlan, t: SimTime) -> SimTime {
    plan.windows()
        .iter()
        .filter(|w| matches!(w.kind, FaultKind::NodeLoss { .. }) && w.contains(t))
        .map(|w| w.end)
        .min()
        .unwrap_or(t)
}

/// Replays `costs` through the queueing layer under `policy`.
///
/// `offered` and `costs` must be index-aligned (as produced by
/// [`measure_costs`] over the same stream). The loop walks the stream
/// in offered order, asks the admission controller about each query
/// given the instantaneous backlog of the query's shard group, and
/// assigns admitted queries to the earliest-free slot of that group's
/// pool (tenants map to groups by `tenant % shards`; with `shards == 1`
/// there is one shared pool and the loop is arithmetically identical to
/// the pre-shard behavior). Per-session LCV reports and latency
/// histograms are folded into fleet aggregates at the end — the merge
/// is order-independent, which is what makes the aggregation safe to
/// shard in a real deployment.
pub fn simulate_service(
    offered: &[OfferedQuery],
    costs: &[SimDuration],
    policy: &AdmissionPolicy,
    plan: &FaultPlan,
    params: &ServeParams,
) -> FleetOutcome {
    assert_eq!(offered.len(), costs.len(), "stream/cost misalignment");
    let _p = ids_obs::phase("serve.simulate");
    let reg = ids_obs::metrics();
    let admitted_ctr = reg.counter("serve.admitted");
    let shed_ctr = reg.counter("serve.shed");
    let deadline_ctr = reg.counter("serve.deadline_routed");

    let groups = params.shard_groups();
    let wpg = params.workers_per_group();
    let mut pools: Vec<WorkerPool> = (0..groups).map(|_| WorkerPool::new(wpg)).collect();
    let mut controller = AdmissionController::new(*policy);

    // Per-query serve spans for the telemetry lakehouse: one span per
    // admitted interactive query on a per-tenant track, carrying the
    // tenant, session, violation flag, and effective cost as args. The
    // enabled check keeps the dark path free of track interning; span
    // recording never feeds back into timing (virtual time only).
    let rec_enabled = ids_obs::enabled();
    let mut tenant_tracks: HashMap<usize, ids_obs::TrackId> = HashMap::new();

    // Per-session accumulators, folded after the loop.
    let mut session_spans: HashMap<usize, Vec<QuerySpan>> = HashMap::new();
    let mut session_hists: HashMap<usize, Histogram> = HashMap::new();
    let mut interactive_stamps: Vec<SimTime> = Vec::new();
    let mut interactive_admitted = 0usize;
    let mut deadline_routed = 0usize;
    let mut drained_at = SimTime::ZERO;

    for (q, &cost) in offered.iter().zip(costs) {
        // The query's shard group: its pool, and its slice of the
        // worker slots for fault-plan capacity accounting.
        let group = q.tenant % groups;
        let (slot_lo, slot_hi) = (group * wpg, (group + 1) * wpg);
        let pool = &mut pools[group];

        let backlog = pool.backlog_at(q.at);
        if controller.admit(q, backlog).is_err() {
            shed_ctr.inc();
            continue;
        }
        admitted_ctr.inc();

        // Capacity-aware start: a total outage of the group defers the
        // start to the loss window's end; a partial loss spreads the
        // lost slots' share over the group's survivors by inflating the
        // cost.
        let mut ready = q.at;
        while capacity_at(plan, slot_lo, slot_hi, ready) == 0 {
            let recovery = next_recovery(plan, ready);
            debug_assert!(recovery > ready, "loss windows are half-open");
            ready = recovery;
        }
        let available = capacity_at(plan, slot_lo, slot_hi, ready);
        let mut effective = if available == wpg {
            cost
        } else {
            SimDuration::from_secs_f64(cost.as_secs_f64() * wpg as f64 / available as f64)
        };
        // Deadline routing: an interactive query that would blow the
        // budget (queueing included) is clamped to the remaining budget
        // instead — the queueing image of the engine's deadline-bounded
        // progressive refinement, with the same 10%-of-the-scan floor.
        if params.deadline && q.lane == Lane::Interactive && !effective.is_zero() {
            let wait = pool.next_start(ready).saturating_since(ready);
            if wait + effective > params.latency_budget {
                let allowed = params.latency_budget.saturating_sub(wait);
                let clamped = allowed.max(effective.mul_f64(0.1));
                if clamped < effective {
                    effective = clamped;
                    deadline_ctr.inc();
                    deadline_routed += 1;
                }
            }
        }
        let (_slot, _started, finished) = pool.assign(ready, effective);
        drained_at = drained_at.max(finished);

        if q.lane == Lane::Interactive {
            interactive_admitted += 1;
            interactive_stamps.push(q.at);
            let latency = finished.saturating_since(q.at);
            if rec_enabled {
                let rec = ids_obs::recorder();
                let track = *tenant_tracks
                    .entry(q.tenant)
                    .or_insert_with(|| rec.track(&format!("tenant/{}", q.tenant)));
                rec.record_span(
                    "serve",
                    q.query.kind(),
                    track,
                    q.at,
                    latency,
                    vec![
                        (
                            "tenant",
                            ids_obs::ArgValue::Str(format!("tenant/{}", q.tenant)),
                        ),
                        ("session", ids_obs::ArgValue::U64(q.session as u64)),
                        (
                            "violated",
                            ids_obs::ArgValue::U64((latency > params.latency_budget) as u64),
                        ),
                        ("cost_us", ids_obs::ArgValue::U64(effective.as_micros())),
                    ],
                );
            }
            session_spans.entry(q.session).or_default().push(QuerySpan {
                issued_at: q.at,
                finished_at: finished,
            });
            session_hists
                .entry(q.session)
                .or_default()
                .record(latency.as_micros());
        }
    }

    // Fold per-session measurements into fleet aggregates. Iteration
    // order over the map is irrelevant: LCV absorption and histogram
    // merges are commutative.
    let mut lcv = LcvReport::default();
    for spans in session_spans.values() {
        lcv.absorb(&budget_violations(spans, params.latency_budget));
    }
    let fleet_hist = Histogram::new();
    for h in session_hists.values() {
        fleet_hist.merge(h);
    }
    reg.histogram("serve.latency_us").merge(&fleet_hist);

    let admitted_qps = QifReport::from_timestamps(&interactive_stamps).queries_per_second();

    FleetOutcome {
        offered: offered.len(),
        admitted: controller.admitted(),
        interactive_admitted,
        shed: controller.shed(),
        lcv,
        p50: SimDuration::from_micros(fleet_hist.quantile(0.50)),
        p95: SimDuration::from_micros(fleet_hist.quantile(0.95)),
        p99: SimDuration::from_micros(fleet_hist.quantile(0.99)),
        admitted_qps,
        drained_at,
        sessions_served: session_spans.len(),
        deadline_routed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::{Predicate, Query};

    fn offered_stream(n: usize, gap_ms: u64) -> Vec<OfferedQuery> {
        (0..n)
            .map(|i| OfferedQuery {
                session: i % 3,
                tenant: i % 2,
                seq: i,
                at: SimTime::from_millis(i as u64 * gap_ms),
                lane: if i % 5 == 4 {
                    Lane::Prefetch
                } else {
                    Lane::Interactive
                },
                query: Query::count("t", Predicate::True),
            })
            .collect()
    }

    fn flat_costs(n: usize, ms: u64) -> Vec<SimDuration> {
        vec![SimDuration::from_millis(ms); n]
    }

    fn params() -> ServeParams {
        ServeParams {
            workers: 2,
            latency_budget: SimDuration::from_millis(100),
            deadline: false,
            shards: 1,
        }
    }

    #[test]
    fn conservation_offered_equals_admitted_plus_shed() {
        let offered = offered_stream(200, 1);
        let costs = flat_costs(200, 50);
        let out = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::interactive(50.0, 4),
            &FaultPlan::calm(1),
            &params(),
        );
        assert_eq!(out.offered, out.admitted + out.shed.total());
        assert!(out.shed.total() > 0, "overload must shed");
        assert!(out.sessions_served > 0);
    }

    #[test]
    fn unlimited_baseline_admits_everything_and_queues() {
        let offered = offered_stream(100, 1);
        let costs = flat_costs(100, 50);
        let base = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &FaultPlan::calm(1),
            &params(),
        );
        assert_eq!(base.admitted, 100);
        assert_eq!(base.shed.total(), 0);
        // 100 queries of 50 ms over 2 workers issued in ~100 ms: the
        // last ones wait out nearly the whole backlog.
        assert!(base.p99 > SimDuration::from_millis(1_000));
        assert!(base.lcv.fraction() > 0.5);
    }

    #[test]
    fn admission_flattens_the_tail() {
        let offered = offered_stream(400, 1);
        let costs = flat_costs(400, 50);
        let plan = FaultPlan::calm(1);
        let base = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params(),
        );
        let adm = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::interactive(20.0, 2),
            &plan,
            &params(),
        );
        assert!(adm.p99 < base.p99, "{:?} vs {:?}", adm.p99, base.p99);
        assert!(adm.lcv.fraction() < base.lcv.fraction());
    }

    #[test]
    fn deadline_routing_trims_violations_and_tail() {
        // 50 ms queries arriving every 10 ms on 2 workers: 2.5x
        // oversubscribed, so the plain queue grows without bound, while
        // deadline clamping trades work for latency and stabilizes it.
        let offered = offered_stream(100, 10);
        let costs = flat_costs(100, 50);
        let plan = FaultPlan::calm(1);
        let base = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params(),
        );
        let dl = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params().with_deadline(),
        );
        assert_eq!(base.deadline_routed, 0);
        assert!(dl.deadline_routed > 0, "overload must trigger routing");
        assert_eq!(dl.admitted, base.admitted, "routing never sheds");
        assert!(
            dl.lcv.fraction() < base.lcv.fraction(),
            "{} vs {}",
            dl.lcv.fraction(),
            base.lcv.fraction()
        );
        assert!(dl.p99 <= base.p99, "{:?} vs {:?}", dl.p99, base.p99);
    }

    #[test]
    fn deadline_routing_is_idle_under_light_load() {
        // Well-spaced cheap queries never approach the budget: deadline
        // mode must not perturb the outcome at all.
        let offered = offered_stream(50, 50);
        let costs = flat_costs(50, 5);
        let plan = FaultPlan::calm(1);
        let base = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params(),
        );
        let dl = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params().with_deadline(),
        );
        assert_eq!(dl.deadline_routed, 0);
        assert_eq!(dl, base);
    }

    #[test]
    fn total_outage_defers_but_terminates() {
        let offered = offered_stream(20, 10);
        let costs = flat_costs(20, 5);
        // Both workers lost for [0, 500) ms: nothing can start before
        // recovery, yet every query still finishes.
        let plan = FaultPlan::builder(1)
            .lose_node_during(0, SimTime::ZERO, SimDuration::from_millis(500))
            .lose_node_during(1, SimTime::ZERO, SimDuration::from_millis(500))
            .build();
        let out = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params(),
        );
        assert_eq!(out.admitted, 20);
        assert!(out.drained_at >= SimTime::from_millis(500));
        assert!(out.drained_at < SimTime::MAX);
        // Calm service of the same stream drains earlier.
        let calm = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &FaultPlan::calm(1),
            &params(),
        );
        assert!(calm.drained_at < out.drained_at);
    }

    #[test]
    fn interactive_spans_carry_tenant_and_violation_args() {
        // The recorder is process-global and other tests may be running
        // concurrently, so mark distinctive sessions and filter for them
        // instead of asserting on the whole event stream.
        const SESSION_BASE: u64 = 424_200;
        let offered: Vec<OfferedQuery> = (0..40)
            .map(|i| OfferedQuery {
                session: SESSION_BASE as usize + i,
                tenant: i % 2,
                seq: i,
                at: SimTime::from_millis(i as u64),
                lane: if i % 5 == 4 {
                    Lane::Prefetch
                } else {
                    Lane::Interactive
                },
                query: Query::count("t", Predicate::True),
            })
            .collect();
        let costs = flat_costs(40, 30);
        let was_enabled = ids_obs::enabled();
        ids_obs::enable();
        let mark = ids_obs::recorder().event_count();
        let out = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &FaultPlan::calm(1),
            &params(),
        );
        let events = ids_obs::recorder().events_since(mark);
        if !was_enabled {
            ids_obs::disable();
        }
        let mine: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                ids_obs::TraceEvent::Span { cat, args, .. } if *cat == "serve" => args
                    .iter()
                    .any(|(k, v)| {
                        *k == "session"
                            && matches!(v, ids_obs::ArgValue::U64(s) if *s >= SESSION_BASE)
                    })
                    .then_some(args),
                _ => None,
            })
            .collect();
        assert_eq!(mine.len(), out.interactive_admitted);
        // Every span carries the lakehouse-schema args, and long waits
        // under the 100 ms budget are flagged as violations.
        let mut violated = 0u64;
        for args in &mine {
            let get = |key: &str| args.iter().find(|(k, _)| *k == key).map(|(_, v)| v);
            assert!(
                matches!(get("tenant"), Some(ids_obs::ArgValue::Str(s)) if s.starts_with("tenant/"))
            );
            assert!(get("cost_us").is_some());
            if let Some(ids_obs::ArgValue::U64(v)) = get("violated") {
                violated += *v;
            }
        }
        assert_eq!(
            violated as usize, out.lcv.violations,
            "span violation flags agree with the LCV report"
        );
    }

    #[test]
    fn one_shard_group_is_one_pool() {
        // shards == 1 must be the exact pre-shard arithmetic: a single
        // pool of all workers. Nothing about the outcome may move.
        let offered = offered_stream(300, 2);
        let costs = flat_costs(300, 40);
        let plan = FaultPlan::calm(1);
        let single = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::interactive(40.0, 4),
            &plan,
            &params(),
        );
        let explicit = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::interactive(40.0, 4),
            &plan,
            &params().with_shards(1),
        );
        assert_eq!(single, explicit);
    }

    #[test]
    fn shard_groups_isolate_a_hot_tenant() {
        // Tenant 0 issues second-long monsters; tenant 1 issues 5 ms
        // blips. On one shared pool the monsters occupy both workers and
        // the blips queue behind them; with two shard groups tenant 1
        // keeps its own worker and never waits.
        let offered: Vec<OfferedQuery> = (0..100)
            .map(|i| OfferedQuery {
                session: i,
                tenant: i % 2,
                seq: i,
                at: SimTime::from_millis(i as u64 * 5),
                lane: Lane::Interactive,
                query: Query::count("t", Predicate::True),
            })
            .collect();
        let costs: Vec<SimDuration> = (0..100)
            .map(|i| SimDuration::from_millis(if i % 2 == 0 { 1_000 } else { 5 }))
            .collect();
        let plan = FaultPlan::calm(1);
        let shared = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params(),
        );
        let sharded = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params().with_shards(2),
        );
        assert_eq!(sharded.admitted, shared.admitted);
        // Half the fleet (the blips) now finishes in single-digit
        // milliseconds, so the fleet median collapses versus the shared
        // pool, where the monsters queue ahead of everyone.
        assert!(
            sharded.p50 < shared.p50,
            "{:?} vs {:?}",
            sharded.p50,
            shared.p50
        );
    }

    #[test]
    fn node_loss_in_one_group_spares_the_other() {
        // Two groups of one worker each; slot 0 (group 0) is lost for
        // the whole run. Group 1 tenants must be completely unaffected.
        let offered: Vec<OfferedQuery> = (0..40)
            .map(|i| OfferedQuery {
                session: i,
                tenant: i % 2,
                seq: i,
                at: SimTime::from_millis(i as u64 * 10),
                lane: Lane::Interactive,
                query: Query::count("t", Predicate::True),
            })
            .collect();
        let costs = flat_costs(40, 5);
        let lossy = FaultPlan::builder(1)
            .lose_node_during(0, SimTime::ZERO, SimDuration::from_millis(200))
            .build();
        let p = ServeParams {
            workers: 2,
            latency_budget: SimDuration::from_millis(100),
            deadline: false,
            shards: 2,
        };
        let degraded =
            simulate_service(&offered, &costs, &AdmissionPolicy::unlimited(), &lossy, &p);
        let calm = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &FaultPlan::calm(1),
            &p,
        );
        // Group 0's early starts defer past the outage and queue, so
        // the tail fattens — but group 1 (half the fleet) never waits,
        // so the median is exactly calm service's.
        assert_eq!(degraded.admitted, 40);
        assert!(
            degraded.p99 > calm.p99,
            "{:?} vs {:?}",
            degraded.p99,
            calm.p99
        );
        assert_eq!(degraded.p50, calm.p50, "the spared group sets the median");
    }

    #[test]
    fn partial_loss_degrades_latency() {
        let offered = offered_stream(50, 10);
        let costs = flat_costs(50, 8);
        let lossy = FaultPlan::builder(1)
            .lose_node_during(1, SimTime::ZERO, SimDuration::from_secs(10))
            .build();
        let degraded = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &lossy,
            &params(),
        );
        let calm = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &FaultPlan::calm(1),
            &params(),
        );
        assert!(degraded.p99 >= calm.p99);
        assert!(degraded.drained_at > calm.drained_at);
    }
}
