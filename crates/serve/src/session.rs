//! Fleet synthesis: thousands of seeded interactive sessions arriving at
//! one shared engine.
//!
//! Each session is an independent crossfilter user — a device profile, a
//! behavioral trace from [`ids_workload`], and a think-time-driven query
//! stream — shifted to its arrival instant. Per-session randomness comes
//! from `SimRng::seed(seed).split("fleet/session/{id}")`, so a session's
//! queries depend only on `(seed, id, arrival)` and never on how many
//! host threads synthesized the fleet or in what order. That is what
//! makes the serving experiments bit-identical across 1/2/4/8 threads.

use ids_devices::DeviceKind;
use ids_engine::Query;
use ids_simclock::rng::SimRng;
use ids_simclock::{SimDuration, SimTime};
use ids_workload::crossfilter::{compile_query_groups, simulate_session, CrossfilterUi};

/// Priority lane of an offered query.
///
/// Interactive queries sit on the critical path of a waiting user;
/// prefetch queries are speculative warm-up work the frontend issues
/// opportunistically and can lose without anyone noticing. The admission
/// controller sheds prefetch first under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// A user is blocked on the answer.
    Interactive,
    /// Speculative warm-up; droppable under load.
    Prefetch,
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::Interactive => write!(f, "interactive"),
            Lane::Prefetch => write!(f, "prefetch"),
        }
    }
}

/// How sessions arrive at the serving layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps with the given mean — the
    /// steady-trickle regime.
    Poisson {
        /// Mean gap between consecutive session arrivals.
        mean_gap: SimDuration,
    },
    /// Rush-hour arrivals: `count` bursts `spacing` apart, each session
    /// landing uniformly inside its burst's `width`.
    Bursts {
        /// Number of bursts the fleet is spread across.
        count: usize,
        /// Start-to-start distance between bursts.
        spacing: SimDuration,
        /// Jitter window within a burst.
        width: SimDuration,
    },
}

impl ArrivalProcess {
    /// Arrival instants for `n` sessions, sorted ascending.
    ///
    /// Drawn from a dedicated RNG split in one sequential pass (arrivals
    /// are O(n) scalar work — the expensive per-session trace synthesis
    /// is what parallelizes, and it only reads these instants).
    pub fn arrivals(&self, seed: u64, n: usize) -> Vec<SimTime> {
        let mut rng = SimRng::seed(seed).split("fleet/arrivals");
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { mean_gap } => {
                let mut t = SimTime::ZERO;
                for _ in 0..n {
                    t += SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
                    out.push(t);
                }
            }
            ArrivalProcess::Bursts {
                count,
                spacing,
                width,
            } => {
                let count = count.max(1);
                for i in 0..n {
                    let burst = i % count;
                    let base = SimTime::ZERO + spacing * burst as u64;
                    out.push(
                        base + SimDuration::from_secs_f64(rng.uniform(0.0, width.as_secs_f64())),
                    );
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Static description of one simulated session before synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// Fleet-wide session index.
    pub id: usize,
    /// Tenant the session bills to (determines its backing table and
    /// token bucket).
    pub tenant: usize,
    /// Input device driving the behavioral model.
    pub device: DeviceKind,
    /// When the session connects.
    pub arrive_at: SimTime,
}

/// One query as the serving layer sees it arrive.
#[derive(Debug, Clone)]
pub struct OfferedQuery {
    /// Originating session.
    pub session: usize,
    /// Tenant of that session.
    pub tenant: usize,
    /// Issue position within the session (think-time ordered).
    pub seq: usize,
    /// Virtual instant the frontend offers the query.
    pub at: SimTime,
    /// Priority lane.
    pub lane: Lane,
    /// The query itself.
    pub query: Query,
}

/// Fleet synthesis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Master seed; everything below derives from it.
    pub seed: u64,
    /// Number of concurrent sessions.
    pub sessions: usize,
    /// Number of tenants sessions are striped across.
    pub tenants: usize,
    /// Session arrival process.
    pub arrival: ArrivalProcess,
    /// Cap on slider-move groups kept per session.
    pub max_groups: usize,
    /// Fraction of queries tagged [`Lane::Prefetch`].
    pub prefetch_rate: f64,
}

impl FleetSpec {
    /// Table name tenant `t`'s sessions query.
    pub fn tenant_table(tenant: usize) -> String {
        format!("dataroad_t{tenant}")
    }

    /// The per-session specs (arrivals, tenants, devices) this fleet
    /// resolves to. Cheap and sequential; trace synthesis is the
    /// parallel part.
    pub fn resolve(&self) -> Vec<SessionSpec> {
        let arrivals = self.arrival.arrivals(self.seed, self.sessions);
        arrivals
            .into_iter()
            .enumerate()
            .map(|(id, arrive_at)| {
                // Device choice must not depend on sibling sessions:
                // split per session.
                let mut rng = SimRng::seed(self.seed).split(&format!("fleet/device/{id}"));
                SessionSpec {
                    id,
                    tenant: id % self.tenants.max(1),
                    device: DeviceKind::ALL[rng.uniform_usize(0, DeviceKind::ALL.len())],
                    arrive_at,
                }
            })
            .collect()
    }
}

/// Synthesizes one session's offered stream.
fn synthesize_session(spec: &FleetSpec, s: &SessionSpec) -> Vec<OfferedQuery> {
    let ui = CrossfilterUi::for_table(FleetSpec::tenant_table(s.tenant));
    // `simulate_session` splits the seed by (device, user), so every
    // session gets an independent stream regardless of synthesis order.
    let session = simulate_session(s.device, s.id, spec.seed, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(spec.max_groups);
    let mut lane_rng = SimRng::seed(spec.seed).split(&format!("fleet/lane/{}", s.id));
    let mut out = Vec::new();
    for g in &groups {
        for q in &g.queries {
            let lane = if lane_rng.chance(spec.prefetch_rate) {
                Lane::Prefetch
            } else {
                Lane::Interactive
            };
            out.push(OfferedQuery {
                session: s.id,
                tenant: s.tenant,
                seq: out.len(),
                at: s.arrive_at + g.at.saturating_since(SimTime::ZERO),
                lane,
                query: q.clone(),
            });
        }
    }
    out
}

/// Synthesizes the whole fleet's offered stream, sorted by
/// `(at, session, seq)` — the canonical global serving order.
///
/// `threads` controls host-thread parallelism only: sessions are
/// chunked across `threads` workers, and because each session is an
/// independent function of `(seed, id)`, the merged result is
/// byte-identical for any thread count. The sort key is total (ties
/// broken by session then seq), so the order is unambiguous too.
pub fn synthesize_fleet(spec: &FleetSpec, threads: usize) -> Vec<OfferedQuery> {
    let _p = ids_obs::phase("serve.synthesize");
    let specs = spec.resolve();
    let threads = threads.clamp(1, specs.len().max(1));
    let chunk = specs.len().div_ceil(threads);
    let mut offered: Vec<OfferedQuery> = if threads == 1 || chunk == 0 {
        specs
            .iter()
            .flat_map(|s| synthesize_session(spec, s))
            .collect()
    } else {
        let mut parts: Vec<Vec<OfferedQuery>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        slice
                            .iter()
                            .flat_map(|s| synthesize_session(spec, s))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("synthesis thread panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    };
    offered.sort_by_key(|a| (a.at, a.session, a.seq));
    offered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        FleetSpec {
            seed: 7,
            sessions: 12,
            tenants: 3,
            arrival: ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_millis(500),
            },
            max_groups: 10,
            prefetch_rate: 0.2,
        }
    }

    /// Identity key for comparing offered queries (`Query` itself is
    /// not `PartialEq`; its chaos fingerprint stands in for it).
    fn key(q: &OfferedQuery) -> (u64, usize, usize, usize, Lane, u64) {
        (
            q.at.as_micros(),
            q.session,
            q.tenant,
            q.seq,
            q.lane,
            ids_chaos::query_fingerprint(&q.query),
        )
    }

    #[test]
    fn synthesis_is_thread_invariant() {
        let s = spec();
        let one: Vec<_> = synthesize_fleet(&s, 1).iter().map(key).collect();
        assert!(!one.is_empty());
        for threads in [2, 4, 8] {
            let multi: Vec<_> = synthesize_fleet(&s, threads).iter().map(key).collect();
            assert_eq!(one, multi, "{threads} threads");
        }
    }

    #[test]
    fn stream_is_sorted_and_striped() {
        let s = spec();
        let offered = synthesize_fleet(&s, 4);
        assert!(offered
            .windows(2)
            .all(|w| (w[0].at, w[0].session, w[0].seq) <= (w[1].at, w[1].session, w[1].seq)));
        assert!(offered.iter().all(|q| q.tenant == q.session % 3));
        assert!(offered.iter().any(|q| q.lane == Lane::Prefetch));
        assert!(offered.iter().any(|q| q.lane == Lane::Interactive));
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_seeded() {
        let p = ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_millis(100),
        };
        let a = p.arrivals(1, 50);
        assert_eq!(a.len(), 50);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a, p.arrivals(1, 50));
        assert_ne!(a, p.arrivals(2, 50));
    }

    #[test]
    fn bursts_cluster_arrivals() {
        let p = ArrivalProcess::Bursts {
            count: 2,
            spacing: SimDuration::from_secs(60),
            width: SimDuration::from_secs(1),
        };
        let a = p.arrivals(3, 10);
        let early = a.iter().filter(|t| **t < SimTime::from_secs(30)).count();
        assert_eq!(early, 5, "half the fleet lands in the first burst");
        assert!(a.iter().all(|t| {
            let s = t.saturating_since(SimTime::ZERO).as_secs_f64();
            s <= 1.0 || (60.0..=61.0).contains(&s)
        }));
    }
}
