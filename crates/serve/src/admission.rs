//! Admission control: per-tenant token buckets, priority lanes, and
//! bounded queues with shed-on-overload.
//!
//! An interactive serving tier degrades in a very particular way: when
//! offered load exceeds capacity, *queueing* is what kills the user
//! experience — every query admitted into a deep backlog pays the whole
//! backlog's latency (the fleet-scale version of the paper's Fig 2
//! cascade). Shedding the excess instead keeps the queries that *are*
//! admitted inside their latency budget. The controller here makes that
//! trade explicitly and deterministically:
//!
//! - each tenant has a token bucket (rate + burst) so one hot tenant
//!   cannot starve the rest of the shared engine;
//! - prefetch-lane queries are suppressed as soon as the queue is
//!   non-trivial — speculative work is the cheapest thing to drop;
//! - a bounded global queue sheds any query that would wait behind more
//!   than `queue_limit` others, regardless of lane.
//!
//! Everything is pure virtual-time arithmetic: the same offered stream
//! and policy always shed the same queries.

use std::collections::HashMap;

use ids_simclock::SimTime;

use crate::session::{Lane, OfferedQuery};

/// Why a query was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ShedReason {
    /// The tenant's token bucket was empty.
    RateLimited,
    /// The shared queue was at its bound.
    QueueFull,
    /// A prefetch-lane query arrived while the queue was non-empty.
    PrefetchSuppressed,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::RateLimited => write!(f, "rate-limited"),
            ShedReason::QueueFull => write!(f, "queue-full"),
            ShedReason::PrefetchSuppressed => write!(f, "prefetch-suppressed"),
        }
    }
}

/// A deterministic token bucket on the virtual clock.
///
/// Holds at most `burst` tokens, refilling at `rate_per_sec` from the
/// instant of the last take. Starts full, so a tenant's first burst is
/// admitted even at low rates.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket with the given refill rate and capacity.
    pub fn new(rate_per_sec: f64, burst: f64) -> TokenBucket {
        let burst = burst.max(0.0);
        TokenBucket {
            rate_per_sec: rate_per_sec.max(0.0),
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Refills for virtual time elapsed since the last interaction.
    /// Time never runs backwards in a sorted offered stream; a stale
    /// `now` simply refills nothing.
    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        self.last = self.last.max(now);
    }

    /// Takes one token at `now`; `false` means the caller must shed.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens available at `now` (for tests and introspection).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// Admission policy for a serving tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Sustained per-tenant admission rate, queries/second.
    pub tenant_rate: f64,
    /// Per-tenant burst allowance (bucket capacity).
    pub tenant_burst: f64,
    /// Queries allowed to wait for a worker before new arrivals shed.
    pub queue_limit: usize,
    /// Queue depth at which prefetch-lane queries are suppressed.
    pub prefetch_queue_limit: usize,
}

impl AdmissionPolicy {
    /// The no-admission baseline: everything is admitted, nothing is
    /// shed. This is the condition the fleet experiment compares
    /// against — it shows what the backlog does to tail latency.
    pub fn unlimited() -> AdmissionPolicy {
        AdmissionPolicy {
            tenant_rate: f64::INFINITY,
            tenant_burst: f64::INFINITY,
            queue_limit: usize::MAX,
            prefetch_queue_limit: usize::MAX,
        }
    }

    /// An interactive-tier default: tenants sustain `rate` q/s with a
    /// 2× burst, the queue bounds at `queue_limit`, and prefetch is
    /// suppressed once anything at all is waiting.
    pub fn interactive(rate: f64, queue_limit: usize) -> AdmissionPolicy {
        AdmissionPolicy {
            tenant_rate: rate,
            tenant_burst: (2.0 * rate).max(1.0),
            queue_limit,
            prefetch_queue_limit: 0,
        }
    }

    /// `true` when this policy can never shed anything.
    pub fn is_unlimited(&self) -> bool {
        self.tenant_rate.is_infinite()
            && self.queue_limit == usize::MAX
            && self.prefetch_queue_limit == usize::MAX
    }
}

/// Per-lane, per-reason shed accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedCounts {
    /// Sheds due to an empty tenant bucket.
    pub rate_limited: usize,
    /// Sheds due to the bounded queue.
    pub queue_full: usize,
    /// Prefetch suppressions.
    pub prefetch_suppressed: usize,
}

impl ShedCounts {
    /// Total queries shed.
    pub fn total(&self) -> usize {
        self.rate_limited + self.queue_full + self.prefetch_suppressed
    }

    fn bump(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::RateLimited => self.rate_limited += 1,
            ShedReason::QueueFull => self.queue_full += 1,
            ShedReason::PrefetchSuppressed => self.prefetch_suppressed += 1,
        }
    }
}

/// The admission controller: policy plus per-tenant bucket state.
#[derive(Debug)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    buckets: HashMap<usize, TokenBucket>,
    admitted: usize,
    shed: ShedCounts,
}

impl AdmissionController {
    /// A fresh controller (all buckets start full).
    pub fn new(policy: AdmissionPolicy) -> AdmissionController {
        AdmissionController {
            policy,
            buckets: HashMap::new(),
            admitted: 0,
            shed: ShedCounts::default(),
        }
    }

    /// Decides one offered query given the current queue `backlog`
    /// (queries admitted but not yet started). Checks run cheapest
    /// first: lane suppression, then the queue bound, then the tenant
    /// bucket — so a suppressed prefetch does not consume a token.
    pub fn admit(&mut self, q: &OfferedQuery, backlog: usize) -> Result<(), ShedReason> {
        let decision = self.decide(q, backlog);
        match decision {
            Ok(()) => self.admitted += 1,
            Err(reason) => self.shed.bump(reason),
        }
        decision
    }

    fn decide(&mut self, q: &OfferedQuery, backlog: usize) -> Result<(), ShedReason> {
        if q.lane == Lane::Prefetch && backlog > self.policy.prefetch_queue_limit {
            return Err(ShedReason::PrefetchSuppressed);
        }
        if backlog >= self.policy.queue_limit {
            return Err(ShedReason::QueueFull);
        }
        if self.policy.tenant_rate.is_finite() {
            let bucket = self.buckets.entry(q.tenant).or_insert_with(|| {
                TokenBucket::new(self.policy.tenant_rate, self.policy.tenant_burst)
            });
            if !bucket.try_take(q.at) {
                return Err(ShedReason::RateLimited);
            }
        }
        Ok(())
    }

    /// Queries admitted so far.
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// Shed accounting so far.
    pub fn shed(&self) -> ShedCounts {
        self.shed
    }

    /// The policy this controller enforces.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::{Predicate, Query};

    fn offered(tenant: usize, at_ms: u64, lane: Lane) -> OfferedQuery {
        OfferedQuery {
            session: tenant,
            tenant,
            seq: 0,
            at: SimTime::from_millis(at_ms),
            lane,
            query: Query::count("t", Predicate::True),
        }
    }

    #[test]
    fn bucket_admits_burst_then_rate() {
        let mut b = TokenBucket::new(10.0, 3.0);
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0) && b.try_take(t0) && b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        // 100 ms refills exactly one token at 10/s.
        assert!(b.try_take(SimTime::from_millis(100)));
        assert!(!b.try_take(SimTime::from_millis(100)));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(1_000.0, 2.0);
        assert!(b.available(SimTime::from_secs(3600)) <= 2.0);
    }

    #[test]
    fn controller_rate_limits_per_tenant() {
        let mut c = AdmissionController::new(AdmissionPolicy {
            tenant_rate: 1.0,
            tenant_burst: 1.0,
            queue_limit: usize::MAX,
            prefetch_queue_limit: usize::MAX,
        });
        assert!(c.admit(&offered(0, 0, Lane::Interactive), 0).is_ok());
        assert_eq!(
            c.admit(&offered(0, 1, Lane::Interactive), 0),
            Err(ShedReason::RateLimited)
        );
        // A different tenant has its own bucket.
        assert!(c.admit(&offered(1, 1, Lane::Interactive), 0).is_ok());
        assert_eq!(c.admitted(), 2);
        assert_eq!(c.shed().rate_limited, 1);
    }

    #[test]
    fn queue_bound_and_prefetch_suppression() {
        let mut c = AdmissionController::new(AdmissionPolicy {
            tenant_rate: f64::INFINITY,
            tenant_burst: f64::INFINITY,
            queue_limit: 4,
            prefetch_queue_limit: 0,
        });
        assert!(c.admit(&offered(0, 0, Lane::Interactive), 3).is_ok());
        assert_eq!(
            c.admit(&offered(0, 0, Lane::Interactive), 4),
            Err(ShedReason::QueueFull)
        );
        assert_eq!(
            c.admit(&offered(0, 0, Lane::Prefetch), 1),
            Err(ShedReason::PrefetchSuppressed)
        );
        assert!(c.admit(&offered(0, 0, Lane::Prefetch), 0).is_ok());
        assert_eq!(c.shed().total(), 2);
    }

    #[test]
    fn unlimited_policy_admits_everything() {
        let mut c = AdmissionController::new(AdmissionPolicy::unlimited());
        assert!(c.policy().is_unlimited());
        for i in 0..1_000 {
            assert!(c
                .admit(&offered(i % 7, 0, Lane::Prefetch), usize::MAX - 1)
                .is_ok());
        }
        assert_eq!(c.admitted(), 1_000);
        assert_eq!(c.shed().total(), 0);
    }
}
