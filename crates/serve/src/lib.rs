//! # ids-serve — deterministic multi-tenant serving
//!
//! The paper evaluates interactive data systems one session at a time;
//! a production deployment serves *fleets* — thousands of concurrent
//! sessions sharing one engine, its buffer pool, and its worker slots.
//! This crate scales the repository's single-session methodology to
//! that regime without giving up its core property: every run is a
//! bit-deterministic pure function of a seed on the virtual clock.
//!
//! Three layers, composed by the `fleet` experiment in `ids-core`:
//!
//! - [`session`]: seeded session lifecycles. An [`ArrivalProcess`]
//!   (Poisson trickle or rush-hour bursts) places sessions on the
//!   clock; each session replays an `ids-workload` crossfilter trace on
//!   an `ids-devices` profile, tagging queries with a priority
//!   [`Lane`]. Synthesis parallelizes across host threads with
//!   byte-identical output for any thread count.
//! - [`admission`]: per-tenant [`TokenBucket`]s, bounded queues with
//!   shed-on-overload, and prefetch suppression — the controls that
//!   keep admitted queries inside their latency budget when offered
//!   load exceeds capacity.
//! - [`fleet`]: the serving loop. [`measure_costs`] fixes per-query
//!   costs against the (optionally chaos-wrapped) shared backend, and
//!   [`simulate_service`] replays them through a worker-pool queueing
//!   simulation, folding per-session LCV and latency into mergeable
//!   fleet aggregates ([`ids_obs::Histogram`], `LcvReport::absorb`).
//!
//! Fault plans from `ids-chaos` compose end to end: latency spikes and
//! transient failures land in the cost-measurement stage, and node-loss
//! windows shrink serving capacity mid-run — degrading throughput, never
//! wedging the loop.

//!
//! The [`closedloop`] layer inverts the fleet pipeline: instead of
//! offering a pre-scripted stream, an `ids-workload` behavior model
//! *reacts* to each answer — admission shedding and deadline-bounded
//! partials feed back into what the simulated user does next.

pub mod admission;
pub mod closedloop;
pub mod fleet;
pub mod session;

pub use admission::{AdmissionController, AdmissionPolicy, ShedCounts, ShedReason, TokenBucket};
pub use closedloop::{drive_session, ClosedLoopOutcome, ClosedLoopParams, ClosedLoopQuery};
pub use fleet::{measure_costs, simulate_service, FleetOutcome, ServeParams};
pub use session::{synthesize_fleet, ArrivalProcess, FleetSpec, Lane, OfferedQuery, SessionSpec};
