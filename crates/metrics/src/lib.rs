//! The metric taxonomy of *Evaluating Interactive Data Systems* as an
//! executable library.
//!
//! Section 3 of the paper catalogs the metrics used to evaluate
//! interactive (human-in-the-loop) data systems and contributes two novel
//! frontend metrics — **Latency Constraint Violation** (LCV) and **Query
//! Issuing Frequency** (QIF). This crate implements the whole catalog:
//!
//! - [`taxonomy`] — the Fig 1 metric tree (human vs system factors,
//!   frontend vs backend) as queryable data.
//! - [`latency`] — end-to-end latency with the Section 3.1.1 breakdown
//!   (network / scheduling / execution / post-aggregation / rendering) and
//!   the perceptual thresholds the paper surveys.
//! - [`lcv`] — latency constraint violations: both the cascade form used
//!   in crossfiltering (a new query issued before the previous finished,
//!   Fig 2) and the supply form used in scrolling (demand outruns cache).
//! - [`qif`] — query issuing frequency: rates, interval histograms
//!   (Fig 14), and the Fig 3 frontend/backend trade-off quadrant.
//! - [`throughput`] — throughput and scalability (speedup curves with
//!   diminishing-returns detection, the DICE-style experiment).
//! - [`accuracy`] — approximate-answer quality: MSE, precision/recall,
//!   and time-weighted scored accuracy.
//! - [`cache`] — frontend/backend cache hit-rate counters.
//! - [`stats`] — the streaming statistics (mean/std/percentiles, CDFs,
//!   interval histograms) every case-study report is built from.
//! - [`selection`] — the Table 3 metric-selection guidelines as a
//!   decision procedure over system traits.

#![warn(missing_docs)]

pub mod accuracy;
pub mod cache;
pub mod latency;
pub mod lcv;
pub mod qif;
pub mod selection;
pub mod stats;
pub mod taxonomy;
pub mod throughput;

pub use latency::{LatencyBreakdown, PerceptualThreshold};
pub use lcv::{cascade_violations, supply_violations, LcvReport};
pub use qif::{BackendSpeed, QifQuadrant, QifReport};
pub use stats::{Cdf, IntervalHistogram, Summary};
pub use taxonomy::{Metric, MetricCategory};
