//! Metric selection: Table 3 and the Section 3.3 best practices as a
//! decision procedure.
//!
//! Given a description of the system under evaluation
//! ([`SystemTraits`]), [`recommend`] returns the metrics the paper's
//! guidelines call for, and [`when_to_use`] reproduces the Table 3
//! guidance strings verbatim-in-spirit for catalog rendering.

use crate::taxonomy::Metric;

/// A characterization of the system being evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemTraits {
    /// Guides users toward insights (SeeDB/Zenvisage-style exploration).
    pub exploratory_guidance: bool,
    /// Users complete defined tasks.
    pub task_based: bool,
    /// Returns approximate / speculative answers.
    pub approximate: bool,
    /// Aims to reduce user effort on a specific task vs a baseline.
    pub effort_reducing: bool,
    /// Complex tool used frequently by experts.
    pub expert_tool: bool,
    /// Designed for walk-up use by untrained users.
    pub walk_up_tool: bool,
    /// Issues many queries in short bursts (continuous interaction).
    pub bursty_queries: bool,
    /// Driven by a high-frame-rate input device.
    pub high_frame_rate_device: bool,
    /// Large data volumes.
    pub large_data: bool,
    /// Distributed across servers.
    pub distributed: bool,
    /// Performs prefetching or speculative caching.
    pub prefetching: bool,
    /// Built for a specific practitioner domain.
    pub domain_specific: bool,
}

/// Metrics recommended by the paper's guidelines for a system with the
/// given traits. `UserFeedback` and `Latency` are always included —
/// Table 3 marks both "Always".
pub fn recommend(traits: &SystemTraits) -> Vec<Metric> {
    let mut metrics = vec![Metric::UserFeedback, Metric::Latency];
    if traits.domain_specific {
        metrics.push(Metric::DesignStudy);
        metrics.push(Metric::FocusGroups);
    }
    if traits.exploratory_guidance {
        metrics.push(Metric::NumberOfInsights);
        metrics.push(Metric::UniquenessOfInsights);
    }
    if traits.task_based {
        metrics.push(Metric::TaskCompletionTime);
    }
    if traits.approximate || traits.prefetching {
        metrics.push(Metric::Accuracy);
    }
    if traits.effort_reducing {
        metrics.push(Metric::NumberOfInteractions);
    }
    if traits.expert_tool {
        metrics.push(Metric::Learnability);
    }
    if traits.walk_up_tool {
        metrics.push(Metric::Discoverability);
    }
    if traits.bursty_queries {
        metrics.push(Metric::LatencyConstraintViolation);
    }
    if traits.high_frame_rate_device {
        metrics.push(Metric::QueryIssuingFrequency);
        if !metrics.contains(&Metric::LatencyConstraintViolation) {
            metrics.push(Metric::LatencyConstraintViolation);
        }
    }
    if traits.large_data {
        metrics.push(Metric::Scalability);
    }
    if traits.distributed {
        metrics.push(Metric::Throughput);
    }
    if traits.prefetching {
        metrics.push(Metric::CacheHitRate);
    }
    metrics
}

/// The Table 3 "when to use" guidance for each metric.
pub fn when_to_use(metric: Metric) -> &'static str {
    use Metric::*;
    match metric {
        DesignStudy => "for formulating system specifications and evaluation tasks",
        FocusGroups => "to get consensus feedback from a group",
        UserFeedback => "always",
        NumberOfInsights => "exploratory systems that provide user guidance",
        UniquenessOfInsights => "exploratory systems that provide user guidance",
        TaskCompletionTime => "task-based systems",
        Accuracy => "approximate and speculative systems",
        NumberOfInteractions => {
            "systems that aim to reduce user effort for a specific task, usually vs a baseline"
        }
        Learnability => "complex systems that will be used frequently by experts",
        Discoverability => "systems designed for everyday use by naive/untrained users",
        LatencyConstraintViolation => {
            "systems where multiple queries are issued consecutively in a short time frame"
        }
        QueryIssuingFrequency => "devices with high frame rate",
        Latency => "always",
        Scalability => "systems that deal with large amounts of data",
        Throughput => "distributed systems",
        CacheHitRate => "systems that perform prefetching",
    }
}

/// Validation failures for a proposed evaluation plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanIssue {
    /// Best practice 1: at least one human and one system metric.
    MissingHumanFactor,
    /// Best practice 1 (other half).
    MissingSystemFactor,
    /// Table 3: user feedback should always be collected.
    MissingUserFeedback,
    /// Table 3: latency should always be measured.
    MissingLatency,
    /// A trait-indicated metric is absent from the plan.
    MissingRecommended(Metric),
}

/// Checks a metric plan against the guidelines; empty result = sound.
pub fn validate_plan(traits: &SystemTraits, plan: &[Metric]) -> Vec<PlanIssue> {
    let mut issues = Vec::new();
    if !plan.iter().any(|m| m.requires_humans()) {
        issues.push(PlanIssue::MissingHumanFactor);
    }
    if !plan.iter().any(|m| !m.requires_humans()) {
        issues.push(PlanIssue::MissingSystemFactor);
    }
    if !plan.contains(&Metric::UserFeedback) {
        issues.push(PlanIssue::MissingUserFeedback);
    }
    if !plan.contains(&Metric::Latency) {
        issues.push(PlanIssue::MissingLatency);
    }
    for m in recommend(traits) {
        if !plan.contains(&m) && !matches!(m, Metric::UserFeedback | Metric::Latency) {
            issues.push(PlanIssue::MissingRecommended(m));
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_recommendation_is_feedback_and_latency() {
        let metrics = recommend(&SystemTraits::default());
        assert_eq!(metrics, vec![Metric::UserFeedback, Metric::Latency]);
    }

    #[test]
    fn crossfilter_system_gets_novel_metrics() {
        // Case study 2's profile: bursty, high-frame-rate, large data.
        let traits = SystemTraits {
            bursty_queries: true,
            high_frame_rate_device: true,
            large_data: true,
            ..SystemTraits::default()
        };
        let metrics = recommend(&traits);
        assert!(metrics.contains(&Metric::LatencyConstraintViolation));
        assert!(metrics.contains(&Metric::QueryIssuingFrequency));
        assert!(metrics.contains(&Metric::Scalability));
    }

    #[test]
    fn high_frame_rate_alone_implies_lcv_too() {
        // Guideline 8: high-frame-rate devices measure QIF *and* LCV.
        let traits = SystemTraits {
            high_frame_rate_device: true,
            ..SystemTraits::default()
        };
        let metrics = recommend(&traits);
        assert!(metrics.contains(&Metric::LatencyConstraintViolation));
        // No duplicates.
        let mut dedup = metrics.clone();
        dedup.dedup();
        assert_eq!(metrics.len(), {
            use std::collections::HashSet;
            metrics.iter().collect::<HashSet<_>>().len()
        });
    }

    #[test]
    fn prefetching_gets_accuracy_and_cache_hit_rate() {
        let traits = SystemTraits {
            prefetching: true,
            ..SystemTraits::default()
        };
        let metrics = recommend(&traits);
        assert!(metrics.contains(&Metric::CacheHitRate));
        assert!(metrics.contains(&Metric::Accuracy));
    }

    #[test]
    fn expert_vs_walkup_split() {
        let expert = recommend(&SystemTraits {
            expert_tool: true,
            ..SystemTraits::default()
        });
        assert!(expert.contains(&Metric::Learnability));
        assert!(!expert.contains(&Metric::Discoverability));
        let walkup = recommend(&SystemTraits {
            walk_up_tool: true,
            ..SystemTraits::default()
        });
        assert!(walkup.contains(&Metric::Discoverability));
    }

    #[test]
    fn table3_strings_exist_for_all_metrics() {
        for m in Metric::ALL {
            assert!(!when_to_use(m).is_empty());
        }
        assert_eq!(when_to_use(Metric::Latency), "always");
    }

    #[test]
    fn plan_validation_flags_gaps() {
        let traits = SystemTraits {
            distributed: true,
            ..SystemTraits::default()
        };
        // System-only plan: missing human factor, feedback, throughput.
        let issues = validate_plan(&traits, &[Metric::Latency]);
        assert!(issues.contains(&PlanIssue::MissingHumanFactor));
        assert!(issues.contains(&PlanIssue::MissingUserFeedback));
        assert!(issues.contains(&PlanIssue::MissingRecommended(Metric::Throughput)));

        // A complete plan passes.
        let plan = [Metric::UserFeedback, Metric::Latency, Metric::Throughput];
        assert!(validate_plan(&traits, &plan).is_empty());
    }

    #[test]
    fn human_only_plan_flags_missing_system_factor() {
        let issues = validate_plan(&SystemTraits::default(), &[Metric::UserFeedback]);
        assert!(issues.contains(&PlanIssue::MissingSystemFactor));
        assert!(issues.contains(&PlanIssue::MissingLatency));
    }
}
