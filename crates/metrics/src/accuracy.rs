//! Accuracy metrics for approximate and speculative systems.
//!
//! "The old contract with databases was unbounded execution time but
//! accurate results. In interactive systems this is flipped: strict
//! latency requirements but approximate answers." The catalog covers
//! mean-squared error (Incvisage's visualization comparison),
//! precision/recall (Icarus-style set retrieval), and *scored accuracy* —
//! error weighted by how quickly the user/system produced the answer.

use ids_simclock::SimDuration;

/// Mean squared error between an approximation and ground truth.
/// Panics if lengths differ — comparing unlike visualizations is a bug.
pub fn mean_squared_error(approx: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(approx.len(), truth.len(), "series lengths must match");
    if approx.is_empty() {
        return 0.0;
    }
    approx
        .iter()
        .zip(truth)
        .map(|(a, t)| (a - t).powi(2))
        .sum::<f64>()
        / approx.len() as f64
}

/// Precision and recall of a retrieved set against a relevant set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// |retrieved ∩ relevant| / |retrieved|.
    pub precision: f64,
    /// |retrieved ∩ relevant| / |relevant|.
    pub recall: f64,
}

impl PrecisionRecall {
    /// Computes precision/recall from sorted-or-not id slices.
    pub fn of(retrieved: &[u64], relevant: &[u64]) -> PrecisionRecall {
        use std::collections::HashSet;
        let retrieved_set: HashSet<u64> = retrieved.iter().copied().collect();
        let relevant_set: HashSet<u64> = relevant.iter().copied().collect();
        let hits = retrieved_set.intersection(&relevant_set).count() as f64;
        PrecisionRecall {
            precision: if retrieved_set.is_empty() {
                0.0
            } else {
                hits / retrieved_set.len() as f64
            },
            recall: if relevant_set.is_empty() {
                0.0
            } else {
                hits / relevant_set.len() as f64
            },
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision, self.recall);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Incvisage-style scored accuracy: the error of a submitted answer
/// weighted by submission time — early wrong answers and late right
/// answers both score poorly. Returns a value in `(0, 1]`, higher better.
///
/// `score = exp(-|answer - truth| / scale) · exp(-t / t_scale)` — a
/// smooth, monotone-in-both-arguments scoring rule.
pub fn scored_accuracy(
    answer: f64,
    truth: f64,
    submitted_after: SimDuration,
    error_scale: f64,
    time_scale: SimDuration,
) -> f64 {
    let err_term = (-((answer - truth).abs() / error_scale.max(1e-12))).exp();
    let t_term = (-(submitted_after.as_secs_f64() / time_scale.as_secs_f64().max(1e-12))).exp();
    err_term * t_term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mean_squared_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mean_squared_error(&[0.0, 0.0], &[3.0, 4.0]), 12.5);
        assert_eq!(mean_squared_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mse_length_mismatch_panics() {
        mean_squared_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn precision_recall_partial_overlap() {
        let pr = PrecisionRecall::of(&[1, 2, 3, 4], &[3, 4, 5, 6, 7, 8]);
        assert_eq!(pr.precision, 0.5);
        assert!((pr.recall - 2.0 / 6.0).abs() < 1e-12);
        assert!(pr.f1() > 0.0 && pr.f1() < 1.0);
    }

    #[test]
    fn precision_recall_edges() {
        let perfect = PrecisionRecall::of(&[1, 2], &[1, 2]);
        assert_eq!((perfect.precision, perfect.recall), (1.0, 1.0));
        assert_eq!(perfect.f1(), 1.0);
        let nothing = PrecisionRecall::of(&[], &[1]);
        assert_eq!((nothing.precision, nothing.recall), (0.0, 0.0));
        assert_eq!(nothing.f1(), 0.0);
    }

    #[test]
    fn scored_accuracy_rewards_fast_and_correct() {
        let scale = 10.0;
        let tscale = SimDuration::from_secs(60);
        let fast_right = scored_accuracy(100.0, 100.0, SimDuration::from_secs(5), scale, tscale);
        let slow_right = scored_accuracy(100.0, 100.0, SimDuration::from_secs(50), scale, tscale);
        let fast_wrong = scored_accuracy(130.0, 100.0, SimDuration::from_secs(5), scale, tscale);
        assert!(fast_right > slow_right);
        assert!(fast_right > fast_wrong);
        assert!(fast_right <= 1.0 && fast_right > 0.0);
    }
}
