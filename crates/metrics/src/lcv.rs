//! Latency Constraint Violations (LCV) — the paper's first novel metric.
//!
//! Mean or max latency misses what the user actually *perceives* in a
//! session of dependent queries. LCV counts the times the zero-latency
//! rule is broken. The paper instantiates it twice:
//!
//! - **Cascade form** (crossfiltering, Fig 2 / Fig 15): a query violates
//!   the constraint when the user issues the next query before the
//!   previous one finished — delays then cascade, since each execution
//!   queues behind its predecessors.
//! - **Supply form** (inertial scrolling, Table 8): a violation occurs
//!   when the number of tuples the user has scrolled past exceeds the
//!   number the loader has cached — the user stares at an empty viewport.

use ids_simclock::{SimDuration, SimTime};

/// The issue and completion instants of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpan {
    /// When the frontend issued the query.
    pub issued_at: SimTime,
    /// When results returned to the frontend.
    pub finished_at: SimTime,
}

/// An LCV measurement: how many of the observed events violated the
/// latency constraint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LcvReport {
    /// Total events considered.
    pub total: usize,
    /// Events that violated the constraint.
    pub violations: usize,
}

impl LcvReport {
    /// Fraction of events in violation (0 when no events).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }

    /// `true` if at least one violation occurred — the per-user yes/no
    /// that Table 8 counts across the participant pool.
    pub fn any(&self) -> bool {
        self.violations > 0
    }

    /// Folds another report into this one. LCV counts are mergeable —
    /// a fleet-level report is exactly the sum of its per-session
    /// reports, independent of fold order — which is what lets the
    /// serving layer aggregate thousands of concurrent sessions without
    /// keeping every span around.
    pub fn absorb(&mut self, other: &LcvReport) {
        self.total += other.total;
        self.violations += other.violations;
    }
}

/// Cascade-form LCV over a query stream sorted by issue time: query *i*
/// violates when the next query is issued strictly before *i* finishes.
///
/// The final query has no successor and cannot violate under this
/// definition, matching the paper's Fig 2 reading (Q1–Q3 violate, Q4's
/// delay is the consequence).
pub fn cascade_violations(spans: &[QuerySpan]) -> LcvReport {
    debug_assert!(
        spans.windows(2).all(|w| w[0].issued_at <= w[1].issued_at),
        "spans must be sorted by issue time"
    );
    let violations = spans
        .windows(2)
        .filter(|w| w[1].issued_at < w[0].finished_at)
        .count();
    LcvReport {
        total: spans.len(),
        violations,
    }
}

/// Budget-form LCV: a query violates when its perceived latency
/// (issue → finish) strictly exceeds `budget` — the fixed interactivity
/// threshold reading (e.g. the classic 100 ms rule).
///
/// Monotone by construction: growing the budget can only remove
/// violations, never add them (the property-test suite pins this).
pub fn budget_violations(spans: &[QuerySpan], budget: SimDuration) -> LcvReport {
    let violations = spans
        .iter()
        .filter(|s| s.finished_at.saturating_since(s.issued_at) > budget)
        .count();
    LcvReport {
        total: spans.len(),
        violations,
    }
}

/// Supply-form LCV: at each demand event, the cumulative units demanded
/// (tuples scrolled past) must not exceed the cumulative units supplied
/// (tuples cached) by that instant.
///
/// `demand` and `supply` are step functions given as sorted
/// `(time, cumulative)` points; supply between points holds its last
/// value (zero before the first point).
pub fn supply_violations(demand: &[(SimTime, u64)], supply: &[(SimTime, u64)]) -> LcvReport {
    debug_assert!(demand.windows(2).all(|w| w[0].0 <= w[1].0));
    debug_assert!(supply.windows(2).all(|w| w[0].0 <= w[1].0));
    let mut supplied: u64 = 0;
    let mut si = 0;
    let mut violations = 0;
    for &(t, demanded) in demand {
        while si < supply.len() && supply[si].0 <= t {
            supplied = supply[si].1;
            si += 1;
        }
        if demanded > supplied {
            violations += 1;
        }
    }
    LcvReport {
        total: demand.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn span(issue: u64, finish: u64) -> QuerySpan {
        QuerySpan {
            issued_at: t(issue),
            finished_at: t(finish),
        }
    }

    #[test]
    fn fast_backend_no_cascade() {
        // Finish before the next issue: no violations.
        let spans = vec![span(0, 5), span(20, 25), span(40, 45)];
        let r = cascade_violations(&spans);
        assert_eq!(r.violations, 0);
        assert_eq!(r.total, 3);
        assert!(!r.any());
        assert_eq!(r.fraction(), 0.0);
    }

    #[test]
    fn slow_backend_cascades() {
        // Fig 2: each query still running when the next is issued.
        let spans = vec![span(0, 50), span(10, 100), span(20, 150), span(30, 200)];
        let r = cascade_violations(&spans);
        assert_eq!(r.violations, 3, "Q1-Q3 violate; Q4 has no successor");
        assert!((r.fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn boundary_is_not_a_violation() {
        // Next query issued exactly at completion: not a violation.
        let spans = vec![span(0, 20), span(20, 40)];
        assert_eq!(cascade_violations(&spans).violations, 0);
    }

    #[test]
    fn empty_and_singleton_streams() {
        assert_eq!(cascade_violations(&[]).total, 0);
        let one = cascade_violations(&[span(0, 1_000_000)]);
        assert_eq!(one.violations, 0);
        assert_eq!(one.total, 1);
    }

    #[test]
    fn budget_violations_count_late_queries() {
        let spans = vec![span(0, 50), span(100, 250), span(300, 301)];
        let ms = SimDuration::from_millis;
        assert_eq!(budget_violations(&spans, ms(100)).violations, 1);
        assert_eq!(budget_violations(&spans, ms(150)).violations, 0);
        assert_eq!(budget_violations(&spans, ms(10)).violations, 2);
        // Exactly on budget is not a violation.
        assert_eq!(budget_violations(&[span(0, 100)], ms(100)).violations, 0);
        assert_eq!(budget_violations(&[], ms(1)).total, 0);
    }

    #[test]
    fn supply_meets_demand() {
        // Loader always ahead of the reader.
        let demand = vec![(t(10), 10), (t(20), 30), (t(30), 50)];
        let supply = vec![(t(0), 40), (t(25), 100)];
        let r = supply_violations(&demand, &supply);
        assert_eq!(r.violations, 0);
        assert_eq!(r.total, 3);
    }

    #[test]
    fn fast_scroll_outruns_loader() {
        // User scrolls 100 tuples by 30 ms; loader has cached only 20.
        let demand = vec![(t(10), 40), (t(20), 70), (t(30), 100)];
        let supply = vec![(t(0), 20), (t(50), 200)];
        let r = supply_violations(&demand, &supply);
        assert_eq!(r.violations, 3);
        assert!(r.any());
    }

    #[test]
    fn supply_step_function_semantics() {
        // Supply jumps at t=20; demand at t=20 sees the new value.
        let demand = vec![(t(20), 50)];
        let supply = vec![(t(20), 50)];
        assert_eq!(supply_violations(&demand, &supply).violations, 0);
        // But one microsecond earlier it would have violated.
        let early = vec![(SimTime::from_micros(19_999), 50)];
        assert_eq!(supply_violations(&early, &supply).violations, 1);
    }

    #[test]
    fn no_supply_at_all() {
        let demand = vec![(t(1), 1)];
        let r = supply_violations(&demand, &[]);
        assert_eq!(r.violations, 1);
    }

    #[test]
    fn absorb_matches_combined_measurement() {
        let ms = SimDuration::from_millis;
        let a_spans = vec![span(0, 50), span(100, 300)];
        let b_spans = vec![span(0, 10), span(20, 500), span(600, 800)];
        let mut folded = budget_violations(&a_spans, ms(100));
        folded.absorb(&budget_violations(&b_spans, ms(100)));
        let mut all = a_spans.clone();
        all.extend(&b_spans);
        let combined = budget_violations(&all, ms(100));
        assert_eq!(folded, combined);
        // Absorbing an empty report is a no-op.
        folded.absorb(&LcvReport::default());
        assert_eq!(folded, combined);
    }
}
