//! Latency with the Section 3.1.1 decomposition and the perceptual
//! thresholds the paper surveys.
//!
//! "Latency encompasses a lot more than just query execution time. It is
//! calculated from the moment the user hits submit till they get back
//! results" — and reporting execution time alone "can be misleading".
//! [`LatencyBreakdown`] carries all five components so experiments can
//! report at the granularity where optimizations (prefetching,
//! progressive rendering) apply.

use ids_simclock::SimDuration;

/// End-to-end latency decomposed into the paper's five components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Request + response transfer time.
    pub network: SimDuration,
    /// Queue time between arrival and execution start.
    pub scheduling: SimDuration,
    /// Query execution proper.
    pub execution: SimDuration,
    /// Summarize/rank/bin/highlight before presentation.
    pub post_aggregation: SimDuration,
    /// Painting results on screen.
    pub rendering: SimDuration,
}

impl LatencyBreakdown {
    /// A breakdown with only an execution component.
    pub fn execution_only(execution: SimDuration) -> LatencyBreakdown {
        LatencyBreakdown {
            execution,
            ..LatencyBreakdown::default()
        }
    }

    /// Total perceived latency: the sum of all components.
    pub fn total(&self) -> SimDuration {
        self.network + self.scheduling + self.execution + self.post_aggregation + self.rendering
    }

    /// The largest component, with its name — where optimization effort
    /// should go first.
    pub fn bottleneck(&self) -> (&'static str, SimDuration) {
        let parts = [
            ("network", self.network),
            ("scheduling", self.scheduling),
            ("execution", self.execution),
            ("post-aggregation", self.post_aggregation),
            ("rendering", self.rendering),
        ];
        parts
            .into_iter()
            .max_by_key(|&(_, d)| d)
            .expect("five components")
    }

    /// The fraction of total latency due to `execution` — when this is
    /// small, reporting execution time alone misleads (Section 3.1.1).
    pub fn execution_fraction(&self) -> f64 {
        let total = self.total().as_micros();
        if total == 0 {
            return 0.0;
        }
        self.execution.as_micros() as f64 / total as f64
    }
}

/// Task-specific perceptual latency thresholds surveyed in Section 3.1.1.
/// Spending resources to get below a threshold the user cannot perceive
/// is waste; exceeding it degrades the user's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerceptualThreshold {
    /// Visual analytics: +500 ms is noticeable and harms exploration
    /// (Liu & Heer).
    VisualAnalysis,
    /// Head-mounted displays: +50 ms already measurable in sickness
    /// scores (Nelson et al.).
    HeadMounted,
    /// Mouse target acquisition degrades above 50 ms added latency
    /// (Pavlovych & Gutwin).
    TargetAcquisition,
    /// Mouse target *tracking* degrades above 110 ms (same study).
    TargetTracking,
    /// Direct touch pointing: users can discriminate 20 ms differences
    /// (Jota et al.).
    TouchPointing,
}

impl PerceptualThreshold {
    /// The threshold value.
    pub fn limit(self) -> SimDuration {
        let ms = match self {
            PerceptualThreshold::VisualAnalysis => 500,
            PerceptualThreshold::HeadMounted => 50,
            PerceptualThreshold::TargetAcquisition => 50,
            PerceptualThreshold::TargetTracking => 110,
            PerceptualThreshold::TouchPointing => 20,
        };
        SimDuration::from_millis(ms)
    }

    /// Source study, for reports.
    pub fn source(self) -> &'static str {
        match self {
            PerceptualThreshold::VisualAnalysis => "Liu & Heer 2014",
            PerceptualThreshold::HeadMounted => "Nelson et al. 2000",
            PerceptualThreshold::TargetAcquisition | PerceptualThreshold::TargetTracking => {
                "Pavlovych & Gutwin 2012"
            }
            PerceptualThreshold::TouchPointing => "Jota et al. 2013",
        }
    }

    /// `true` if `latency` stays within this task's perceptual budget.
    pub fn is_imperceptible(self, latency: SimDuration) -> bool {
        latency <= self.limit()
    }

    /// All thresholds, for catalog rendering.
    pub const ALL: [PerceptualThreshold; 5] = [
        PerceptualThreshold::VisualAnalysis,
        PerceptualThreshold::HeadMounted,
        PerceptualThreshold::TargetAcquisition,
        PerceptualThreshold::TargetTracking,
        PerceptualThreshold::TouchPointing,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn total_sums_components() {
        let b = LatencyBreakdown {
            network: ms(5),
            scheduling: ms(10),
            execution: ms(100),
            post_aggregation: ms(15),
            rendering: ms(20),
        };
        assert_eq!(b.total(), ms(150));
        assert_eq!(b.bottleneck(), ("execution", ms(100)));
        assert!((b.execution_fraction() - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn execution_only_constructor() {
        let b = LatencyBreakdown::execution_only(ms(42));
        assert_eq!(b.total(), ms(42));
        assert_eq!(b.execution_fraction(), 1.0);
    }

    #[test]
    fn bottleneck_can_be_nonexecution() {
        let b = LatencyBreakdown {
            scheduling: ms(300),
            execution: ms(50),
            ..LatencyBreakdown::default()
        };
        assert_eq!(b.bottleneck().0, "scheduling");
        assert!(
            b.execution_fraction() < 0.2,
            "execution alone would mislead"
        );
    }

    #[test]
    fn zero_breakdown() {
        let b = LatencyBreakdown::default();
        assert_eq!(b.total(), SimDuration::ZERO);
        assert_eq!(b.execution_fraction(), 0.0);
    }

    #[test]
    fn thresholds_match_surveyed_values() {
        assert_eq!(PerceptualThreshold::VisualAnalysis.limit(), ms(500));
        assert_eq!(PerceptualThreshold::TouchPointing.limit(), ms(20));
        assert_eq!(PerceptualThreshold::TargetTracking.limit(), ms(110));
        assert!(PerceptualThreshold::VisualAnalysis.is_imperceptible(ms(400)));
        assert!(!PerceptualThreshold::TouchPointing.is_imperceptible(ms(25)));
        assert_eq!(PerceptualThreshold::ALL.len(), 5);
        assert!(PerceptualThreshold::HeadMounted.source().contains("Nelson"));
    }
}
