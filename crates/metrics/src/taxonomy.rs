//! The Fig 1 metric taxonomy as queryable data.
//!
//! Metrics divide into **human factors** (require a human to measure;
//! qualitative or quantitative) and **system factors** (measured without
//! humans; frontend or backend). Latency further decomposes into five
//! components, handled by [`crate::latency::LatencyBreakdown`].

/// Every metric in the paper's catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    // --- Human factors: qualitative ---
    /// Open-ended comments, surveys, Likert scores.
    UserFeedback,
    /// Practitioner interviews for task definition.
    DesignStudy,
    /// Small-group consensus feedback.
    FocusGroups,
    // --- Human factors: quantitative ---
    /// Insights found during exploratory analysis.
    NumberOfInsights,
    /// Distinct discoveries across users.
    UniquenessOfInsights,
    /// Time to finish a defined task.
    TaskCompletionTime,
    /// Approximation quality vs ground truth.
    Accuracy,
    /// Iterations / operator applications to finish a task.
    NumberOfInteractions,
    /// How quickly users learn the system after training.
    Learnability,
    /// How quickly users find actions without instruction.
    Discoverability,
    // --- System factors: frontend ---
    /// Perceived latency-constraint violations (novel, Section 3.1.2).
    LatencyConstraintViolation,
    /// Queries issued per second (novel, Section 3.1.2).
    QueryIssuingFrequency,
    // --- System factors: backend ---
    /// End-to-end latency (five-component breakdown).
    Latency,
    /// Performance change with data/resource growth.
    Scalability,
    /// Work completed per second.
    Throughput,
    /// Fraction of lookups served from cache.
    CacheHitRate,
}

/// Position in the Fig 1 tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricCategory {
    /// Human factors, qualitative branch.
    HumanQualitative,
    /// Human factors, quantitative branch.
    HumanQuantitative,
    /// System factors, frontend branch.
    SystemFrontend,
    /// System factors, backend branch.
    SystemBackend,
}

impl Metric {
    /// Every metric, in Fig 1 order.
    pub const ALL: [Metric; 16] = [
        Metric::UserFeedback,
        Metric::DesignStudy,
        Metric::FocusGroups,
        Metric::NumberOfInsights,
        Metric::UniquenessOfInsights,
        Metric::TaskCompletionTime,
        Metric::Accuracy,
        Metric::NumberOfInteractions,
        Metric::Learnability,
        Metric::Discoverability,
        Metric::LatencyConstraintViolation,
        Metric::QueryIssuingFrequency,
        Metric::Latency,
        Metric::Scalability,
        Metric::Throughput,
        Metric::CacheHitRate,
    ];

    /// The branch of the taxonomy this metric belongs to.
    pub fn category(self) -> MetricCategory {
        use Metric::*;
        match self {
            UserFeedback | DesignStudy | FocusGroups => MetricCategory::HumanQualitative,
            NumberOfInsights | UniquenessOfInsights | TaskCompletionTime | Accuracy
            | NumberOfInteractions | Learnability | Discoverability => {
                MetricCategory::HumanQuantitative
            }
            LatencyConstraintViolation | QueryIssuingFrequency => MetricCategory::SystemFrontend,
            Latency | Scalability | Throughput | CacheHitRate => MetricCategory::SystemBackend,
        }
    }

    /// `true` if measuring this metric requires human participants.
    pub fn requires_humans(self) -> bool {
        matches!(
            self.category(),
            MetricCategory::HumanQualitative | MetricCategory::HumanQuantitative
        )
    }

    /// `true` for the two metrics this paper introduces.
    pub fn is_novel(self) -> bool {
        matches!(
            self,
            Metric::LatencyConstraintViolation | Metric::QueryIssuingFrequency
        )
    }

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        use Metric::*;
        match self {
            UserFeedback => "User Feedback",
            DesignStudy => "Design Study",
            FocusGroups => "Focus Groups",
            NumberOfInsights => "No. of Insights",
            UniquenessOfInsights => "Uniqueness of Insights",
            TaskCompletionTime => "Task Completion Time",
            Accuracy => "Accuracy",
            NumberOfInteractions => "Number of Interactions",
            Learnability => "Learnability",
            Discoverability => "Discoverability",
            LatencyConstraintViolation => "Latency Constraint Violation",
            QueryIssuingFrequency => "Query Issuing Frequency",
            Latency => "Latency",
            Scalability => "Scalability",
            Throughput => "Throughput",
            CacheHitRate => "Cache Hit Rate",
        }
    }
}

impl MetricCategory {
    /// Human-readable path in the Fig 1 tree.
    pub fn path(self) -> &'static str {
        match self {
            MetricCategory::HumanQualitative => "Human Factors / Qualitative",
            MetricCategory::HumanQuantitative => "Human Factors / Quantitative",
            MetricCategory::SystemFrontend => "System Factors / Frontend",
            MetricCategory::SystemBackend => "System Factors / Backend",
        }
    }
}

/// Renders the taxonomy as an indented tree (the textual Fig 1).
pub fn render_tree() -> String {
    let mut out = String::from("Metrics\n");
    let branches = [
        (
            "Human Factors",
            vec![
                ("Qualitative", MetricCategory::HumanQualitative),
                ("Quantitative", MetricCategory::HumanQuantitative),
            ],
        ),
        (
            "System Factors",
            vec![
                ("Frontend", MetricCategory::SystemFrontend),
                ("Backend", MetricCategory::SystemBackend),
            ],
        ),
    ];
    for (top, subs) in branches {
        out.push_str(&format!("├── {top}\n"));
        for (sub, cat) in subs {
            out.push_str(&format!("│   ├── {sub}\n"));
            for m in Metric::ALL.iter().filter(|m| m.category() == cat) {
                let marker = if m.is_novel() { " (novel)" } else { "" };
                out.push_str(&format!("│   │   ├── {}{marker}\n", m.name()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metrics_are_categorized() {
        assert_eq!(Metric::ALL.len(), 16);
        for m in Metric::ALL {
            // No panic, and human/system split is consistent.
            let human = m.requires_humans();
            match m.category() {
                MetricCategory::HumanQualitative | MetricCategory::HumanQuantitative => {
                    assert!(human)
                }
                _ => assert!(!human),
            }
        }
    }

    #[test]
    fn exactly_two_novel_metrics() {
        let novel: Vec<Metric> = Metric::ALL
            .iter()
            .copied()
            .filter(|m| m.is_novel())
            .collect();
        assert_eq!(
            novel,
            vec![
                Metric::LatencyConstraintViolation,
                Metric::QueryIssuingFrequency
            ]
        );
        for m in novel {
            assert_eq!(m.category(), MetricCategory::SystemFrontend);
        }
    }

    #[test]
    fn tree_renders_all_metrics() {
        let tree = render_tree();
        for m in Metric::ALL {
            assert!(tree.contains(m.name()), "missing {}", m.name());
        }
        assert_eq!(tree.matches("(novel)").count(), 2);
    }

    #[test]
    fn category_paths() {
        assert!(MetricCategory::SystemFrontend.path().contains("Frontend"));
        assert_eq!(Metric::Latency.category(), MetricCategory::SystemBackend);
        assert_eq!(
            Metric::Accuracy.category(),
            MetricCategory::HumanQuantitative
        );
    }
}
