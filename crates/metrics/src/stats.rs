//! Streaming statistics, CDFs, and interval histograms.
//!
//! Every case-study table in the paper is a statistic over a trace:
//! ranges/means/medians of scroll speed (Table 7), CDFs of request and
//! exploration time (Figs 20–21), histograms of query-issuing intervals
//! (Fig 14). This module provides those building blocks.

/// Online mean/variance (Welford) plus min/max over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Summary::default()
        }
    }

    /// Builds a summary from a slice.
    pub fn of(samples: &[f64]) -> Summary {
        let mut s = Summary::new();
        for &x in samples {
            s.push(x);
        }
        s
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.samples.push(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metric samples"));
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// `[min, max]` range, as the paper's Table 7 reports.
    pub fn range(&self) -> Option<(f64, f64)> {
        (self.n > 0).then_some((self.min, self.max))
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected by debug assertion).
    pub fn of(samples: &[f64]) -> Cdf {
        debug_assert!(samples.iter().all(|x| !x.is_nan()));
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)` — e.g. "80% of exploration times are greater than 1 s".
    pub fn fraction_gt(&self, x: f64) -> f64 {
        1.0 - self.fraction_le(x)
    }

    /// The value at cumulative probability `p` (inverse CDF).
    pub fn value_at(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * p).round() as usize;
        Some(self.sorted[idx])
    }

    /// `(x, P(X ≤ x))` points for plotting, one per distinct sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let p = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = p,
                _ => out.push((x, p)),
            }
        }
        out
    }
}

/// A fixed-width histogram over a bounded interval, used for the Fig 14
/// query-issuing-interval plots.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples outside `[lo, hi)`.
    outliers: u64,
}

impl IntervalHistogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> IntervalHistogram {
        assert!(hi > lo && bins > 0, "degenerate histogram domain");
        IntervalHistogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo || x >= self.hi || x.is_nan() {
            self.outliers += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
        let idx = idx.min(bins - 1);
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that fell outside the domain.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-domain samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Index and count of the fullest bin.
    pub fn mode(&self) -> Option<(usize, u64)> {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .filter(|&(_, c)| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.range(), Some((2.0, 9.0)));
        // Nearest-rank median of 8 samples: index round(3.5) = 4 → 5.0.
        assert_eq!(s.median(), Some(5.0));
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.range(), None);
    }

    #[test]
    fn quantiles() {
        let s = Summary::of(&(1..=100).map(f64::from).collect::<Vec<_>>());
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        let p90 = s.quantile(0.9).unwrap();
        assert!((89.0..=91.0).contains(&p90));
    }

    #[test]
    fn cdf_fractions() {
        let c = Cdf::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_le(2.0), 0.5);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(4.0), 1.0);
        assert!((c.fraction_gt(3.0) - 0.25).abs() < 1e-12);
        assert_eq!(c.value_at(0.5), Some(3.0));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn cdf_points_are_monotone_and_deduped() {
        let c = Cdf::of(&[1.0, 1.0, 2.0]);
        let pts = c.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], (1.0, 2.0 / 3.0));
        assert_eq!(pts[1], (2.0, 1.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::of(&[]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_le(1.0), 0.0);
        assert_eq!(c.value_at(0.5), None);
    }

    #[test]
    fn interval_histogram_binning() {
        let mut h = IntervalHistogram::new(0.0, 60.0, 6);
        for x in [5.0, 15.0, 15.5, 25.0, 59.9, 60.0, -1.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.mode(), Some((1, 2)));
        assert!((h.bin_center(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_histogram_panics() {
        IntervalHistogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn single_sample_quantiles() {
        let s = Summary::of(&[7.25]);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(s.quantile(q), Some(7.25), "q={q}");
        }
        assert_eq!(s.median(), Some(7.25));
        assert_eq!(s.range(), Some((7.25, 7.25)));
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn out_of_range_q_clamps_to_extremes() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.quantile(-0.5), Some(1.0));
        assert_eq!(s.quantile(1.5), Some(3.0));
    }

    /// Over NaN-free inputs every derived statistic is NaN-free, and
    /// quantiles are monotone in `q` and bracketed by `[min, max]`.
    #[test]
    fn quantiles_are_nan_free_monotone_and_bracketed() {
        let sets: Vec<Vec<f64>> = vec![
            vec![0.0],
            vec![-5.0, 5.0],
            vec![1e-9, 1e9, 3.0, 3.0, 3.0],
            (0..57).map(|i| ((i * 37) % 19) as f64 - 9.0).collect(),
            vec![f64::MIN_POSITIVE, f64::MAX / 2.0, 0.0],
        ];
        for samples in &sets {
            let s = Summary::of(samples);
            assert!(!s.mean().is_nan() && !s.std_dev().is_nan());
            let (lo, hi) = s.range().expect("nonempty");
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let v = s.quantile(q).expect("nonempty");
                assert!(!v.is_nan(), "quantile({q}) NaN over {samples:?}");
                assert!(v >= prev, "quantile monotone in q over {samples:?}");
                assert!((lo..=hi).contains(&v), "quantile within range");
                prev = v;
            }
        }
    }

    /// Merging sample sets then taking the quantile is NOT the same as
    /// averaging per-part quantiles — but it is always *bracketed* by
    /// them: the nearest-rank quantile of a concatenation lies between
    /// the smallest and largest per-part quantile. This is the ordering
    /// guarantee aggregation pipelines rely on when they pool per-run
    /// latency summaries into a fleet-wide one.
    #[test]
    fn merged_quantiles_are_bracketed_by_part_quantiles() {
        let parts: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![1.0, 2.0, 3.0], vec![100.0, 200.0]),
            (vec![0.0, 0.0, 9.0], vec![8.0]),
            (vec![5.0, 9.0], vec![6.0]),
            (
                (0..31).map(|i| ((i * 7) % 13) as f64).collect(),
                (0..17).map(|i| ((i * 11) % 23) as f64).collect(),
            ),
        ];
        for (a, b) in &parts {
            let sa = Summary::of(a);
            let sb = Summary::of(b);
            let merged: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            let sm = Summary::of(&merged);
            for i in 0..=10 {
                let q = i as f64 / 10.0;
                let (qa, qb) = (sa.quantile(q).unwrap(), sb.quantile(q).unwrap());
                let qm = sm.quantile(q).unwrap();
                assert!(
                    (qa.min(qb)..=qa.max(qb)).contains(&qm),
                    "q={q}: merged {qm} outside [{}, {}] for {a:?} + {b:?}",
                    qa.min(qb),
                    qa.max(qb)
                );
            }
        }
        // Quantiles do not commute with merging: averaging part medians
        // is not the merged median (bracketing above is the guarantee).
        let (sa, sb) = (Summary::of(&[1.0, 2.0, 3.0]), Summary::of(&[100.0, 200.0]));
        let sm = Summary::of(&[1.0, 2.0, 3.0, 100.0, 200.0]);
        let avg = (sa.median().unwrap() + sb.median().unwrap()) / 2.0;
        assert_eq!(sm.median(), Some(3.0));
        assert!((avg - sm.median().unwrap()).abs() > 10.0);
    }

    #[test]
    fn single_sample_cdf() {
        let c = Cdf::of(&[4.5]);
        for p in [0.0, 0.3, 1.0] {
            assert_eq!(c.value_at(p), Some(4.5));
        }
        assert_eq!(c.fraction_le(4.5), 1.0);
        assert_eq!(c.fraction_le(4.4), 0.0);
        assert_eq!(c.points(), vec![(4.5, 1.0)]);
    }
}
