//! Query Issuing Frequency (QIF) — the paper's second novel metric.
//!
//! Modern sensors can push 120 events/s to the backend; whether that is a
//! smooth experience or a meltdown depends on the backend's drain rate.
//! [`QifReport`] summarizes an issue-timestamp stream (rate, interval
//! histogram à la Fig 14); [`QifQuadrant`] encodes the Fig 3 trade-off
//! matrix between frontend issuing rate and backend speed, including the
//! "overwhelmed backend — need to throttle" corner.

use ids_simclock::{SimDuration, SimTime};

use crate::stats::{IntervalHistogram, Summary};

/// Summary of a query-issue timestamp stream.
#[derive(Debug, Clone)]
pub struct QifReport {
    /// Number of queries issued.
    pub queries: usize,
    /// Observation span from first to last issue.
    pub span: SimDuration,
    /// Inter-issue interval statistics (milliseconds).
    pub intervals_ms: Summary,
    /// Histogram of inter-issue intervals over `[0, 60)` ms, 30 bins —
    /// the Fig 14 presentation.
    pub interval_histogram: IntervalHistogram,
}

impl QifReport {
    /// Builds a report from sorted issue timestamps.
    pub fn from_timestamps(timestamps: &[SimTime]) -> QifReport {
        debug_assert!(timestamps.windows(2).all(|w| w[0] <= w[1]));
        let mut intervals_ms = Summary::new();
        let mut interval_histogram = IntervalHistogram::new(0.0, 60.0, 30);
        for w in timestamps.windows(2) {
            let dt = w[1].saturating_since(w[0]).as_millis_f64();
            intervals_ms.push(dt);
            interval_histogram.push(dt);
        }
        let span = match (timestamps.first(), timestamps.last()) {
            (Some(&a), Some(&b)) => b.saturating_since(a),
            _ => SimDuration::ZERO,
        };
        QifReport {
            queries: timestamps.len(),
            span,
            intervals_ms,
            interval_histogram,
        }
    }

    /// Mean queries issued per second over the observation span.
    pub fn queries_per_second(&self) -> f64 {
        let secs = self.span.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        // n queries span n-1 intervals.
        (self.queries.saturating_sub(1)) as f64 / secs
    }

    /// The modal inter-issue interval in ms, if any interval landed in
    /// the histogram domain. Leap Motion concentrates at 20–25 ms.
    pub fn modal_interval_ms(&self) -> Option<f64> {
        self.interval_histogram
            .mode()
            .map(|(bin, _)| self.interval_histogram.bin_center(bin))
    }
}

/// Partitions sorted issue timestamps into fixed windows of `window`
/// length anchored at the first timestamp, returning each window's
/// `(start, queries issued)`. Windows are contiguous — quiet stretches
/// appear as zero counts — so the counts always sum to the stream length,
/// an invariant the property-test suite pins.
///
/// This is the time-resolved QIF view: under a backend stall the issue
/// rate of a throttled frontend visibly dips in the affected windows.
pub fn qif_windows(timestamps: &[SimTime], window: SimDuration) -> Vec<(SimTime, usize)> {
    debug_assert!(timestamps.windows(2).all(|w| w[0] <= w[1]));
    let Some((&first, &last)) = timestamps.first().zip(timestamps.last()) else {
        return Vec::new();
    };
    let window = window.as_micros().max(1);
    let buckets = (last.saturating_since(first).as_micros() / window) as usize + 1;
    let mut out: Vec<(SimTime, usize)> = (0..buckets)
        .map(|i| (first + SimDuration::from_micros(window * i as u64), 0))
        .collect();
    for &t in timestamps {
        let idx = (t.saturating_since(first).as_micros() / window) as usize;
        out[idx].1 += 1;
    }
    out
}

/// Frontend issuing-rate class, relative to what the backend can drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSpeed {
    /// Mean service time comfortably under the mean issue interval.
    Fast,
    /// Mean service time at or above the mean issue interval.
    Slow,
}

/// The four cells of the paper's Fig 3 trade-off matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QifQuadrant {
    /// High QIF × fast backend: smooth, responsive interaction.
    Good,
    /// Low QIF × fast backend: capacity wasted; interaction *feels* slow
    /// because the frontend undersamples.
    PerceivedSlow,
    /// Low QIF × slow backend: every query waits; unresponsive.
    Unresponsive,
    /// High QIF × slow backend: queue explodes — throttle the frontend.
    OverwhelmedThrottle,
}

impl QifQuadrant {
    /// Classifies a workload: `qif` in queries/s, `mean_service` the
    /// backend's mean per-query time. "High QIF" means the frontend
    /// issues at ≥ `high_qif_threshold` queries/s (the paper's examples
    /// use UI frame rates, ~50/s).
    pub fn classify(qif: f64, mean_service: SimDuration, high_qif_threshold: f64) -> QifQuadrant {
        let high = qif >= high_qif_threshold;
        // The backend keeps up when it can serve faster than queries arrive.
        let service_rate = if mean_service.is_zero() {
            f64::INFINITY
        } else {
            1.0 / mean_service.as_secs_f64()
        };
        let fast = service_rate >= qif && !mean_service.is_zero() || mean_service.is_zero();
        match (high, fast) {
            (true, true) => QifQuadrant::Good,
            (false, true) => QifQuadrant::PerceivedSlow,
            (false, false) => QifQuadrant::Unresponsive,
            (true, false) => QifQuadrant::OverwhelmedThrottle,
        }
    }

    /// The recommended action, as Fig 3 annotates.
    pub fn guidance(self) -> &'static str {
        match self {
            QifQuadrant::Good => "good: frontend and backend are matched",
            QifQuadrant::PerceivedSlow => {
                "perceived slow: raise the frontend rate or interpolate results"
            }
            QifQuadrant::Unresponsive => "unresponsive: speed up the backend",
            QifQuadrant::OverwhelmedThrottle => {
                "overwhelmed backend: throttle QIF to match backend capacity"
            }
        }
    }
}

/// Computes a throttled issue-rate suggestion: the highest rate the
/// backend sustains, capped at the device's sensing rate.
pub fn throttle_suggestion(mean_service: SimDuration, device_rate_hz: f64) -> f64 {
    if mean_service.is_zero() {
        return device_rate_hz;
    }
    (1.0 / mean_service.as_secs_f64()).min(device_rate_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamps(interval_ms: u64, n: usize) -> Vec<SimTime> {
        (0..n)
            .map(|i| SimTime::from_millis(interval_ms * i as u64))
            .collect()
    }

    #[test]
    fn qif_rate_from_uniform_stream() {
        // 20 ms apart → 50 queries/s.
        let r = QifReport::from_timestamps(&stamps(20, 101));
        assert!((r.queries_per_second() - 50.0).abs() < 0.01);
        assert_eq!(r.queries, 101);
        assert_eq!(r.intervals_ms.mean(), 20.0);
        let modal = r.modal_interval_ms().unwrap();
        assert!((19.0..23.0).contains(&modal));
    }

    #[test]
    fn degenerate_streams() {
        assert_eq!(QifReport::from_timestamps(&[]).queries_per_second(), 0.0);
        let one = QifReport::from_timestamps(&[SimTime::from_millis(5)]);
        assert_eq!(one.queries_per_second(), 0.0);
        assert_eq!(one.modal_interval_ms(), None);
    }

    #[test]
    fn qif_windows_partition_the_stream() {
        // 20 ms apart over a 100 ms window: 5 per window, except the
        // last window which holds the final stamp.
        let w = qif_windows(&stamps(20, 11), SimDuration::from_millis(100));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (SimTime::ZERO, 5));
        assert_eq!(w[1], (SimTime::from_millis(100), 5));
        assert_eq!(w[2], (SimTime::from_millis(200), 1));
        assert_eq!(w.iter().map(|&(_, n)| n).sum::<usize>(), 11);
        assert!(qif_windows(&[], SimDuration::from_millis(10)).is_empty());
        // A quiet gap shows up as a zero-count window.
        let gappy = [
            SimTime::ZERO,
            SimTime::from_millis(250),
            SimTime::from_millis(260),
        ];
        let w = qif_windows(&gappy, SimDuration::from_millis(100));
        assert_eq!(w.iter().map(|&(_, n)| n).collect::<Vec<_>>(), vec![1, 0, 2]);
    }

    #[test]
    fn quadrant_classification() {
        let ms = SimDuration::from_millis;
        // 50 q/s, 5 ms service (200/s capacity) → Good.
        assert_eq!(QifQuadrant::classify(50.0, ms(5), 40.0), QifQuadrant::Good);
        // 50 q/s, 100 ms service → overwhelmed.
        assert_eq!(
            QifQuadrant::classify(50.0, ms(100), 40.0),
            QifQuadrant::OverwhelmedThrottle
        );
        // 5 q/s, fast backend → perceived slow.
        assert_eq!(
            QifQuadrant::classify(5.0, ms(5), 40.0),
            QifQuadrant::PerceivedSlow
        );
        // 5 q/s, 500 ms service → unresponsive.
        assert_eq!(
            QifQuadrant::classify(5.0, ms(500), 40.0),
            QifQuadrant::Unresponsive
        );
    }

    #[test]
    fn quadrant_guidance_strings() {
        assert!(QifQuadrant::OverwhelmedThrottle
            .guidance()
            .contains("throttle"));
        assert!(QifQuadrant::Good.guidance().contains("matched"));
    }

    #[test]
    fn throttle_suggestion_respects_both_limits() {
        // 25 ms service → 40/s, under a 120 Hz device.
        let s = throttle_suggestion(SimDuration::from_millis(25), 120.0);
        assert!((s - 40.0).abs() < 1e-9);
        // 1 ms service → capacity 1000/s, capped at device rate.
        let s = throttle_suggestion(SimDuration::from_millis(1), 120.0);
        assert_eq!(s, 120.0);
        assert_eq!(throttle_suggestion(SimDuration::ZERO, 60.0), 60.0);
    }

    #[test]
    fn histogram_feeds_fig14_shape() {
        let r = QifReport::from_timestamps(&stamps(22, 200));
        // All intervals land in the 20-24 ms region.
        let total = r.interval_histogram.total();
        assert_eq!(total, 199);
        let (bin, count) = r.interval_histogram.mode().unwrap();
        assert_eq!(count, 199);
        let center = r.interval_histogram.bin_center(bin);
        assert!((21.0..25.0).contains(&center));
    }
}
