//! Cache hit-rate accounting.
//!
//! The paper distinguishes *frontend* caches (cut backend load, hard to
//! invalidate) from *backend* caches (still pay network latency but give
//! constant lookup time). Both report the same metric; this counter
//! serves any cache location, while `ids-engine`'s buffer pool keeps its
//! own page-level statistics.

/// Where the cache sits in the stack — affects which latency component a
/// hit removes (Section 3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLocation {
    /// In the client: a hit removes network + backend latency entirely.
    Frontend,
    /// In the server: a hit removes execution latency, network remains.
    Backend,
}

/// A hit/miss counter for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitRateCounter {
    /// Cache placement.
    pub location: CacheLocation,
    hits: u64,
    misses: u64,
}

impl HitRateCounter {
    /// Creates a counter for a cache at `location`.
    pub fn new(location: CacheLocation) -> HitRateCounter {
        HitRateCounter {
            location,
            hits: 0,
            misses: 0,
        }
    }

    /// Records a hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records a lookup outcome.
    pub fn record(&mut self, was_hit: bool) {
        if was_hit {
            self.hit();
        } else {
            self.miss();
        }
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rate() {
        let mut c = HitRateCounter::new(CacheLocation::Backend);
        c.hit();
        c.hit();
        c.miss();
        c.record(true);
        c.record(false);
        assert_eq!(c.lookups(), 5);
        assert_eq!(c.hits(), 3);
        assert!((c.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_counter() {
        let c = HitRateCounter::new(CacheLocation::Frontend);
        assert_eq!(c.hit_rate(), 0.0);
        assert_eq!(c.location, CacheLocation::Frontend);
    }
}
