//! Throughput and scalability.
//!
//! Throughput (queries processed per second) is the classic TPC-style
//! metric, appropriate for distributed interactive systems (Atlas).
//! Scalability experiments sweep a resource axis (servers, data size) and
//! report speedup; the paper highlights DICE's finding that adding nodes
//! past a knee yields diminishing returns.

use ids_simclock::SimDuration;

/// Queries completed per second of (virtual or wall) time.
pub fn throughput(completed: u64, makespan: SimDuration) -> f64 {
    let secs = makespan.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    completed as f64 / secs
}

/// One point of a scalability sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Resource level (e.g. number of servers).
    pub resource: u64,
    /// Measured completion time at that level.
    pub time: SimDuration,
}

/// A scalability curve with speedup analysis relative to the first
/// (baseline) point.
#[derive(Debug, Clone)]
pub struct ScalabilityCurve {
    points: Vec<ScalePoint>,
}

impl ScalabilityCurve {
    /// Creates a curve; points must be sorted by resource level and the
    /// first point is the baseline.
    pub fn new(points: Vec<ScalePoint>) -> ScalabilityCurve {
        debug_assert!(points.windows(2).all(|w| w[0].resource <= w[1].resource));
        ScalabilityCurve { points }
    }

    /// The sweep points.
    pub fn points(&self) -> &[ScalePoint] {
        &self.points
    }

    /// Speedup of each point over the baseline: `t_baseline / t_point`.
    pub fn speedups(&self) -> Vec<(u64, f64)> {
        let Some(base) = self.points.first() else {
            return Vec::new();
        };
        let base_s = base.time.as_secs_f64();
        self.points
            .iter()
            .map(|p| {
                let s = p.time.as_secs_f64();
                let speedup = if s <= 0.0 { f64::INFINITY } else { base_s / s };
                (p.resource, speedup)
            })
            .collect()
    }

    /// Parallel efficiency at each point: speedup / (resource / base resource).
    pub fn efficiencies(&self) -> Vec<(u64, f64)> {
        let Some(base) = self.points.first() else {
            return Vec::new();
        };
        self.speedups()
            .into_iter()
            .map(|(r, s)| {
                let scale = r as f64 / base.resource.max(1) as f64;
                (r, if scale > 0.0 { s / scale } else { 0.0 })
            })
            .collect()
    }

    /// The smallest resource level beyond which the *marginal* speedup of
    /// doubling-equivalent steps falls below `threshold` (default
    /// diminishing-returns detection; DICE's Fig 7 knee sits at 8 nodes).
    pub fn diminishing_returns_knee(&self, threshold: f64) -> Option<u64> {
        let speedups = self.speedups();
        for w in speedups.windows(2) {
            let (r0, s0) = w[0];
            let (r1, s1) = w[1];
            let resource_gain = r1 as f64 / r0.max(1) as f64;
            let speedup_gain = if s0 > 0.0 { s1 / s0 } else { f64::INFINITY };
            // Marginal efficiency of this step.
            if (speedup_gain - 1.0) / (resource_gain - 1.0).max(1e-9) < threshold {
                return Some(r0);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(resource: u64, ms: u64) -> ScalePoint {
        ScalePoint {
            resource,
            time: SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn throughput_basic() {
        assert_eq!(throughput(500, SimDuration::from_secs(10)), 50.0);
        assert_eq!(throughput(500, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn linear_region_then_knee() {
        // Near-linear to 8 nodes, flat afterwards (the DICE shape).
        let curve = ScalabilityCurve::new(vec![
            sp(1, 8000),
            sp(2, 4100),
            sp(4, 2200),
            sp(8, 1300),
            sp(16, 1250),
            sp(32, 1240),
        ]);
        let speedups = curve.speedups();
        assert!((speedups[0].1 - 1.0).abs() < 1e-12);
        assert!(speedups[3].1 > 5.0);
        let knee = curve.diminishing_returns_knee(0.2).unwrap();
        assert_eq!(knee, 8, "returns diminish past 8 nodes");
    }

    #[test]
    fn efficiency_decays() {
        let curve = ScalabilityCurve::new(vec![sp(1, 1000), sp(2, 600), sp(4, 400)]);
        let eff = curve.efficiencies();
        assert!((eff[0].1 - 1.0).abs() < 1e-12);
        assert!(eff[1].1 < 1.0);
        assert!(eff[2].1 < eff[1].1);
    }

    #[test]
    fn no_knee_when_perfectly_linear() {
        let curve = ScalabilityCurve::new(vec![sp(1, 8000), sp(2, 4000), sp(4, 2000)]);
        assert_eq!(curve.diminishing_returns_knee(0.5), None);
    }

    #[test]
    fn empty_curve() {
        let curve = ScalabilityCurve::new(vec![]);
        assert!(curve.speedups().is_empty());
        assert!(curve.efficiencies().is_empty());
        assert_eq!(curve.diminishing_returns_knee(0.5), None);
    }
}
