//! Property tests for the metric computations.

use ids_metrics::accuracy::{mean_squared_error, scored_accuracy, PrecisionRecall};
use ids_metrics::latency::LatencyBreakdown;
use ids_metrics::lcv::{cascade_violations, QuerySpan};
use ids_metrics::qif::{QifQuadrant, QifReport};
use ids_metrics::throughput::{ScalabilityCurve, ScalePoint};
use ids_simclock::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// QIF rate × span recovers the query count (uniform streams).
    #[test]
    fn qif_rate_times_span_is_count(interval_ms in 1u64..200, n in 2usize..300) {
        let stamps: Vec<SimTime> = (0..n)
            .map(|i| SimTime::from_millis(interval_ms * i as u64))
            .collect();
        let r = QifReport::from_timestamps(&stamps);
        let recovered = r.queries_per_second() * r.span.as_secs_f64();
        prop_assert!((recovered - (n as f64 - 1.0)).abs() < 1e-6);
        prop_assert!((r.intervals_ms.mean() - interval_ms as f64).abs() < 1e-9);
    }

    /// The QIF quadrant is consistent: fast backends are never classified
    /// as overwhelmed, slow ones never as good.
    #[test]
    fn quadrant_consistency(qif in 0.1f64..200.0, service_ms in 1u64..2_000) {
        let service = SimDuration::from_millis(service_ms);
        let q = QifQuadrant::classify(qif, service, 40.0);
        let capacity = 1_000.0 / service_ms as f64;
        match q {
            QifQuadrant::Good | QifQuadrant::PerceivedSlow => {
                prop_assert!(capacity >= qif - 1e-9)
            }
            QifQuadrant::Unresponsive | QifQuadrant::OverwhelmedThrottle => {
                prop_assert!(capacity < qif + 1e-9)
            }
        }
    }

    /// Cascade LCV violations are bounded by n−1 and shrink (weakly) when
    /// every finish time moves earlier by the same amount.
    #[test]
    fn lcv_bounds_and_monotonicity(
        spans_raw in prop::collection::vec((0u64..10_000, 1u64..2_000), 1..60),
        speedup_ms in 0u64..500,
    ) {
        let mut issued: Vec<u64> = spans_raw.iter().map(|&(t, _)| t).collect();
        issued.sort_unstable();
        let spans: Vec<QuerySpan> = issued
            .iter()
            .zip(spans_raw.iter())
            .map(|(&t, &(_, exec))| QuerySpan {
                issued_at: SimTime::from_millis(t),
                finished_at: SimTime::from_millis(t + exec),
            })
            .collect();
        let base = cascade_violations(&spans);
        prop_assert!(base.violations <= spans.len().saturating_sub(1));
        let faster: Vec<QuerySpan> = spans
            .iter()
            .map(|s| QuerySpan {
                issued_at: s.issued_at,
                finished_at: s.issued_at
                    + s.finished_at
                        .saturating_since(s.issued_at)
                        .saturating_sub(SimDuration::from_millis(speedup_ms)),
            })
            .collect();
        prop_assert!(cascade_violations(&faster).violations <= base.violations);
    }

    /// Latency breakdown total always equals the component sum and the
    /// bottleneck really is the max component.
    #[test]
    fn breakdown_total_and_bottleneck(
        net in 0u64..10_000, sched in 0u64..10_000, exec in 0u64..10_000,
        agg in 0u64..10_000, render in 0u64..10_000,
    ) {
        let b = LatencyBreakdown {
            network: SimDuration::from_micros(net),
            scheduling: SimDuration::from_micros(sched),
            execution: SimDuration::from_micros(exec),
            post_aggregation: SimDuration::from_micros(agg),
            rendering: SimDuration::from_micros(render),
        };
        prop_assert_eq!(b.total().as_micros(), net + sched + exec + agg + render);
        let (_, worst) = b.bottleneck();
        let max = [net, sched, exec, agg, render].into_iter().max().unwrap();
        prop_assert_eq!(worst.as_micros(), max);
        let frac = b.execution_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    /// Precision/recall are symmetric in a specific sense: swapping the
    /// sets swaps the two numbers.
    #[test]
    fn precision_recall_swap(
        a in prop::collection::hash_set(0u64..200, 0..60),
        b in prop::collection::hash_set(0u64..200, 0..60),
    ) {
        let av: Vec<u64> = a.iter().copied().collect();
        let bv: Vec<u64> = b.iter().copied().collect();
        let pr = PrecisionRecall::of(&av, &bv);
        let rp = PrecisionRecall::of(&bv, &av);
        prop_assert!((pr.precision - rp.recall).abs() < 1e-12);
        prop_assert!((pr.recall - rp.precision).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&pr.f1()));
    }

    /// MSE is zero iff the series are identical, and invariant to
    /// swapping the arguments.
    #[test]
    fn mse_properties(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        prop_assert_eq!(mean_squared_error(&xs, &xs), 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let a = mean_squared_error(&xs, &shifted);
        let b = mean_squared_error(&shifted, &xs);
        prop_assert!((a - b).abs() < 1e-9);
        prop_assert!((a - 1.0).abs() < 1e-9, "uniform +1 shift has MSE 1");
    }

    /// Scored accuracy is monotone: closer answers and earlier
    /// submissions never score worse.
    #[test]
    fn scored_accuracy_monotone(
        truth in -1_000.0f64..1_000.0,
        err1 in 0.0f64..100.0,
        err2 in 0.0f64..100.0,
        t1 in 0u64..60_000,
        t2 in 0u64..60_000,
    ) {
        let scale = 50.0;
        let tscale = SimDuration::from_secs(30);
        let score = |err: f64, ms: u64| {
            scored_accuracy(truth + err, truth, SimDuration::from_millis(ms), scale, tscale)
        };
        if err1 <= err2 {
            prop_assert!(score(err1, t1) >= score(err2, t1) - 1e-12);
        }
        if t1 <= t2 {
            prop_assert!(score(err1, t1) >= score(err1, t2) - 1e-12);
        }
    }

    /// Speedups relative to the baseline start at exactly 1 and
    /// efficiencies never exceed the ideal for slower-than-linear scaling.
    #[test]
    fn scalability_speedup_baseline(times in prop::collection::vec(1u64..100_000, 1..12)) {
        let points: Vec<ScalePoint> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| ScalePoint {
                resource: 1 << i,
                time: SimDuration::from_micros(t),
            })
            .collect();
        let curve = ScalabilityCurve::new(points);
        let speedups = curve.speedups();
        prop_assert!((speedups[0].1 - 1.0).abs() < 1e-12);
        for (r, s) in &speedups {
            prop_assert!(*s > 0.0, "resource {r}");
        }
    }
}
