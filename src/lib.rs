//! `ids` — a toolkit for **evaluating interactive data systems**, a full
//! reproduction of *Evaluating Interactive Data Systems: Survey and Case
//! Studies* (Rahman, Jiang & Nandi; the journal version of the SIGMOD
//! 2018 tutorial *Workloads, Metrics, and Guidelines*).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`simclock`] — virtual time, event queues, deterministic RNG;
//! - [`engine`] — a columnar query engine with disk- and memory-regime
//!   backends and calibrated virtual-time cost models;
//! - [`devices`] — input-device models (sensing rates, jitter, inertial
//!   scroll physics, Fitts/KLM timing);
//! - [`workload`] — user-behavior simulation and the paper's trace
//!   schemas and datasets;
//! - [`metrics`] — the metric taxonomy, including the paper's novel
//!   Latency Constraint Violation and Query Issuing Frequency metrics;
//! - [`obs`] — observability: a virtual-time span recorder, hot-path
//!   metric counters, and streaming chunked Chrome/Perfetto trace export;
//! - [`lakehouse`] — the telemetry lakehouse: obs events folded into the
//!   engine's own columnar tables and queried with its vectorized
//!   kernels (p99 by tenant, LCV over time, slowest spans);
//! - [`study`] — user-study design: settings, counterbalancing, biases,
//!   validity, and the survey tables;
//! - [`opt`] — behavior-driven optimizations (loading strategies, skip,
//!   KL filtering, Markov prefetching, session reuse);
//! - [`chaos`] — deterministic fault injection: seeded fault plans
//!   (latency spikes, stalls, transient failures, buffer pressure, node
//!   loss) applied on the virtual clock;
//! - [`serve`] — multi-tenant serving: seeded session fleets,
//!   token-bucket admission with priority lanes, and mergeable
//!   fleet-scale tail-latency aggregation;
//! - [`shard`] — sharded scatter-gather execution for million-session
//!   fleets: hash/range partitioning with per-shard zone maps, a
//!   deterministic merge of mergeable partials, replicated routing with
//!   typed shard-loss errors, and sharded progressive refinement;
//! - [`simtest`] — deterministic simulation testing: seeded end-to-end
//!   scenarios, invariant and differential oracles, and automatic
//!   scenario shrinking into checked-in repro files;
//! - [`experiments`] — the case studies as deterministic experiments
//!   regenerating every table and figure.
//!
//! ```
//! use ids::metrics::selection::{recommend, SystemTraits};
//! use ids::metrics::Metric;
//!
//! // Table 3 in action: what should a crossfiltering system measure?
//! let metrics = recommend(&SystemTraits {
//!     bursty_queries: true,
//!     high_frame_rate_device: true,
//!     large_data: true,
//!     ..SystemTraits::default()
//! });
//! assert!(metrics.contains(&Metric::LatencyConstraintViolation));
//! assert!(metrics.contains(&Metric::QueryIssuingFrequency));
//! ```

#![warn(missing_docs)]

pub use ids_chaos as chaos;
pub use ids_core::experiments;
pub use ids_core::registry;
pub use ids_core::report;
pub use ids_devices as devices;
pub use ids_engine as engine;
pub use ids_lakehouse as lakehouse;
pub use ids_metrics as metrics;
pub use ids_obs as obs;
pub use ids_opt as opt;
pub use ids_serve as serve;
pub use ids_shard as shard;
pub use ids_simclock as simclock;
pub use ids_simtest as simtest;
pub use ids_study as study;
pub use ids_workload as workload;
